"""Public API: one-shot verbs plus the stateful Catalog/Peer surface.

The rest of the library is deliberately layered - specs as data
(:mod:`repro.protocols.spec`), generic machines
(:mod:`repro.protocols.parties`), transports (:mod:`repro.net.tcp`),
sessions (:mod:`repro.net.session`) - and every layer is importable.
But the common cases should not require assembling those layers by
hand, so this module exposes two families of entry points, all
dispatching off the :data:`~repro.protocols.spec.PROTOCOLS` registry:

**One-shot verbs** (a single query, then everything is torn down):

* :func:`run` - both parties in-process, one call, returns the answer
  plus what each party learned about the other's set size;
* :func:`serve` - party S behind a real TCP listener (optionally under
  the resumable session layer, optionally journaled to disk);
* :func:`connect` - party R dialing a server.

**The stateful surface** (open once, query many times, mutate between
queries - the repeated-query protocol):

* :func:`open_catalog` opens a :class:`Catalog` over one party's
  table, optionally backed by an on-disk encrypted-catalog cache
  (:mod:`repro.net.catalog`) so a process restart skips the O(|V|)
  hash-and-encrypt setup;
* :meth:`Catalog.pair` / :meth:`Catalog.serve` /
  :meth:`Catalog.connect` produce a :class:`Peer`;
* :meth:`Peer.query` runs a full protocol on first use and only the
  delta rounds thereafter (O(|delta|) cryptography per repeated
  query);
* :meth:`Catalog.insert` / :meth:`Catalog.delete` stage the table
  mutations the next query's delta rounds will carry.

The one-shot verbs are implemented as a thin open-query-close over the
stateful core, so their wire transcripts are byte-identical to earlier
releases. All entry points accept ``chunk_size`` to stream chunkable
rounds in bounded slices; ``chunk_size=None`` keeps the legacy
whole-round frames. New protocols registered in ``PROTOCOLS`` are
runnable here with zero facade edits.

Quickstart (one-shot)::

    import repro

    result = repro.run(
        "intersection",
        receiver_data=["alice", "bob", "carol"],
        sender_data=["bob", "carol", "dave"],
        bits=128,
        seed=7,
    )
    assert result.answer == {"bob", "carol"}

Quickstart (repeated queries)::

    catalog = repro.open_catalog(["alice", "bob"], bits=128, seed=1)
    peer = catalog.pair(repro.open_catalog(["bob", "eve"], bits=128, seed=2))
    assert peer.query("intersection").answer == {"bob"}
    catalog.insert("eve")
    assert peer.query("intersection").answer == {"bob", "eve"}  # delta rounds
"""

from __future__ import annotations

import random
import socket
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from .protocols.delta import DeltaExchange
from .protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from .protocols.spec import ProtocolSpec, get_spec

__all__ = [
    "RunResult",
    "ServeResult",
    "ConnectResult",
    "run",
    "serve",
    "connect",
    "open_catalog",
    "Catalog",
    "Peer",
    "QueryResult",
    "SessionOptions",
]


@dataclass(frozen=True)
class RunResult:
    """What an in-process :func:`run` produced.

    Attributes:
        answer: the protocol's output for party R (set, size, ext
            mapping, or aggregate - whatever the spec's ``finish``
            computes).
        size_v_r: ``|V_R|`` - all party S learns from the run.
        size_v_s: ``|V_S|`` - the set-size party R observes.
    """

    answer: Any
    size_v_r: int
    size_v_s: int


@dataclass(frozen=True)
class ServeResult:
    """What one completed :func:`serve` call produced.

    Attributes:
        size_v_r: ``|V_R|`` - all party S learns from the run.
        port: the actual bound port (the kernel-assigned one when the
            call asked for ``port=0``).
        stats: the :class:`~repro.net.session.SessionStats` of a
            resumable run; ``None`` for a plain one-shot run.
    """

    size_v_r: int
    port: int
    stats: Any = None


@dataclass(frozen=True)
class ConnectResult:
    """What one completed :func:`connect` call produced.

    Attributes:
        answer: the protocol's output for party R.
        stats: the :class:`~repro.net.session.SessionStats` of a
            resumable run; ``None`` for a plain one-shot run.
        busy_retries: how many busy refusals were waited out (under
            ``retry_busy`` or a ``retry`` policy) before the server
            admitted this session.
        retries: total redials a ``retry`` policy performed across all
            retryable failure classes (busy, worker-lost).
    """

    answer: Any
    stats: Any = None
    busy_retries: int = 0
    retries: int = 0


@dataclass(frozen=True)
class QueryResult:
    """One completed :meth:`Peer.query`.

    Attributes:
        answer: the protocol's output for party R (``None`` on the
            serving side of a networked peer - the sender learns no
            answer, by design).
        mode: ``"full"`` when the complete round schedule ran,
            ``"delta"`` when only the incremental rounds were
            exchanged and spliced into the committed state.
        cache_hit: whether this party's setup was warm-started from
            the on-disk encrypted-catalog cache.
        size_v_r: ``|V_R|`` as known after this query (``None`` where
            the role does not learn it).
        size_v_s: ``|V_S|`` as known after this query (``None`` where
            the role does not learn it).
        stats: the :class:`~repro.net.session.SessionStats` of a
            session-layer query; ``None`` for plain transports.
    """

    answer: Any
    mode: str
    cache_hit: bool = False
    size_v_r: int | None = None
    size_v_s: int | None = None
    stats: Any = None


@dataclass(frozen=True)
class SessionOptions:
    """Typed bundle of fault-tolerant session-layer settings.

    Passing a ``SessionOptions`` (even the default ``SessionOptions()``)
    to :func:`serve`, :func:`connect`, :meth:`Catalog.serve` or
    :meth:`Catalog.connect` runs the exchange under the resumable
    session layer of :mod:`repro.net.session`: checksummed,
    acknowledged frames, reconnect-and-resume after drops, and - with a
    ``journal_dir`` - crash recovery from the on-disk round journal.
    It replaces the deprecated ``resumable=`` / ``journal_dir=``
    keyword sprawl on the one-shot verbs.

    Attributes:
        journal_dir: directory (or
            :class:`~repro.net.journal.JournalDir`) for the round
            journal; ``None`` keeps the session in memory only.
        config: a :class:`~repro.net.session.SessionConfig` tuning
            timeouts and retry/backoff; ``None`` uses the defaults.
        journal_fsync: fsync journal appends (durability vs speed).
    """

    journal_dir: Any = None
    config: Any = None
    journal_fsync: bool = True


#: Deprecated-kwarg names already warned about (warn once per process).
_SESSION_KWARG_WARNED: set[str] = set()


def _coerce_session(
    entry: str, resumable: bool, journal_dir: Any, session: SessionOptions | None
) -> SessionOptions | None:
    """Fold the legacy ``resumable=``/``journal_dir=`` kwargs into a
    :class:`SessionOptions`, warning once per deprecated kwarg."""
    if session is not None:
        if resumable or journal_dir is not None:
            raise ValueError(
                "pass session=SessionOptions(...) or the legacy "
                "resumable=/journal_dir= kwargs, not both"
            )
        return session
    if not resumable and journal_dir is None:
        return None
    for kwarg, used in (
        ("resumable", resumable),
        ("journal_dir", journal_dir is not None),
    ):
        if used and kwarg not in _SESSION_KWARG_WARNED:
            _SESSION_KWARG_WARNED.add(kwarg)
            warnings.warn(
                f"repro.{entry}({kwarg}=...) is deprecated; pass "
                f"session=repro.SessionOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    return SessionOptions(journal_dir=journal_dir)


def _party_rngs(
    seed: Any, rng: random.Random | None
) -> tuple[random.Random, random.Random]:
    """Derive independent per-party rngs from one master seed/rng.

    Handing both machines the *same* rng would entangle their key
    draws through call order; deriving one child rng per party from a
    single master keeps ``seed=`` runs reproducible without that
    coupling.
    """
    master = rng if rng is not None else random.Random(seed)
    rng_r = random.Random(master.getrandbits(64))
    rng_s = random.Random(master.getrandbits(64))
    return rng_r, rng_s


def _exchange_local(
    spec: ProtocolSpec,
    receiver: ReceiverMachine,
    sender: SenderMachine,
    chunk_size: int | None,
) -> None:
    """Exchange a spec's rounds between two in-process machines.

    The wire payloads are exactly what the TCP drivers would put on a
    socket, so the logical transcript is identical to a networked run.
    """
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        if chunk_size is not None and rnd.chunkable:
            payloads = list(producer.produce_chunks(rnd, chunk_size))
            consumer.consume_chunks(rnd, payloads)
        else:
            consumer.consume(rnd, producer.produce(rnd).to_wire())


def _delta_spec(spec: ProtocolSpec) -> ProtocolSpec | None:
    """The registered ``<name>+delta`` schedule, or ``None``."""
    try:
        return get_spec(spec.name + "+delta")
    except Exception:
        return None


class Catalog:
    """One party's stateful handle over its table across many queries.

    A catalog owns a private table (a value sequence, or a mapping for
    ext/amount protocols), stages mutations via :meth:`insert` /
    :meth:`delete`, and keeps the committed per-protocol crypto state a
    :class:`Peer` needs to answer repeated queries incrementally: the
    first query of a protocol runs the full round schedule; subsequent
    queries exchange only the delta rounds (O(|delta|) modexp) and
    splice the patch into the committed state.

    With a ``cache_dir``, the party's expensive own-set setup (hash +
    encrypt of every value) is persisted through
    :class:`~repro.net.catalog.CatalogCache` keyed by (table digest,
    key fingerprint, protocol), so reopening the catalog in a new
    process warm-starts the first query without redoing the O(|V|)
    modexp. The cache holds this party's raw cipher keys - keep the
    directory private (see docs/PROTOCOLS.md, cache-key hygiene).

    Build via :func:`open_catalog`.
    """

    def __init__(
        self,
        data: Any,
        *,
        bits: int = 512,
        params: PublicParams | None = None,
        seed: Any = None,
        rng: random.Random | None = None,
        engine: Any = None,
        recorder: Any = None,
        cache_dir: Any = None,
        cache_fsync: bool = True,
        cache_io: Any = None,
    ):
        self.data = dict(data) if isinstance(data, Mapping) else list(data)
        self._bits = bits
        self.params = params
        self.rng = rng if rng is not None else random.Random(seed)
        self.engine = engine
        self.recorder = recorder
        self.cache = None
        if cache_dir is not None:
            from .net.catalog import CatalogCache

            self.cache = CatalogCache(
                cache_dir, io=cache_io, fsync=cache_fsync
            )
        self._links: dict[tuple[str, str], dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Table mutation (staged deltas)
    # ------------------------------------------------------------------
    def insert(self, value: Hashable, payload: Any = None) -> "Catalog":
        """Stage an insert for the next query's delta rounds.

        ``payload`` is the ext bytes / amount for mapping-shaped tables
        (equijoin / equijoin-sum); inserting an existing key with a new
        payload stages a replace (tombstone + insert on the wire).
        Sequence-shaped tables take ``payload=None`` and may repeat a
        value (multiset protocols count occurrences).
        """
        if isinstance(self.data, dict):
            self.data[value] = payload
        else:
            if payload is not None:
                raise ValueError(
                    "payload inserts need a mapping-shaped catalog "
                    "(ext/amount tables)"
                )
            self.data.append(value)
        return self

    def delete(self, value: Hashable) -> "Catalog":
        """Stage a delete (one occurrence, for multiset tables) for the
        next query's delta rounds. Raises if the value is absent."""
        if isinstance(self.data, dict):
            del self.data[value]
        else:
            try:
                self.data.remove(value)
            except ValueError:
                raise ValueError(f"{value!r} is not in the catalog") from None
        return self

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def pair(self, sender: "Catalog") -> "Peer":
        """Link two in-process catalogs: self is party R, ``sender`` is
        party S. Returns the :class:`Peer` both sides query through."""
        params = self._ensure_params()
        if sender.params is None:
            sender.params = params
        elif sender.params != params:
            raise ValueError("paired catalogs must share public params")
        return Peer(
            kind="local", catalog=self, remote=sender, announce=False
        )

    def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_callback: Callable[[int], None] | None = None,
        timeout: float | None = None,
        announce: bool = True,
        session: SessionOptions | None = None,
    ) -> "Peer":
        """Expose this catalog as party S on a TCP port.

        Returns a server :class:`Peer` whose :meth:`Peer.query` accepts
        one client connection and answers one query; call it repeatedly
        (typically in lockstep with the remote side's queries) and
        :meth:`Peer.close` when done. ``announce=False`` speaks the
        legacy one-shot handshake (no query-announcement frame; the
        params frame opens the connection) - that is how the
        :func:`serve` facade keeps its wire transcript byte-identical.
        With a :class:`SessionOptions`, each query runs under the
        resumable session layer instead (reconnects resume mid-round,
        and a ``journal_dir`` adds crash recovery - including for delta
        rounds, which replay idempotently).
        """
        params = self._ensure_params()
        del params  # built eagerly so the first query cannot race
        return Peer(
            kind="server",
            catalog=self,
            host=host,
            port=port,
            timeout=timeout,
            announce=announce,
            session=session,
            ready_callback=ready_callback,
        )

    def connect(
        self,
        host: str = "127.0.0.1",
        *,
        port: int,
        timeout: float | None = None,
        announce: bool = True,
        session: SessionOptions | None = None,
    ) -> "Peer":
        """Link this catalog (as party R) to a serving peer.

        Returns a client :class:`Peer`; every :meth:`Peer.query` dials
        the server, announces the query (protocol + full/delta), and
        runs the rounds. Public params are adopted from the server's
        handshake on first use. ``announce=False`` speaks the legacy
        one-shot handshake (used by the :func:`connect` facade);
        ``session`` runs queries under the resumable session layer.
        """
        return Peer(
            kind="client",
            catalog=self,
            host=host,
            port=port,
            timeout=timeout,
            announce=announce,
            session=session,
        )

    def close(self) -> None:
        """Drop the per-protocol committed state.

        No file handles stay open between calls, so this is about
        symmetry (``with open_catalog(...)``) and releasing memory.
        """
        self._links.clear()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals: params, cache, machines, commits
    # ------------------------------------------------------------------
    def _ensure_params(self) -> PublicParams:
        if self.params is None:
            self.params = PublicParams.for_bits(self._bits)
        return self.params

    def _adopt_params(self, params: PublicParams) -> PublicParams:
        if self.params is None:
            self.params = params
        elif self.params != params:
            raise ValueError(
                "the server's public params differ from this catalog's"
            )
        return self.params

    def _snapshot(self) -> Any:
        return dict(self.data) if isinstance(self.data, dict) else list(self.data)

    def _has_link(self, spec: ProtocolSpec, role: str) -> bool:
        return (spec.name, role) in self._links

    def _factory(self, spec: ProtocolSpec, role: str) -> Callable[..., Any]:
        return spec.make_receiver if role == "receiver" else spec.make_sender

    def _cacheable(self, spec: ProtocolSpec, role: str) -> bool:
        # The equijoin-sum sender holds a Paillier keypair that is not
        # persisted, so it is the one party without cache support.
        return self.cache is not None and hasattr(
            self._factory(spec, role), "cache_keys"
        )

    def _cache_name(self, spec: ProtocolSpec, role: str) -> str:
        # Receiver and sender entries can differ in shape (equijoin's
        # sender caches (codeword, kappa) pairs under two keys), so the
        # role is part of the cache key.
        return f"{spec.name}.{role[0]}"

    def _cached_for(
        self, spec: ProtocolSpec, role: str, params: PublicParams,
        snapshot: Any,
    ) -> tuple[Any, Any, str]:
        """(PartyCache | None, CacheEntry | None, table digest)."""
        from .net.catalog import CatalogCacheError, table_digest

        digest = table_digest(snapshot)
        if not self._cacheable(spec, role):
            return None, None, digest
        try:
            entry = self.cache.lookup(digest, self._cache_name(spec, role))
        except CatalogCacheError:
            entry = None  # corrupt or foreign-keyed entry: treat as a miss
        if entry is not None and entry.params != params:
            entry = None
        if entry is None:
            return None, None, digest
        return entry.party_cache(), entry, digest

    def _full_machine(
        self, spec: ProtocolSpec, role: str, params: PublicParams
    ) -> tuple[Any, dict[str, Any]]:
        # Snapshot once at query entry: the machine is built from the
        # snapshot and the commit records the same snapshot, so table
        # mutations staged while a query is in flight stay staged for
        # the *next* delta instead of being silently absorbed.
        snapshot = self._snapshot()
        cached, entry, digest = self._cached_for(spec, role, params, snapshot)
        cls = ReceiverMachine if role == "receiver" else SenderMachine
        kwargs: dict[str, Any] = {
            "engine": self.engine, "recorder": self.recorder,
        }
        if cached is not None:
            kwargs["cached"] = cached
        machine = cls(spec, snapshot, params, self.rng, **kwargs)
        return machine, {
            "digest": digest, "entry": entry, "hit": cached is not None,
            "snapshot": snapshot,
        }

    def _commit_full(
        self,
        spec: ProtocolSpec,
        role: str,
        party: Any,
        ctx: dict[str, Any],
        params: PublicParams,
    ) -> None:
        entry = ctx["entry"]
        if entry is None and self._cacheable(spec, role):
            entry = self.cache.store(
                ctx["digest"],
                self._cache_name(spec, role),
                params,
                party.cache_keys(),
                party.cache_entries(),
            )
        self._links[(spec.name, role)] = {
            "party": party,
            "snapshot": ctx["snapshot"],
            "digest": ctx["digest"],
            "entry": entry,
            "params": params,
        }

    def _delta_exchange(
        self, spec: ProtocolSpec, role: str, snapshot: Any
    ) -> DeltaExchange:
        """The staged table delta relative to this protocol's committed
        snapshot, as a :class:`~repro.protocols.delta.DeltaExchange`."""
        link = self._links[(spec.name, role)]
        base, cur = link["snapshot"], snapshot
        if isinstance(cur, dict):
            inserts = tuple(
                (k, cur[k])
                for k in sorted(cur, key=repr)
                if k not in base or base[k] != cur[k]
            )
            deletes = tuple(k for k in sorted(base, key=repr) if k not in cur)
        else:
            base_c, cur_c = Counter(base), Counter(cur)
            inserts = tuple(
                (v, None) for v in sorted((cur_c - base_c).elements(), key=repr)
            )
            deletes = tuple(sorted((base_c - cur_c).elements(), key=repr))
        return DeltaExchange(
            state=link["party"], inserts=inserts, deletes=deletes
        )

    def _delta_machine(
        self, dspec: ProtocolSpec, spec: ProtocolSpec, role: str,
        params: PublicParams,
    ) -> tuple[Any, dict[str, Any]]:
        snapshot = self._snapshot()
        cls = ReceiverMachine if role == "receiver" else SenderMachine
        machine = cls(
            dspec,
            self._delta_exchange(spec, role, snapshot),
            params,
            self.rng,
            engine=self.engine,
            recorder=self.recorder,
        )
        return machine, {"snapshot": snapshot}

    def _commit_delta(
        self, spec: ProtocolSpec, role: str, wrapper: Any,
        ctx: dict[str, Any],
    ) -> None:
        from .net.catalog import table_digest

        wrapper.commit()
        link = self._links[(spec.name, role)]
        new_digest = table_digest(ctx["snapshot"])
        entry = link.get("entry")
        if entry is not None:
            new_entries = link["party"].cache_entries()
            old = entry.entries
            adds = {
                v: e for v, e in new_entries.items() if old.get(v) != e
            }
            dels = [v for v in old if v not in new_entries]
            link["entry"] = self.cache.append_delta(
                entry, new_digest, adds, dels
            )
        link["snapshot"] = ctx["snapshot"]
        link["digest"] = new_digest


def open_catalog(
    data: Any,
    *,
    bits: int = 512,
    params: PublicParams | None = None,
    seed: Any = None,
    rng: random.Random | None = None,
    engine: Any = None,
    recorder: Any = None,
    cache_dir: Any = None,
    cache_fsync: bool = True,
    cache_io: Any = None,
) -> Catalog:
    """Open a stateful :class:`Catalog` over one party's table.

    Args:
        data: the party's private table - a value sequence, or a
            ``value -> ext/amount`` mapping for the equijoin family.
        bits: safe-prime modulus size when ``params`` is not given
            (connecting catalogs may omit both and adopt the server's
            params from the handshake).
        params: explicit shared public parameters.
        seed: seed for this party's private randomness.
        rng: explicit rng (overrides ``seed``).
        engine: batch-crypto execution strategy
            (:mod:`repro.crypto.engine`).
        recorder: per-phase metrics collector.
        cache_dir: directory for the persistent encrypted-catalog cache
            (:class:`~repro.net.catalog.CatalogCache`); ``None``
            disables persistence. The directory ends up holding this
            party's raw cipher keys - keep it private.
        cache_fsync: fsync cache writes before trusting them.
        cache_io: a :class:`~repro.net.diskfaults.JournalIO` override
            (the disk-fault harness injects a faulty one here).
    """
    return Catalog(
        data,
        bits=bits,
        params=params,
        seed=seed,
        rng=rng,
        engine=engine,
        recorder=recorder,
        cache_dir=cache_dir,
        cache_fsync=cache_fsync,
        cache_io=cache_io,
    )


class Peer:
    """A live query link produced by :meth:`Catalog.pair`,
    :meth:`Catalog.serve` or :meth:`Catalog.connect`.

    One :meth:`query` call runs one protocol exchange: the full round
    schedule the first time a protocol is queried through this
    catalog, only the delta rounds afterwards. Networked peers are
    role-symmetric - the serving side calls ``query`` to answer what
    the connecting side's ``query`` asks - and each call handles one
    connection, so a server loops ``query`` (one iteration per client
    query) until :meth:`close`.
    """

    def __init__(
        self,
        *,
        kind: str,
        catalog: Catalog,
        remote: Catalog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        announce: bool = True,
        session: SessionOptions | None = None,
        ready_callback: Callable[[int], None] | None = None,
    ):
        self._kind = kind
        self._catalog = catalog
        self._remote = remote
        self._host = host
        self._port = port
        self._timeout = timeout
        self._announce = announce
        self._session = session
        self._ready_callback = ready_callback
        self._listener: socket.socket | None = None
        if kind == "server" and session is None:
            from .net import tcp

            self._listener = tcp._listen(host, port, timeout)
            self._port = self._listener.getsockname()[1]
            if ready_callback is not None:
                ready_callback(self._port)

    @property
    def port(self) -> int:
        """The server's bound port (0 until a session-mode peer's first
        query binds its listener)."""
        return self._port

    def query(
        self,
        protocol: str | ProtocolSpec,
        *,
        mode: str = "auto",
        chunk_size: int | None = None,
    ) -> QueryResult:
        """Run one query of a registered protocol over this link.

        ``mode`` is ``"auto"`` (full on first use, delta once state is
        committed), or an explicit ``"full"`` / ``"delta"``. On a
        networked link the connecting side's choice is announced in the
        handshake and the serving side follows it (session-mode peers
        skip the announcement; keep both sides' query loops in
        lockstep). After a successful query the staged table mutations
        are committed into the per-protocol state - a failed exchange
        commits nothing and can simply be retried.
        """
        spec = get_spec(protocol)
        if spec.delta_of is not None:
            raise ValueError(
                f"query the base protocol {spec.delta_of!r}; delta rounds "
                "are scheduled automatically once state is committed"
            )
        if mode not in ("auto", "full", "delta"):
            raise ValueError(f"unknown query mode {mode!r}")
        if self._kind == "local":
            return self._query_local(spec, mode, chunk_size)
        if self._kind == "client":
            if self._session is not None:
                return self._query_client_session(spec, mode, chunk_size)
            return self._query_client(spec, mode, chunk_size)
        if self._session is not None:
            return self._query_server_session(spec, mode, chunk_size)
        return self._query_server(spec, mode, chunk_size)

    def close(self) -> None:
        """Tear the link down (closes a server peer's listener)."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "Peer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mode resolution
    # ------------------------------------------------------------------
    def _resolve_kind(self, spec: ProtocolSpec, mode: str, role: str) -> str:
        have = self._catalog._has_link(spec, role)
        if self._kind == "local":
            have = have and self._remote._has_link(spec, "sender")
        deltas = _delta_spec(spec) is not None
        if mode == "auto":
            return "delta" if (have and deltas) else "full"
        if mode == "delta":
            if not deltas:
                raise ValueError(f"{spec.name!r} has no delta schedule")
            if not have:
                raise ValueError(
                    f"no committed {spec.name!r} state yet; run a full "
                    "query first"
                )
        return mode

    # ------------------------------------------------------------------
    # In-process link
    # ------------------------------------------------------------------
    def _query_local(
        self, spec: ProtocolSpec, mode: str, chunk_size: int | None
    ) -> QueryResult:
        recv_cat, send_cat = self._catalog, self._remote
        params = recv_cat._ensure_params()
        kind = self._resolve_kind(spec, mode, "receiver")
        if kind == "full":
            receiver, r_ctx = recv_cat._full_machine(spec, "receiver", params)
            sender, s_ctx = send_cat._full_machine(spec, "sender", params)
            _exchange_local(spec, receiver, sender, chunk_size)
            answer = receiver.finish()
            recv_cat._commit_full(spec, "receiver", receiver.state, r_ctx, params)
            send_cat._commit_full(spec, "sender", sender.state, s_ctx, params)
            hit = r_ctx["hit"] or s_ctx["hit"]
        else:
            dspec = _delta_spec(spec)
            receiver, r_ctx = recv_cat._delta_machine(
                dspec, spec, "receiver", params
            )
            sender, s_ctx = send_cat._delta_machine(
                dspec, spec, "sender", params
            )
            _exchange_local(dspec, receiver, sender, chunk_size)
            answer = receiver.finish()
            recv_cat._commit_delta(spec, "receiver", receiver.state, r_ctx)
            send_cat._commit_delta(spec, "sender", sender.state, s_ctx)
            hit = False
        return QueryResult(
            answer=answer,
            mode=kind,
            cache_hit=hit,
            size_v_r=getattr(sender.state, "size_v_r", None),
            size_v_s=getattr(receiver.state, "size_v_s", None),
        )

    # ------------------------------------------------------------------
    # TCP client (party R)
    # ------------------------------------------------------------------
    def _query_client(
        self, spec: ProtocolSpec, mode: str, chunk_size: int | None
    ) -> QueryResult:
        from .net import tcp

        cat = self._catalog
        kind = self._resolve_kind(spec, mode, "receiver")
        endpoint = tcp._dial(self._host, self._port, self._timeout)
        try:
            if self._announce:
                endpoint.send(("query", spec.name, kind))
            tag, payload = endpoint.recv()
            if tag == "error":
                raise RuntimeError(f"server refused the query: {payload}")
            if tag != "params":
                raise ValueError(f"unexpected handshake message {tag!r}")
            params = cat._adopt_params(
                PublicParams.from_wire(tuple(payload))
            )
            if kind == "full":
                machine, ctx = cat._full_machine(spec, "receiver", params)
                wire_spec = spec
            else:
                wire_spec = _delta_spec(spec)
                machine, ctx = cat._delta_machine(
                    wire_spec, spec, "receiver", params
                )
            machine.ensure_state()
            tcp.run_rounds(
                endpoint, machine, wire_spec, sends="R",
                chunk_size=chunk_size, recorder=cat.recorder,
            )
            answer = machine.finish()
        finally:
            endpoint.close()
        if kind == "full":
            cat._commit_full(spec, "receiver", machine.state, ctx, params)
        else:
            cat._commit_delta(spec, "receiver", machine.state, ctx)
        return QueryResult(
            answer=answer,
            mode=kind,
            cache_hit=bool(ctx.get("hit")),
            size_v_s=getattr(machine.state, "size_v_s", None),
        )

    def _query_client_session(
        self, spec: ProtocolSpec, mode: str, chunk_size: int | None
    ) -> QueryResult:
        from .net import tcp

        cat = self._catalog
        opts = self._session
        kind = self._resolve_kind(spec, mode, "receiver")
        built: dict[str, Any] = {}
        snapshot = cat._snapshot()
        if kind == "full":
            wire_name = spec.name

            def make_receiver(wire: Any) -> Any:
                params = cat._adopt_params(
                    PublicParams.from_wire(tuple(wire))
                )
                cached, entry, digest = cat._cached_for(
                    spec, "receiver", params, snapshot
                )
                extra = {"cached": cached} if cached is not None else {}
                state = spec.make_receiver(
                    snapshot, params, cat.rng, engine=cat.engine, **extra
                )
                built.update(
                    state=state, params=params,
                    ctx={"digest": digest, "entry": entry,
                         "hit": cached is not None, "snapshot": snapshot},
                )
                return state
        else:
            dspec = _delta_spec(spec)
            wire_name = dspec.name
            exchange = cat._delta_exchange(spec, "receiver", snapshot)
            params = cat._ensure_params()

            def make_receiver(wire: Any) -> Any:
                cat._adopt_params(PublicParams.from_wire(tuple(wire)))
                state = dspec.make_receiver(
                    exchange, params, cat.rng, engine=cat.engine
                )
                built.update(
                    state=state, params=params,
                    ctx={"snapshot": snapshot},
                )
                return state

        answer, stats = tcp.connect_resumable_receiver(
            wire_name, None, cat.rng, self._host, self._port,
            config=opts.config, engine=cat.engine, recorder=cat.recorder,
            journal_dir=opts.journal_dir, journal_fsync=opts.journal_fsync,
            chunk_size=chunk_size, make_receiver=make_receiver,
        )
        if kind == "full":
            cat._commit_full(
                spec, "receiver", built["state"], built["ctx"], built["params"]
            )
        else:
            cat._commit_delta(spec, "receiver", built["state"], built["ctx"])
        return QueryResult(
            answer=answer,
            mode=kind,
            cache_hit=bool(built["ctx"].get("hit")),
            size_v_s=getattr(built["state"], "size_v_s", None),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # TCP server (party S)
    # ------------------------------------------------------------------
    def _query_server(
        self, spec: ProtocolSpec, mode: str, chunk_size: int | None
    ) -> QueryResult:
        from .net import tcp

        cat = self._catalog
        params = cat._ensure_params()
        if self._listener is None:
            raise RuntimeError("this server peer is closed")
        try:
            conn, _addr = self._listener.accept()
        except socket.timeout as exc:
            raise TimeoutError(
                f"no client connected within {self._timeout}s"
            ) from exc
        conn.settimeout(self._timeout)
        tcp._nodelay(conn)
        endpoint = tcp.SocketEndpoint(sock=conn)
        try:
            if self._announce:
                frame = endpoint.recv()
                if not (
                    isinstance(frame, tuple)
                    and len(frame) == 3
                    and frame[0] == "query"
                ):
                    endpoint.send(("error", "expected a query announcement"))
                    raise ValueError("client sent no query announcement")
                _tag, name, kind = frame
                if name != spec.name:
                    endpoint.send((
                        "error",
                        f"server is answering {spec.name!r}, not {name!r}",
                    ))
                    raise ValueError(
                        f"client asked for {name!r}, server is answering "
                        f"{spec.name!r}"
                    )
                if mode != "auto" and kind != mode:
                    endpoint.send((
                        "error", f"server requires a {mode} query",
                    ))
                    raise ValueError(
                        f"client asked for a {kind} query, server requires "
                        f"{mode}"
                    )
                if kind == "delta" and not cat._has_link(spec, "sender"):
                    endpoint.send((
                        "error",
                        "server has no committed state for a delta query",
                    ))
                    raise ValueError(
                        "client asked for a delta query but this catalog "
                        "has no committed state"
                    )
            else:
                kind = "full" if mode == "auto" else mode
            endpoint.send(("params", params.to_wire()))
            if kind == "full":
                machine, ctx = cat._full_machine(spec, "sender", params)
                wire_spec = spec
            else:
                wire_spec = _delta_spec(spec)
                machine, ctx = cat._delta_machine(
                    wire_spec, spec, "sender", params
                )
            machine.ensure_state()
            tcp.run_rounds(
                endpoint, machine, wire_spec, sends="S",
                chunk_size=chunk_size, recorder=cat.recorder,
            )
        finally:
            endpoint.close()
        if kind == "full":
            cat._commit_full(spec, "sender", machine.state, ctx, params)
        else:
            cat._commit_delta(spec, "sender", machine.state, ctx)
        return QueryResult(
            answer=None,
            mode=kind,
            cache_hit=bool(ctx.get("hit")),
            size_v_r=getattr(machine.state, "size_v_r", None),
        )

    def _query_server_session(
        self, spec: ProtocolSpec, mode: str, chunk_size: int | None
    ) -> QueryResult:
        from .net import tcp

        cat = self._catalog
        opts = self._session
        params = cat._ensure_params()
        kind = self._resolve_kind(spec, mode, "sender")
        built: dict[str, Any] = {}
        snapshot = cat._snapshot()
        if kind == "full":
            wire_name = spec.name
            cached, entry, digest = cat._cached_for(
                spec, "sender", params, snapshot
            )
            ctx = {
                "digest": digest, "entry": entry,
                "hit": cached is not None, "snapshot": snapshot,
            }
            extra = {"cached": cached} if cached is not None else {}

            def make_sender() -> Any:
                state = spec.make_sender(
                    snapshot, params, cat.rng, engine=cat.engine, **extra
                )
                built["state"] = state
                return state
        else:
            dspec = _delta_spec(spec)
            wire_name = dspec.name
            ctx = {"snapshot": snapshot}
            exchange = cat._delta_exchange(spec, "sender", snapshot)

            def make_sender() -> Any:
                state = dspec.make_sender(
                    exchange, params, cat.rng, engine=cat.engine
                )
                built["state"] = state
                return state

        def _capture(actual_port: int) -> None:
            self._port = actual_port
            if self._ready_callback is not None:
                self._ready_callback(actual_port)

        size_v_r, stats = tcp.serve_resumable_sender(
            wire_name, None, params, cat.rng,
            host=self._host, port=self._port, ready_callback=_capture,
            config=opts.config, engine=cat.engine, recorder=cat.recorder,
            journal_dir=opts.journal_dir, journal_fsync=opts.journal_fsync,
            chunk_size=chunk_size, make_sender=make_sender,
        )
        if kind == "full":
            cat._commit_full(spec, "sender", built["state"], ctx, params)
        else:
            cat._commit_delta(spec, "sender", built["state"], ctx)
        return QueryResult(
            answer=None,
            mode=kind,
            cache_hit=bool(ctx.get("hit")),
            size_v_r=size_v_r,
            stats=stats,
        )


def run(
    protocol: str | ProtocolSpec,
    receiver_data: Any,
    sender_data: Any,
    *,
    bits: int = 512,
    params: PublicParams | None = None,
    seed: Any = None,
    rng: random.Random | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
) -> RunResult:
    """Run both parties of any registered protocol in-process.

    A thin open-query-close over the stateful core: two
    :class:`Catalog` objects are opened, paired, queried once and
    dropped - the wire payloads (and rng draw order) are identical to
    what this function always produced. Delta specs
    (``"<name>+delta"``) run directly with
    :class:`~repro.protocols.delta.DeltaExchange` inputs and commit
    nothing (the caller owns the base state).

    Args:
        protocol: registry name (or an unregistered spec object).
        receiver_data: party R's private input (a value sequence).
        sender_data: party S's private input, shaped per
            ``spec.sender_input`` (value list, ``v -> ext(v)`` map, or
            ``v -> amount`` map).
        bits: safe-prime modulus size when ``params`` is not given.
        params: explicit public parameters (overrides ``bits``).
        seed: master seed for reproducible runs; each party gets an
            independently derived rng.
        rng: explicit master rng (overrides ``seed``).
        engine: batch-crypto execution strategy
            (:mod:`repro.crypto.engine`).
        recorder: per-phase metrics collector
            (:class:`repro.analysis.instrumentation.MetricsRecorder`).
        chunk_size: stream chunkable rounds in slices of at most this
            many elements; ``None`` exchanges whole-round payloads.
    """
    spec = get_spec(protocol)
    if params is None:
        params = PublicParams.for_bits(bits)
    rng_r, rng_s = _party_rngs(seed, rng)
    if spec.delta_of is not None:
        receiver = ReceiverMachine(
            spec, receiver_data, params, rng_r, engine=engine,
            recorder=recorder,
        )
        sender = SenderMachine(
            spec, sender_data, params, rng_s, engine=engine,
            recorder=recorder,
        )
        _exchange_local(spec, receiver, sender, chunk_size)
        answer = receiver.finish()
        return RunResult(
            answer=answer,
            size_v_r=getattr(sender.state, "size_v_r", None),
            size_v_s=getattr(receiver.state, "size_v_s", None),
        )
    catalog_r = Catalog(
        receiver_data, params=params, rng=rng_r, engine=engine,
        recorder=recorder,
    )
    catalog_s = Catalog(
        sender_data, params=params, rng=rng_s, engine=engine,
        recorder=recorder,
    )
    result = catalog_r.pair(catalog_s).query(spec, chunk_size=chunk_size)
    return RunResult(
        answer=result.answer,
        size_v_r=result.size_v_r,
        size_v_s=result.size_v_s,
    )


def serve(
    protocol: str | ProtocolSpec,
    data: Any,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    bits: int = 512,
    params: PublicParams | None = None,
    seed: Any = None,
    rng: random.Random | None = None,
    ready_callback: Callable[[int], None] | None = None,
    timeout: float | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
    resumable: bool = False,
    journal_dir: Any = None,
    config: Any = None,
    async_: bool = False,
    session: SessionOptions | None = None,
) -> ServeResult:
    """Run party S of any registered protocol as a TCP server.

    Blocks until one receiver has been served and returns a
    :class:`ServeResult` carrying the actual bound port - with
    ``port=0`` the kernel picks a free one, exposed as
    ``ServeResult.port`` (and still passed to ``ready_callback`` as
    soon as the listener is up). The plain path is a thin
    open-query-close over :class:`Catalog` / :class:`Peer` speaking
    the legacy handshake, so the wire transcript is byte-identical to
    earlier releases.

    ``session=SessionOptions(...)`` serves under the fault-tolerant
    session layer: checksummed frames, resume after disconnects,
    chunk-granular cursors when ``chunk_size`` is set, and - with a
    ``journal_dir`` - crash recovery from the on-disk round journal.
    The older ``resumable=`` / ``journal_dir=`` kwargs still work but
    are deprecated (warn-once); ``config`` overrides the session
    config either way.

    ``async_=True`` hosts the same one-session run on the event-loop
    server (:class:`~repro.net.server.ProtocolServer`): identical wire
    bytes and journals, but sockets are owned by an event loop rather
    than a blocked accept thread. Implies the resumable session layer.
    For serving many sessions concurrently, use ``ProtocolServer`` (or
    :class:`~repro.net.shard.ShardedProtocolServer`) directly.
    """
    from .net import tcp

    spec = get_spec(protocol)
    if params is None:
        params = PublicParams.for_bits(bits)
    if rng is None:
        rng = random.Random(seed)
    opts = _coerce_session("serve", resumable, journal_dir, session)
    bound: dict[str, int] = {}

    def _capture(actual_port: int) -> None:
        bound["port"] = actual_port
        if ready_callback is not None:
            ready_callback(actual_port)

    if async_:
        return _serve_async(
            spec, data, params, rng, host=host, port=port,
            ready_callback=_capture,
            config=config if config is not None else (opts.config if opts else None),
            engine=engine, recorder=recorder,
            journal_dir=opts.journal_dir if opts else None,
            chunk_size=chunk_size,
        )
    if opts is not None:
        size_v_r, stats = tcp.serve_resumable_sender(
            spec.name, data, params, rng, host=host, port=port,
            ready_callback=_capture,
            config=config if config is not None else opts.config,
            engine=engine, recorder=recorder, journal_dir=opts.journal_dir,
            journal_fsync=opts.journal_fsync, chunk_size=chunk_size,
        )
        return ServeResult(size_v_r=size_v_r, port=bound["port"], stats=stats)
    catalog = Catalog(
        data, params=params, rng=rng, engine=engine, recorder=recorder
    )
    peer = catalog.serve(
        host=host, port=port, ready_callback=_capture, timeout=timeout,
        announce=False,
    )
    try:
        result = peer.query(spec, chunk_size=chunk_size)
    finally:
        peer.close()
    return ServeResult(
        size_v_r=result.size_v_r, port=bound["port"], stats=None
    )


def _serve_async(
    spec: ProtocolSpec,
    data: Any,
    params: PublicParams,
    rng: random.Random,
    *,
    host: str,
    port: int,
    ready_callback: Callable[[int], None],
    config: Any,
    engine: Any,
    recorder: Any,
    journal_dir: Any,
    chunk_size: int | None,
) -> ServeResult:
    """One-session serve on the event-loop server (``async_=True``)."""
    from .net.server import ProtocolOffer, ProtocolServer

    offer = ProtocolOffer(
        protocol=spec.name,
        params=params,
        make_sender=lambda: spec.make_sender(data, params, rng, engine=engine),
    )
    server = ProtocolServer(
        [offer], host=host, port=port, max_sessions=1, config=config,
        journal_dir=journal_dir, recorder=recorder, chunk_size=chunk_size,
    ).start()
    try:
        ready_callback(server.port)
        cfg = server.config
        deadline_s = cfg.timeout_s * cfg.retry.max_attempts
        if not server.wait_for_sessions(count=1, timeout=deadline_s):
            raise TimeoutError(f"no client connected within {deadline_s}s")
        records = list(server.sessions.values())
        if not records:  # the only session failed at start (journal)
            raise RuntimeError("session failed during startup/recovery")
        record = records[0]
    finally:
        bound_port = server._bound_port
        server.shutdown(drain_timeout_s=server.config.timeout_s)
    if record.error is not None:
        raise record.error
    return ServeResult(
        size_v_r=record.result.size_v_r,
        port=bound_port,
        stats=record.session.stats,
    )


def connect(
    protocol: str | ProtocolSpec,
    data: Any,
    *,
    host: str = "127.0.0.1",
    port: int,
    seed: Any = None,
    rng: random.Random | None = None,
    timeout: float | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
    resumable: bool = False,
    journal_dir: Any = None,
    config: Any = None,
    retry_busy: int = 0,
    retry: Any = None,
    session: SessionOptions | None = None,
) -> ConnectResult:
    """Run party R of any registered protocol as a TCP client.

    The server's handshake carries the public parameters, so R needs
    no setup beyond the address. Returns a :class:`ConnectResult`
    whose ``answer`` is the protocol's output for R. The plain path is
    a thin open-query-close over :class:`Catalog` / :class:`Peer`
    speaking the legacy handshake, so the wire transcript is
    byte-identical to earlier releases.

    ``session=SessionOptions(...)`` connects under the fault-tolerant
    session layer - it must match a resumable server. The older
    ``resumable=`` / ``journal_dir=`` kwargs still work but are
    deprecated (warn-once). ``chunk_size`` streams R's chunkable
    outgoing rounds; inbound chunking is auto-detected either way.

    ``retry_busy`` waits out up to that many typed busy refusals from
    a saturated or draining server, sleeping the server's own retry
    hint stretched by jitter
    (:func:`~repro.net.session.busy_backoff_s`) between redials; the
    refusals actually waited out are reported as
    ``ConnectResult.busy_retries``. The default 0 keeps busy an
    immediate :class:`~repro.net.session.ServerBusyError`, exactly as
    before.

    ``retry`` is the unified alternative: a
    :class:`~repro.net.session.ClientRetryPolicy` (or a
    ``"key=value,..."`` spec string for
    :meth:`~repro.net.session.ClientRetryPolicy.parse`) governing max
    dial attempts, per-attempt timeout, a total deadline budget,
    jittered exponential backoff that honors server retry hints, and
    *which* typed failures are redialed - busy refusals and
    :class:`~repro.net.session.WorkerLost` (a supervised shard whose
    worker is mid-respawn) by default. When no explicit ``config`` is
    passed the policy also shapes the session config
    (per-attempt timeout, in-session reconnect budget). Mutually
    exclusive with ``retry_busy``.
    """
    import time

    from .net import tcp
    from .net.session import (
        ClientRetryPolicy,
        ServerBusyError,
        SessionError,
        busy_backoff_s,
    )

    spec = get_spec(protocol)
    if rng is None:
        rng = random.Random(seed)
    opts = _coerce_session("connect", resumable, journal_dir, session)
    if retry is not None and retry_busy:
        raise ValueError("pass either retry= or retry_busy=, not both")
    if isinstance(retry, str):
        retry = ClientRetryPolicy.parse(retry)
    if retry is not None and config is None:
        config = retry.session_config()

    catalog = (
        Catalog(data, params=None, rng=rng, engine=engine, recorder=recorder)
        if opts is None
        else None
    )

    def _attempt() -> ConnectResult:
        if opts is not None:
            answer, stats = tcp.connect_resumable_receiver(
                spec.name, data, rng, host, port,
                config=config if config is not None else opts.config,
                engine=engine, recorder=recorder,
                journal_dir=opts.journal_dir,
                journal_fsync=opts.journal_fsync, chunk_size=chunk_size,
            )
            return ConnectResult(answer=answer, stats=stats)
        peer = catalog.connect(
            host, port=port, timeout=timeout, announce=False
        )
        result = peer.query(spec, mode="full", chunk_size=chunk_size)
        return ConnectResult(answer=result.answer, stats=None)

    if retry is not None:
        deadline = (
            time.monotonic() + retry.total_deadline_s
            if retry.total_deadline_s is not None
            else None
        )
        attempt = 0
        busy_waited = 0
        backoff_rng = random.Random(rng.getrandbits(64))
        while True:
            attempt += 1
            try:
                result = _attempt()
            except SessionError as exc:
                if not retry.retryable(exc):
                    raise
                if attempt >= retry.max_attempts:
                    raise
                delay = retry.backoff_s(
                    attempt - 1,
                    backoff_rng,
                    hint_s=getattr(exc, "retry_after_s", None),
                )
                if (
                    deadline is not None
                    and time.monotonic() + delay > deadline
                ):
                    raise
                if isinstance(exc, ServerBusyError):
                    busy_waited += 1
                time.sleep(delay)
                continue
            return ConnectResult(
                answer=result.answer,
                stats=result.stats,
                busy_retries=busy_waited,
                retries=attempt - 1,
            )

    waited = 0
    backoff_rng: random.Random | None = None
    while True:
        try:
            result = _attempt()
        except ServerBusyError as exc:
            if waited >= max(retry_busy, 0):
                raise
            waited += 1
            if backoff_rng is None:
                # Derived lazily so retry_busy=0 runs draw exactly the
                # same rng stream they always did.
                backoff_rng = random.Random(rng.getrandbits(64))
            time.sleep(busy_backoff_s(exc.retry_after_s, backoff_rng))
            continue
        return ConnectResult(
            answer=result.answer, stats=result.stats, busy_retries=waited
        )
