"""Appendix A circuit baseline: boolean circuit IR, comparator and
intersection circuit builders, Yao garbling over OT, and the analytic
cost model that regenerates the Appendix A tables."""

from .boolean import Circuit, Gate, GATE_FUNCTIONS
from .builders import (
    brute_force_intersection_circuit,
    encode_value_bits,
    equality_comparator,
    less_than_comparator,
    pack_inputs,
)
from .costmodel import (
    CircuitCostModel,
    ComparisonRow,
    PartitionChoice,
    equality_gates,
    less_than_gates,
)
from .garble import (
    GarbledCircuit,
    YaoPSIStats,
    evaluate_garbled,
    garble,
    yao_intersection,
)

__all__ = [
    "Circuit",
    "Gate",
    "GATE_FUNCTIONS",
    "equality_comparator",
    "less_than_comparator",
    "brute_force_intersection_circuit",
    "encode_value_bits",
    "pack_inputs",
    "garble",
    "evaluate_garbled",
    "GarbledCircuit",
    "yao_intersection",
    "YaoPSIStats",
    "CircuitCostModel",
    "ComparisonRow",
    "PartitionChoice",
    "equality_gates",
    "less_than_gates",
]
