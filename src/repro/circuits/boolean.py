"""Boolean circuit intermediate representation and evaluator.

Appendix A costs the alternative of computing the intersection with a
Yao-style garbled circuit. To make that comparison executable we need
actual circuits: this module provides a small gate-list IR (two-input
gates over numbered wires, plus constants) and a direct evaluator used
both for correctness checks and as the reference semantics the garbled
evaluation must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["Gate", "Circuit", "GATE_FUNCTIONS"]

#: Truth tables of the supported two-input gates.
GATE_FUNCTIONS: dict[str, Callable[[int, int], int]] = {
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "XNOR": lambda a, b: 1 - (a ^ b),
    "NAND": lambda a, b: 1 - (a & b),
    "NOR": lambda a, b: 1 - (a | b),
    "ANDNOT": lambda a, b: (1 - a) & b,  # ¬a ∧ b
}


@dataclass(frozen=True)
class Gate:
    """One two-input gate: ``out = op(wire a, wire b)``."""

    op: str
    a: int
    b: int
    out: int


@dataclass
class Circuit:
    """A feed-forward circuit over numbered wires.

    Wires ``0 .. n_inputs-1`` are inputs; constants and gate outputs
    allocate further wires in creation order, so a single left-to-right
    pass evaluates the whole circuit.
    """

    n_inputs: int
    gates: list[Gate] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    constants: dict[int, int] = field(default_factory=dict)
    _next_wire: int = field(init=False)

    def __post_init__(self) -> None:
        self._next_wire = self.n_inputs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def constant(self, bit: int) -> int:
        """A wire pinned to 0 or 1."""
        if bit not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        wire = self._next_wire
        self._next_wire += 1
        self.constants[wire] = bit
        return wire

    def add_gate(self, op: str, a: int, b: int) -> int:
        """Append a gate; returns its output wire."""
        if op not in GATE_FUNCTIONS:
            raise ValueError(f"unknown gate op {op!r}")
        if not (0 <= a < self._next_wire and 0 <= b < self._next_wire):
            raise ValueError(f"gate inputs ({a}, {b}) reference unknown wires")
        out = self._next_wire
        self._next_wire += 1
        self.gates.append(Gate(op=op, a=a, b=b, out=out))
        return out

    def not_gate(self, a: int) -> int:
        """``¬a`` as a NOR with itself (keeps the IR two-input only)."""
        return self.add_gate("NOR", a, a)

    def and_tree(self, wires: Sequence[int]) -> int:
        """Balanced AND over 1+ wires (``len - 1`` gates)."""
        return self._tree("AND", wires)

    def or_tree(self, wires: Sequence[int]) -> int:
        """Balanced OR over 1+ wires (``len - 1`` gates)."""
        return self._tree("OR", wires)

    def _tree(self, op: str, wires: Sequence[int]) -> int:
        if not wires:
            raise ValueError(f"{op} tree needs at least one wire")
        level = list(wires)
        while len(level) > 1:
            nxt = [
                self.add_gate(op, level[i], level[i + 1])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def set_outputs(self, wires: Iterable[int]) -> None:
        """Declare which wires the circuit outputs, in order."""
        self.outputs = list(wires)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_wires(self) -> int:
        return self._next_wire

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def gate_count_by_op(self) -> dict[str, int]:
        """Histogram of gate types in the circuit."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.op] = counts.get(gate.op, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[int]) -> list[int]:
        """Plain evaluation; the reference semantics for garbling."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input bits, got {len(inputs)}"
            )
        values: dict[int, int] = {i: bit & 1 for i, bit in enumerate(inputs)}
        values.update(self.constants)
        for gate in self.gates:
            values[gate.out] = GATE_FUNCTIONS[gate.op](values[gate.a], values[gate.b])
        return [values[w] for w in self.outputs]
