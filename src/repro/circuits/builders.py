"""Circuit builders for the Appendix A comparison.

Builds the comparators Appendix A counts gates for (equality ``Ge`` and
less-than ``Gl``) and the brute-force intersection circuit: every value
of ``V_S`` compared against every value of ``V_R``, OR-merged per R
value.

Gate-count notes. The paper charges ``Ge = 2w - 1`` for equality -
matched exactly by :func:`equality_comparator` (``w`` XNORs plus a
``w-1``-gate AND tree). For less-than the paper charges ``Gl = 5w - 3``;
our :func:`less_than_comparator` uses the two-input ``ANDNOT`` gate and
needs only ``4w - 3`` gates (garbled-circuit tables cost the same for
any two-input gate). The analytic cost model in
:mod:`repro.circuits.costmodel` uses the paper's constants so its
numbers reproduce the printed tables; tests assert our built circuits
never exceed them.
"""

from __future__ import annotations

from typing import Sequence

from .boolean import Circuit

__all__ = [
    "equality_comparator",
    "less_than_comparator",
    "brute_force_intersection_circuit",
    "encode_value_bits",
    "pack_inputs",
]


def encode_value_bits(value: int, width: int) -> list[int]:
    """Little-endian bit vector of a ``width``-bit value."""
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def equality_comparator(width: int) -> Circuit:
    """``[a == b]`` over two ``width``-bit inputs; exactly ``2w - 1`` gates.

    Input layout: wires ``0..w-1`` are ``a`` (little-endian), wires
    ``w..2w-1`` are ``b``.
    """
    circuit = Circuit(n_inputs=2 * width)
    bit_eq = [circuit.add_gate("XNOR", i, width + i) for i in range(width)]
    circuit.set_outputs([circuit.and_tree(bit_eq)])
    return circuit


def less_than_comparator(width: int) -> Circuit:
    """``[a < b]`` over two ``width``-bit inputs; ``4w - 3`` gates.

    Ripple construction from the LSB: at bit ``i``,
    ``lt_i = (¬a_i ∧ b_i) ∨ (a_i ≡ b_i) ∧ lt_{i-1}``.
    """
    circuit = Circuit(n_inputs=2 * width)
    lt = circuit.add_gate("ANDNOT", 0, width)  # bit 0: ¬a_0 ∧ b_0
    for i in range(1, width):
        a_i, b_i = i, width + i
        strictly = circuit.add_gate("ANDNOT", a_i, b_i)
        equal = circuit.add_gate("XNOR", a_i, b_i)
        carry = circuit.add_gate("AND", equal, lt)
        lt = circuit.add_gate("OR", strictly, carry)
    circuit.set_outputs([lt])
    return circuit


def brute_force_intersection_circuit(
    width: int, n_s: int, n_r: int
) -> Circuit:
    """The Appendix A brute-force circuit.

    Inputs: S's ``n_s`` values (wires ``0 .. n_s*w - 1``) followed by
    R's ``n_r`` values. Outputs: one bit per R value - 1 iff it equals
    at least one S value (the vector ``z`` showing "which of R's values
    also belong to V_S").

    Gate count: ``n_s * n_r * (2w - 1)`` comparators plus
    ``n_r * (n_s - 1)`` OR-merge gates.
    """
    circuit = Circuit(n_inputs=(n_s + n_r) * width)
    outputs = []
    for j in range(n_r):
        r_base = (n_s + j) * width
        hits = []
        for i in range(n_s):
            s_base = i * width
            bit_eq = [
                circuit.add_gate("XNOR", s_base + k, r_base + k)
                for k in range(width)
            ]
            hits.append(circuit.and_tree(bit_eq))
        outputs.append(circuit.or_tree(hits))
    circuit.set_outputs(outputs)
    return circuit


def pack_inputs(
    s_values: Sequence[int], r_values: Sequence[int], width: int
) -> list[int]:
    """Flatten both parties' values into the circuit's input layout."""
    bits: list[int] = []
    for value in list(s_values) + list(r_values):
        bits.extend(encode_value_bits(value, width))
    return bits
