"""The Appendix A analytic cost model, re-derived.

Regenerates every number in Appendix A:

* the Naor-Pinkas amortized OT cost (``C_ot = 0.157 C_e``,
  ``C'_ot >= 32 k_1`` at the computation-optimal ``l = 8``);
* the input-coding cost ``w * n * C_ot ~ 5 n C_e`` computation and
  ``w * n * 32 k_1 ~ 1e5 n`` bits of communication;
* the brute-force circuit bound ``|V_R| * |V_S| * Ge``;
* the partitioning-circuit lower bound
  ``f(n) >= (m^2/(m-1) * Gl + Ge) * (n^(log_m(2m-1)) - 1)``
  with the optimal-``m`` search (Table: n=1e4 -> m=11, f=2.3e8; ...);
* the evaluation cost (``2 C_r`` per gate, ``4 k0 = 256`` bits per
  gate) and the final computation/communication comparison tables,
  including the "144 days vs 0.5 hours on a T1 line" headline.

All closed forms use the paper's gate constants ``Ge = 2w - 1`` and
``Gl = 5w - 3`` with ``w = 32`` and ``k0 = 64``, ``k1 = 100`` defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..crypto.ot import NaorPinkasCostModel

__all__ = [
    "CircuitCostModel",
    "ComparisonRow",
    "PartitionChoice",
]


def equality_gates(width: int) -> int:
    """``Ge``: gates to compare two ``w``-bit numbers for equality."""
    return 2 * width - 1


def less_than_gates(width: int) -> int:
    """``Gl``: gates to order two ``w``-bit numbers (paper's constant)."""
    return 5 * width - 3


@dataclass(frozen=True)
class PartitionChoice:
    """Optimal split factor and resulting gate bound for one ``n``."""

    n: int
    m: int
    gates: float


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the Appendix A.2 comparison tables."""

    n: int
    circuit_input_ce: float       # OT coding cost, units of C_e
    circuit_eval_cr: float        # evaluation cost, units of C_r
    ours_ce: float                # our protocol, units of C_e
    circuit_input_bits: float
    circuit_tables_bits: float
    ours_bits: float


@dataclass
class CircuitCostModel:
    """Parameters and formulas of Appendix A.

    Attributes:
        width: input value size in bits (``w = 32`` in the paper).
        k0: garbled-table key size (64).
        k1: oblivious-transfer key size (100).
        k: our protocol's codeword size (1024).
        ot: the Naor-Pinkas amortization model.
    """

    width: int = 32
    k0: int = 64
    k1: int = 100
    k: int = 1024
    ot: NaorPinkasCostModel = field(
        default_factory=lambda: NaorPinkasCostModel(ce_over_cx=1000.0, k1_bits=100)
    )

    # ------------------------------------------------------------------
    # A.1.1 - input coding
    # ------------------------------------------------------------------
    def ot_unit_cost_ce(self) -> float:
        """``C_ot`` at the computation-optimal ``l`` (0.157 C_e)."""
        return self.ot.computation_cost(self.ot.optimal_l())

    def ot_unit_bits(self) -> float:
        """``C'_ot`` lower bound at the same ``l`` (32 k_1 bits)."""
        return self.ot.communication_bits(self.ot.optimal_l())

    def input_coding_ce(self, n: int) -> float:
        """Computation to code R's input: ``w * n * C_ot``."""
        return self.width * n * self.ot_unit_cost_ce()

    def input_coding_bits(self, n: int) -> float:
        """Communication of the input coding: ``w * n * C'_ot``."""
        return self.width * n * self.ot_unit_bits()

    # ------------------------------------------------------------------
    # A.1.2 - circuit size
    # ------------------------------------------------------------------
    def brute_force_gates(self, n_s: int, n_r: int) -> float:
        """Lower bound for the brute-force circuit."""
        return n_s * n_r * equality_gates(self.width)

    def partition_gates(self, n: int, m: int) -> float:
        """Closed-form lower bound ``f(n)`` for split factor ``m``.

        ``f(n) >= (m^2/(m-1) * Gl + Ge) * (n^(log_m(2m-1)) - 1)``.
        """
        if m < 2:
            raise ValueError("partitioning needs m >= 2")
        gl, ge = less_than_gates(self.width), equality_gates(self.width)
        exponent = math.log(2 * m - 1, m)
        return (m * m / (m - 1) * gl + ge) * (n**exponent - 1)

    def optimal_partition(self, n: int, m_max: int = 256) -> PartitionChoice:
        """The ``m`` minimizing the partitioning bound for this ``n``."""
        best_m = min(range(2, m_max + 1), key=lambda m: self.partition_gates(n, m))
        return PartitionChoice(n=n, m=best_m, gates=self.partition_gates(n, best_m))

    # ------------------------------------------------------------------
    # Evaluation phase
    # ------------------------------------------------------------------
    def evaluation_cr(self, gates: float) -> float:
        """Evaluator computation: two PRF calls per gate, units of C_r."""
        return 2.0 * gates

    def evaluation_bits(self, gates: float) -> float:
        """Garbled-table traffic: ``4 k0`` bits per gate."""
        return 4.0 * self.k0 * gates

    # ------------------------------------------------------------------
    # Our protocol, for the comparison (intersection protocol, n = n_S = n_R)
    # ------------------------------------------------------------------
    def ours_ce(self, n: int) -> float:
        """``2 C_e (|V_S| + |V_R|) = 4 n C_e``."""
        return 4.0 * n

    def ours_bits(self, n: int) -> float:
        """``(|V_S| + 2 |V_R|) k = 3 n k`` bits."""
        return 3.0 * n * self.k

    # ------------------------------------------------------------------
    # The printed tables
    # ------------------------------------------------------------------
    def circuit_size_table(self, ns: tuple[int, ...] = (10**4, 10**6, 10**8)) -> list[PartitionChoice]:
        """The A.1.2 table: optimal ``m`` and ``f(n)`` per ``n``."""
        return [self.optimal_partition(n) for n in ns]

    def comparison_table(
        self, ns: tuple[int, ...] = (10**4, 10**6, 10**8)
    ) -> list[ComparisonRow]:
        """The A.2 computation and communication comparison rows."""
        rows = []
        for n in ns:
            gates = self.optimal_partition(n).gates
            rows.append(
                ComparisonRow(
                    n=n,
                    circuit_input_ce=self.input_coding_ce(n),
                    circuit_eval_cr=self.evaluation_cr(gates),
                    ours_ce=self.ours_ce(n),
                    circuit_input_bits=self.input_coding_bits(n),
                    circuit_tables_bits=self.evaluation_bits(gates),
                    ours_bits=self.ours_bits(n),
                )
            )
        return rows

    def t1_transfer_days(self, bits: float, bandwidth_bps: float = 1.544e6) -> float:
        """Transfer time in days on a T1-class link (the headline unit)."""
        return bits / bandwidth_bps / 86400.0
