"""Yao garbled circuits (semi-honest), the executable Appendix A baseline.

The paper only *estimates* the circuit approach's cost; this module
implements it, so the comparison benches can run both protocols on the
same inputs at small ``n`` and extrapolate with the analytic model.

Construction: classic point-and-permute garbling.

* Every wire gets two random 128-bit labels and a random permute bit;
  a label's low "color" bit is its permute-masked truth value.
* Each gate ships a 4-row table; row ``2*color(a) + color(b)`` holds
  ``H(label_a, label_b, gate_id) XOR (label_out || color_out)``.
* The garbler (S in Appendix A - S hardwires its input ``x`` into the
  circuit) sends its own input labels directly; the evaluator (R)
  obtains labels for its input bits through 1-out-of-2 oblivious
  transfer, one OT per input bit, exactly the accounting of A.1.1.
* Output wires carry a decode table mapping color bit -> truth value.

The evaluator applies a pseudorandom function twice per gate in the
worst case (the paper charges ``2 C_r`` per gate); here it is one
SHA-256 per gate row actually decrypted.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Sequence

from ..crypto.groups import QRGroup
from ..crypto.ot import OTReceiver, OTSender
from .boolean import GATE_FUNCTIONS, Circuit
from .builders import brute_force_intersection_circuit, pack_inputs

__all__ = ["GarbledCircuit", "garble", "evaluate_garbled", "YaoPSIStats", "yao_intersection"]

_LABEL_BYTES = 16


def _hash_row(label_a: bytes, label_b: bytes, gate_id: int) -> bytes:
    h = hashlib.sha256()
    h.update(b"repro.garble")
    h.update(gate_id.to_bytes(4, "big"))
    h.update(label_a)
    h.update(label_b)
    return h.digest()[: _LABEL_BYTES + 1]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class GarbledCircuit:
    """Everything the evaluator receives (besides its input labels)."""

    circuit: Circuit
    tables: list[tuple[bytes, bytes, bytes, bytes]]
    constant_labels: dict[int, bytes]
    output_decode: dict[int, dict[int, int]]  # wire -> color bit -> value

    @property
    def table_bytes(self) -> int:
        """Wire size of the garbled tables (4 rows per gate)."""
        return sum(sum(len(row) for row in table) for table in self.tables)


@dataclass
class _GarblingSecrets:
    """Garbler-side state: both labels per wire."""

    labels: dict[int, tuple[bytes, bytes]]  # wire -> (label0, label1)
    perm: dict[int, int]  # wire -> permute bit

    def active_label(self, wire: int, value: int) -> bytes:
        label = self.labels[wire][value]
        color = self.perm[wire] ^ value
        return label + bytes([color])


def garble(
    circuit: Circuit, rng: random.Random
) -> tuple[GarbledCircuit, _GarblingSecrets]:
    """Garble a circuit; returns the public part and the secrets."""
    labels: dict[int, tuple[bytes, bytes]] = {}
    perm: dict[int, int] = {}

    def new_wire(wire: int) -> None:
        labels[wire] = (rng.randbytes(_LABEL_BYTES), rng.randbytes(_LABEL_BYTES))
        perm[wire] = rng.randrange(2)

    for wire in range(circuit.n_inputs):
        new_wire(wire)
    for wire in circuit.constants:
        new_wire(wire)

    secrets = _GarblingSecrets(labels=labels, perm=perm)
    tables = []
    for gate_id, gate in enumerate(circuit.gates):
        new_wire(gate.out)
        fn = GATE_FUNCTIONS[gate.op]
        rows: list[bytes] = [b""] * 4
        for va in (0, 1):
            for vb in (0, 1):
                color_a = perm[gate.a] ^ va
                color_b = perm[gate.b] ^ vb
                out_value = fn(va, vb)
                plaintext = secrets.active_label(gate.out, out_value)
                pad = _hash_row(labels[gate.a][va], labels[gate.b][vb], gate_id)
                rows[2 * color_a + color_b] = _xor(pad, plaintext)
        tables.append(tuple(rows))

    constant_labels = {
        wire: secrets.active_label(wire, bit)
        for wire, bit in circuit.constants.items()
    }
    output_decode = {
        wire: {perm[wire] ^ value: value for value in (0, 1)}
        for wire in circuit.outputs
    }
    garbled = GarbledCircuit(
        circuit=circuit,
        tables=tables,
        constant_labels=constant_labels,
        output_decode=output_decode,
    )
    return garbled, secrets


def evaluate_garbled(
    garbled: GarbledCircuit, input_labels: Sequence[bytes]
) -> list[int]:
    """Evaluate with one active label (label || color byte) per input."""
    circuit = garbled.circuit
    if len(input_labels) != circuit.n_inputs:
        raise ValueError(
            f"expected {circuit.n_inputs} input labels, got {len(input_labels)}"
        )
    active: dict[int, bytes] = dict(enumerate(input_labels))
    active.update(garbled.constant_labels)

    for gate_id, gate in enumerate(circuit.gates):
        tagged_a, tagged_b = active[gate.a], active[gate.b]
        label_a, color_a = tagged_a[:-1], tagged_a[-1]
        label_b, color_b = tagged_b[:-1], tagged_b[-1]
        row = garbled.tables[gate_id][2 * color_a + color_b]
        active[gate.out] = _xor(row, _hash_row(label_a, label_b, gate_id))

    return [
        garbled.output_decode[wire][active[wire][-1]] for wire in circuit.outputs
    ]


@dataclass
class YaoPSIStats:
    """Accounting for one garbled-circuit intersection run."""

    intersection: set[int]
    gate_count: int
    ot_count: int
    table_bytes: int
    ot_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.table_bytes + self.ot_bytes


def yao_intersection(
    v_s: Sequence[int],
    v_r: Sequence[int],
    width: int,
    group: QRGroup,
    rng: random.Random,
) -> YaoPSIStats:
    """Compute ``V_S ∩ V_R`` with a garbled brute-force circuit.

    S garbles the circuit (its inputs hardwired by sending their active
    labels); R's input bits are fetched via one OT each, then R
    evaluates. Only practical for small ``n`` - which is the point the
    Appendix A benches make empirically.
    """
    s_values = sorted(set(v_s))
    r_values = sorted(set(v_r))
    circuit = brute_force_intersection_circuit(width, len(s_values), len(r_values))
    garbled, secrets = garble(circuit, rng)

    bits = pack_inputs(s_values, r_values, width)
    s_bit_count = len(s_values) * width

    input_labels: list[bytes] = []
    ot_bytes = 0
    group_element_bytes = (group.p.bit_length() + 7) // 8
    for wire, bit in enumerate(bits):
        if wire < s_bit_count:
            # Garbler's own input: active label sent directly.
            input_labels.append(secrets.active_label(wire, bit))
            continue
        # Evaluator's input bit: 1-out-of-2 OT between the two labels.
        m0 = secrets.active_label(wire, 0)
        m1 = secrets.active_label(wire, 1)
        sender = OTSender(group, m0, m1, rng)
        receiver = OTReceiver(group, bit, rng)
        pk0 = receiver.first_message(sender.c_point)
        transfer = sender.respond(pk0)
        input_labels.append(receiver.receive(transfer))
        # Wire accounting: C point + PK0 + two (group element, ciphertext) pairs.
        ot_bytes += 4 * group_element_bytes + len(transfer.c0) + len(transfer.c1)

    output_bits = evaluate_garbled(garbled, input_labels)
    matched = {value for value, bit in zip(r_values, output_bits) if bit}
    return YaoPSIStats(
        intersection=matched,
        gate_count=circuit.gate_count,
        ot_count=len(r_values) * width,
        table_bytes=garbled.table_bytes,
        ot_bytes=ot_bytes,
    )
