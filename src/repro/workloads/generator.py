"""Synthetic workload generators for tests, benchmarks and examples.

The paper's experiments are sized in set cardinalities (the protocols
are data-oblivious), so synthetic workloads with *controlled* overlap,
duplicate structure and document statistics exercise exactly the same
code paths as proprietary corpora or DNA databases would - this is the
documented substitution for the paper's unavailable data.

All generators take an explicit ``random.Random`` so every workload is
reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..db.multiset import ValueMultiset
from ..db.table import Table

__all__ = [
    "overlapping_sets",
    "multiset_pair",
    "zipf_multiplicities",
    "document_corpus",
    "MedicalWorkload",
    "medical_workload",
]


def overlapping_sets(
    n_r: int,
    n_s: int,
    overlap: int,
    rng: random.Random,
    prefix: str = "v",
) -> tuple[list[str], list[str], set[str]]:
    """Two value sets with an exact intersection size.

    Returns ``(v_r, v_s, expected_intersection)``; both lists are
    shuffled so input order carries no signal.
    """
    if overlap > min(n_r, n_s):
        raise ValueError("overlap cannot exceed either set size")
    shared = [f"{prefix}-shared-{i}" for i in range(overlap)]
    only_r = [f"{prefix}-r-{i}" for i in range(n_r - overlap)]
    only_s = [f"{prefix}-s-{i}" for i in range(n_s - overlap)]
    v_r = shared + only_r
    v_s = shared + only_s
    rng.shuffle(v_r)
    rng.shuffle(v_s)
    return v_r, v_s, set(shared)


def zipf_multiplicities(
    n_values: int, rng: random.Random, alpha: float = 1.5, max_count: int = 50
) -> list[int]:
    """Zipf-ish duplicate counts in ``[1, max_count]``.

    Inverse-transform sampling of ``P(c) ∝ c^-alpha`` - heavy-tailed
    duplicate structure like real join attributes.
    """
    weights = [c ** (-alpha) for c in range(1, max_count + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    counts = []
    for _ in range(n_values):
        u = rng.random()
        for c, edge in enumerate(cumulative, start=1):
            if u <= edge:
                counts.append(c)
                break
        else:  # floating-point edge case
            counts.append(max_count)
    return counts


def multiset_pair(
    n_r: int,
    n_s: int,
    overlap: int,
    rng: random.Random,
    alpha: float = 1.5,
    uniform_count: int | None = None,
) -> tuple[ValueMultiset, ValueMultiset]:
    """Two multisets over sets from :func:`overlapping_sets`.

    ``uniform_count`` forces every value to the same multiplicity (the
    leak-free extreme of Section 5.2); otherwise counts are Zipf.
    """
    v_r, v_s, _ = overlapping_sets(n_r, n_s, overlap, rng)

    def expand(values: list[str]) -> ValueMultiset:
        if uniform_count is not None:
            counts = [uniform_count] * len(values)
        else:
            counts = zipf_multiplicities(len(values), rng, alpha)
        out = []
        for value, count in zip(values, counts):
            out.extend([value] * count)
        return ValueMultiset.from_values(out)

    return expand(v_r), expand(v_s)


def document_corpus(
    n_docs: int,
    rng: random.Random,
    vocabulary_size: int = 5000,
    words_per_doc: int = 120,
    topic_words: Sequence[str] = (),
    topic_rate: float = 0.0,
) -> list[str]:
    """Raw-text documents with an optional planted topic.

    Words are drawn Zipf-like from a synthetic vocabulary; documents
    additionally include each ``topic_words`` term with probability
    ``topic_rate``, so two corpora sharing a topic contain genuinely
    similar documents for the document-sharing application to find.
    """
    vocabulary = [f"word{i}" for i in range(vocabulary_size)]
    # Zipf-ish rank weights over the vocabulary.
    weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
    docs = []
    for _ in range(n_docs):
        words = rng.choices(vocabulary, weights=weights, k=words_per_doc)
        for term in topic_words:
            if rng.random() < topic_rate:
                words.append(term)
        rng.shuffle(words)
        docs.append(" ".join(words))
    return docs


@dataclass
class MedicalWorkload:
    """Synthetic DNA + medical-history tables with known ground truth."""

    t_r: Table  # (person_id, pattern)
    t_s: Table  # (person_id, drug, reaction)
    expected: dict[tuple[bool, bool], int]  # contingency among drug takers


def medical_workload(
    n_people: int,
    rng: random.Random,
    p_pattern: float = 0.3,
    p_drug: float = 0.5,
    p_reaction_given_pattern: float = 0.6,
    p_reaction_without_pattern: float = 0.1,
) -> MedicalWorkload:
    """Generate the Application 2 tables with a planted association.

    The reaction probability depends on the DNA pattern, so the
    resulting contingency table exhibits the correlation the
    researcher's hypothesis posits.
    """
    rows_r = []
    rows_s = []
    expected: dict[tuple[bool, bool], int] = {
        (True, True): 0,
        (True, False): 0,
        (False, True): 0,
        (False, False): 0,
    }
    for person_id in range(n_people):
        pattern = rng.random() < p_pattern
        drug = rng.random() < p_drug
        p_reaction = (
            p_reaction_given_pattern if pattern else p_reaction_without_pattern
        )
        reaction = drug and rng.random() < p_reaction
        rows_r.append((person_id, pattern))
        rows_s.append((person_id, drug, reaction))
        if drug:
            expected[(pattern, reaction)] += 1
    return MedicalWorkload(
        t_r=Table(("person_id", "pattern"), rows_r, name="T_R"),
        t_s=Table(("person_id", "drug", "reaction"), rows_s, name="T_S"),
        expected=expected,
    )
