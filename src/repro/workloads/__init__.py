"""Reproducible synthetic workloads: overlapping value sets, Zipf
multisets, document corpora with planted topics, and medical tables
with a planted DNA-reaction association."""

from .generator import (
    MedicalWorkload,
    document_corpus,
    medical_workload,
    multiset_pair,
    overlapping_sets,
    zipf_multiplicities,
)

__all__ = [
    "overlapping_sets",
    "multiset_pair",
    "zipf_multiplicities",
    "document_corpus",
    "MedicalWorkload",
    "medical_workload",
]
