"""Pluggable execution engines for batched modular exponentiation.

Section 6.2 of the paper assumes "P processors that we can utilize in
parallel" when pricing the protocols; this module is where that
assumption becomes an interchangeable runtime strategy instead of a
bench-only measurement. A :class:`CryptoEngine` executes a batch of
exponentiations ``[x**e mod p for x in xs]`` - the single hot
operation behind every ``encrypt``/``decrypt`` of the commutative
power cipher - and everything above it
(:class:`~repro.crypto.commutative.PowerCipher`, the party state
machines, the TCP drivers) stays engine-agnostic.

Engines:

* :class:`SerialEngine` - the single-processor baseline; zero
  overhead, always correct.
* :class:`ProcessPoolEngine` - fans chunks out over a **shared**
  :class:`~concurrent.futures.ProcessPoolExecutor` (CPython's GIL
  makes threads useless for bignum math). The pool is created lazily
  on the first large batch and reused for every later call, so the
  fork/spawn cost is paid once per engine, not once per batch. Small
  batches (below the crossover where pool overhead dominates) and
  ``processors <= 1`` fall back to the serial path, and a pool that
  cannot be started or breaks mid-run degrades to serial instead of
  failing the protocol.
* :class:`MeteredEngine` - decorator that reports every batch's size
  to a callback, which is how the per-phase metrics layer counts
  modular exponentiations without the engines knowing about metrics.

Order is always preserved: for every engine,
``engine.pow_many(xs, e, p) == [pow(x, e, p) for x in xs]`` - the
protocol transcripts are byte-identical whichever engine runs them.
"""

from __future__ import annotations

import atexit
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

__all__ = [
    "DEFAULT_MIN_PARALLEL",
    "CryptoEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "MeteredEngine",
    "create_engine",
    "shared_engine",
    "shutdown_shared_engines",
]

#: Batches smaller than this never touch the pool: at realistic key
#: sizes the chunk pickling + IPC round-trip costs more than the
#: exponentiations themselves (see docs/PERFORMANCE.md for measured
#: crossovers).
DEFAULT_MIN_PARALLEL = 32


def _pow_chunk(args: tuple[list[int], int, int]) -> list[int]:
    """Worker: exponentiate one chunk (module-level for pickling)."""
    chunk, exponent, modulus = args
    return [pow(x, exponent, modulus) for x in chunk]


class CryptoEngine(ABC):
    """Strategy for executing a batch of modular exponentiations."""

    #: Degree of parallelism this engine aims for (the model's ``P``).
    workers: int = 1

    @abstractmethod
    def pow_many(
        self, xs: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """``[pow(x, exponent, modulus) for x in xs]``, order preserved."""

    def warm_up(self) -> None:
        """Pay any one-time startup cost now instead of mid-protocol."""

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def describe(self) -> dict[str, Any]:
        """Flat JSON-able summary for metrics reports."""
        return {"engine": type(self).__name__, "workers": self.workers}

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialEngine(CryptoEngine):
    """The single-processor baseline (the cost model's ``P = 1``)."""

    def pow_many(
        self, xs: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """The batch on one processor, in order."""
        return [pow(x, exponent, modulus) for x in xs]


class ProcessPoolEngine(CryptoEngine):
    """Batches fanned out over a shared worker-process pool.

    The executor is created lazily on the first batch large enough to
    parallelize and then *reused* across calls - a protocol performs
    several batched rounds and must not pay pool startup for each.

    Args:
        processors: worker count ``P`` (default: ``os.cpu_count()``).
        chunk_size: items per task; default splits each batch into
            ``4 * processors`` chunks so stragglers even out.
        min_parallel: batches smaller than this run serially.
    """

    def __init__(
        self,
        processors: int | None = None,
        chunk_size: int | None = None,
        min_parallel: int = DEFAULT_MIN_PARALLEL,
    ):
        self.workers = processors if processors else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self.serial_batches = 0
        self.parallel_batches = 0
        self.pool_failures = 0
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def warm_up(self) -> None:
        """Start the workers and run one no-op task through them."""
        if self.workers <= 1 or self._broken:
            return
        try:
            pool = self._ensure_pool()
            list(pool.map(_pow_chunk, [([1], 1, 3)] * self.workers))
        except (BrokenProcessPool, OSError, RuntimeError):
            self._mark_broken()

    def _mark_broken(self) -> None:
        self.pool_failures += 1
        self._broken = True
        self.close()

    def _threshold(self) -> int:
        return max(self.min_parallel, 2 * self.workers)

    def pow_many(
        self,
        xs: Sequence[int],
        exponent: int,
        modulus: int,
        chunk_size: int | None = None,
    ) -> list[int]:
        """The batch over the pool; serial below the crossover.

        ``chunk_size`` overrides the engine default for this call
        (used by ablation benchmarks sweeping chunk granularity).
        """
        xs = list(xs)
        if self.workers <= 1 or self._broken or len(xs) < self._threshold():
            self.serial_batches += 1
            return [pow(x, exponent, modulus) for x in xs]
        chunk = chunk_size or self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(xs) // (4 * self.workers)))
        chunks = [
            (xs[i : i + chunk], exponent, modulus)
            for i in range(0, len(xs), chunk)
        ]
        try:
            pool = self._ensure_pool()
            out: list[int] = []
            for result in pool.map(_pow_chunk, chunks):
                out.extend(result)
        except (BrokenProcessPool, OSError, RuntimeError):
            # A pool that cannot start (sandbox, fd limits) or died
            # mid-batch must not fail the protocol: degrade to serial.
            self._mark_broken()
            self.serial_batches += 1
            return [pow(x, exponent, modulus) for x in xs]
        self.parallel_batches += 1
        return out

    def close(self) -> None:
        """Shut the executor down (idempotent; a later batch restarts it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def describe(self) -> dict[str, Any]:
        """Engine summary plus batch-routing counters."""
        info = super().describe()
        info.update(
            serial_batches=self.serial_batches,
            parallel_batches=self.parallel_batches,
            pool_failures=self.pool_failures,
            min_parallel=self.min_parallel,
        )
        return info


class MeteredEngine(CryptoEngine):
    """Engine decorator reporting each batch's size to a callback.

    The metrics layer passes
    :meth:`~repro.analysis.instrumentation.MetricsRecorder.count_modexp`
    as the callback, attributing every exponentiation to the phase
    active when it ran.
    """

    def __init__(self, inner: CryptoEngine, on_modexp: Callable[[int], None]):
        self.inner = inner
        self.on_modexp = on_modexp

    @property
    def workers(self) -> int:  # type: ignore[override]
        """The wrapped engine's parallelism."""
        return self.inner.workers

    def pow_many(
        self, xs: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """Delegate, then report the batch size."""
        out = self.inner.pow_many(xs, exponent, modulus)
        self.on_modexp(len(out))
        return out

    def warm_up(self) -> None:
        """Delegate to the wrapped engine."""
        self.inner.warm_up()

    def close(self) -> None:
        """Delegate to the wrapped engine."""
        self.inner.close()

    def describe(self) -> dict[str, Any]:
        """The wrapped engine's summary (metering is transparent)."""
        return self.inner.describe()


def create_engine(
    workers: int | None = None,
    chunk_size: int | None = None,
    on_modexp: Callable[[int], None] | None = None,
) -> CryptoEngine:
    """The right engine for a ``--workers N`` knob.

    ``workers`` of ``None``/``0``/``1`` gives the serial engine;
    anything larger a process pool. With ``on_modexp`` the engine is
    wrapped in a :class:`MeteredEngine`.
    """
    engine: CryptoEngine
    if workers is None or workers <= 1:
        engine = SerialEngine()
    else:
        engine = ProcessPoolEngine(processors=workers, chunk_size=chunk_size)
    if on_modexp is not None:
        engine = MeteredEngine(engine, on_modexp)
    return engine


_SHARED: dict[int, CryptoEngine] = {}


def shared_engine(processors: int) -> CryptoEngine:
    """A process-wide engine for ``processors``, created once.

    :func:`repro.crypto.batch.parallel_pow` goes through here so
    repeated calls reuse one executor instead of rebuilding the pool
    per batch.
    """
    engine = _SHARED.get(processors)
    if engine is None:
        engine = (
            SerialEngine()
            if processors <= 1
            else ProcessPoolEngine(processors=processors)
        )
        _SHARED[processors] = engine
    return engine


def shutdown_shared_engines() -> None:
    """Close every process-wide engine (also runs at interpreter exit)."""
    for engine in _SHARED.values():
        engine.close()
    _SHARED.clear()


atexit.register(shutdown_shared_engines)
