"""Elementary number theory used by the cryptographic substrate.

Everything here is deliberately pure Python over arbitrary-precision
integers: the paper's protocols only need modular exponentiation,
Jacobi/Legendre symbols, modular inverses, and primality testing.

The functions are written for clarity first; the hot path of every
protocol is ``pow(x, e, p)``, which CPython already implements in C.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "is_probable_prime",
    "next_probable_prime",
    "egcd",
    "modinv",
    "jacobi",
    "legendre",
    "is_quadratic_residue",
    "sqrt_mod",
    "crt",
    "SMALL_PRIMES",
]

# Primes below 100, used for cheap trial division before Miller-Rabin.
SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
    47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

# Deterministic Miller-Rabin witness sets (Sinclair / Feitsma-Galway).
# For n below the bound, testing exactly these bases is a *proof* of
# primality, not a probabilistic statement.
_DETERMINISTIC_WITNESSES: tuple[tuple[int, tuple[int, ...]], ...] = (
    (2047, (2,)),
    (1373653, (2, 3)),
    (9080191, (31, 73)),
    (25326001, (2, 3, 5)),
    (3215031751, (2, 3, 5, 7)),
    (4759123141, (2, 7, 61)),
    (1122004669633, (2, 13, 23, 1662803)),
    (2152302898747, (2, 3, 5, 7, 11)),
    (3474749660383, (2, 3, 5, 7, 11, 13)),
    (341550071728321, (2, 3, 5, 7, 11, 13, 17)),
    (3825123056546413051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318665857834031151167461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'n may be prime'."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    For ``n`` below ~3.3e24 the test is *deterministic* (known witness
    sets); above that it is probabilistic with error at most
    ``4**-rounds``.

    Args:
        n: candidate integer.
        rounds: number of random rounds for large ``n``.
        rng: randomness source for witness selection (a fresh
            ``random.Random`` is created when omitted).

    Returns:
        True when ``n`` is (probably) prime.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n % p == 0:
            return n == p

    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return all(_miller_rabin_round(n, a, d, r) for a in witnesses)

    rng = rng or random.Random()
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def next_probable_prime(n: int) -> int:
    """Smallest (probable) prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: when ``gcd(a, m) != 1``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd ``n > 0``; in {-1, 0, 1}."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd n > 0")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def legendre(a: int, p: int) -> int:
    """Legendre symbol (a/p) for an odd prime ``p``; in {-1, 0, 1}."""
    return jacobi(a, p)


def is_quadratic_residue(a: int, p: int) -> bool:
    """True when ``a`` is a nonzero quadratic residue modulo the odd prime ``p``."""
    return legendre(a, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo the odd prime ``p`` (Tonelli-Shanks).

    Returns the root ``x`` with ``x*x % p == a % p``; the other root is
    ``p - x``. For safe primes ``p % 4 == 3`` the fast exponent path is
    taken.

    Raises:
        ValueError: when ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if legendre(a, p) != 1:
        raise ValueError(f"{a} is not a quadratic residue mod {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)

    # Tonelli-Shanks for p % 4 == 1.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre(z, p) != -1:
        z += 1
    m, c = s, pow(z, q, p)
    t, r = pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2, i = t * t % p, 1
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese remainder theorem for pairwise-coprime moduli.

    Returns the unique ``x`` modulo ``prod(moduli)`` with
    ``x % moduli[i] == residues[i]`` for every ``i``.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have the same length")
    if not moduli:
        raise ValueError("crt requires at least one congruence")
    x, modulus = residues[0] % moduli[0], moduli[0]
    for r, m in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(modulus, m)
        if g != 1:
            raise ValueError("moduli must be pairwise coprime")
        diff = (r - x) % m
        x = (x + modulus * (diff * p % m)) % (modulus * m)
        modulus *= m
    return x
