"""Commutative encryption (Definition 2 / Example 1 of the paper).

The protocols only rely on four properties of the cipher family
``{f_e}``:

1. commutativity: ``f_e(f_e'(x)) == f_e'(f_e(x))``,
2. each ``f_e`` is a bijection of the domain,
3. ``f_e`` is invertible in polynomial time given ``e``,
4. ``f_e(y)`` is indistinguishable from random given ``(x, f_e(x), y)``
   (which follows from DDH for the power function).

:class:`PowerCipher` is the paper's Example 1 - the Pohlig-Hellman/SRA
power function ``f_e(x) = x**e mod p`` over quadratic residues modulo a
safe prime. :class:`CommutativeCipher` is the abstract interface, so a
different DDH group could be substituted without touching the
protocols.
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from typing import Iterable

from .engine import CryptoEngine, SerialEngine
from .groups import QRGroup
from .numtheory import modinv

__all__ = ["CommutativeCipher", "PowerCipher", "key_fingerprint"]


def key_fingerprint(keys: Iterable[int], p: int) -> str:
    """A stable hex fingerprint of a party's cipher keys under ``p``.

    The encrypted-catalog cache keys its entries by this fingerprint so
    persisted ciphertexts are never replayed under a different key or
    modulus.  The fingerprint is a one-way digest: it identifies the
    keys without revealing them (though cache files themselves hold the
    raw keys and must stay private to their party — see the cache-key
    hygiene notes in ``docs/PROTOCOLS.md``).
    """
    digest = hashlib.sha256(b"repro-catalog-key-fp-v1")
    digest.update(int(p).to_bytes((int(p).bit_length() + 7) // 8 or 1, "big"))
    for key in keys:
        key = int(key)
        digest.update(b"\x00")
        digest.update(key.to_bytes((key.bit_length() + 7) // 8 or 1, "big"))
    return digest.hexdigest()


class CommutativeCipher(ABC):
    """Abstract commutative encryption over a finite domain."""

    @abstractmethod
    def sample_key(self, rng: random.Random) -> int:
        """Draw a key uniformly from ``KeyF``."""

    @abstractmethod
    def encrypt(self, key: int, x: int) -> int:
        """Apply ``f_key`` to a domain element."""

    @abstractmethod
    def decrypt(self, key: int, y: int) -> int:
        """Apply ``f_key^{-1}``."""

    def encrypt_many(self, key: int, xs: Iterable[int]) -> list[int]:
        """Encrypt a batch (order preserved)."""
        return [self.encrypt(key, x) for x in xs]

    def decrypt_many(self, key: int, ys: Iterable[int]) -> list[int]:
        """Decrypt a batch (order preserved)."""
        return [self.decrypt(key, y) for y in ys]

    def encrypt_sorted(self, key: int, xs: Iterable[int]) -> list[int]:
        """Encrypt a batch and reorder lexicographically.

        The paper's protocols ship ciphertext *sets* reordered
        lexicographically (footnote 3: sending them in input order would
        leak the correspondence between ciphertexts and values).
        """
        return sorted(self.encrypt(key, x) for x in xs)


class PowerCipher(CommutativeCipher):
    """The power function ``f_e(x) = x**e mod p`` over QR_p (Example 1).

    ``KeyF = {1, ..., q-1}`` with ``q = (p-1)/2`` prime, so every key is
    invertible modulo the group order and every ``f_e`` is a bijection
    with ``f_e^{-1} = f_{e^{-1} mod q}``.

    Under the Decisional Diffie-Hellman assumption in QR_p this family
    satisfies the indistinguishability property (Property 4) required by
    the security proofs.

    Batched calls (:meth:`encrypt_many`/:meth:`decrypt_many`) execute
    through a pluggable :class:`~repro.crypto.engine.CryptoEngine`, so
    the Section 6.2 ``P``-processor assumption is a constructor knob
    rather than a code change; the default serial engine is
    byte-for-byte equivalent to the loop it replaces.
    """

    def __init__(self, group: QRGroup, engine: CryptoEngine | None = None):
        self.group = group
        self.engine = engine or SerialEngine()

    @classmethod
    def for_bits(cls, bits: int, rng: random.Random | None = None) -> "PowerCipher":
        """Cipher over an embedded safe prime of the given size."""
        return cls(QRGroup.for_bits(bits, rng))

    def sample_key(self, rng: random.Random) -> int:
        return self.group.random_exponent(rng)

    def invert_key(self, key: int) -> int:
        """The decryption exponent ``key^{-1} mod q``."""
        return modinv(key, self.group.q)

    def encrypt(self, key: int, x: int) -> int:
        if not 0 < x < self.group.p:
            raise ValueError("plaintext outside Z_p^*")
        return pow(x, key, self.group.p)

    def decrypt(self, key: int, y: int) -> int:
        return pow(y, self.invert_key(key), self.group.p)

    def encrypt_many(self, key: int, xs: Iterable[int]) -> list[int]:
        """Encrypt a batch through the engine (order preserved)."""
        xs = list(xs)
        p = self.group.p
        for x in xs:
            if not 0 < x < p:
                raise ValueError("plaintext outside Z_p^*")
        return self.engine.pow_many(xs, key, p)

    def decrypt_many(self, key: int, ys: Iterable[int]) -> list[int]:
        # Invert the key once for the whole batch.
        inverse = self.invert_key(key)
        return self.engine.pow_many(list(ys), inverse, self.group.p)
