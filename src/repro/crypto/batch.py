"""Parallel batch encryption (the Section 6.2 ``P``-processor model).

Section 6.2: "Encrypting the set of values is trivially parallelizable
in all three protocols. We assume that we have P processors that we can
utilize in parallel." This module makes that assumption executable:
:func:`parallel_pow` fans a batch of modular exponentiations out over a
process pool (CPython's GIL makes threads useless for bignum math), and
:class:`BatchSpeedup` measures the realized speedup so the parallelism
ablation can compare it with the model's ideal ``1/P``.

Process pools have startup and pickling overhead, so parallelism only
pays off for batches of hundreds of exponentiations at realistic key
sizes - the measurement reports exactly that crossover.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

__all__ = ["parallel_pow", "sequential_pow", "BatchSpeedup", "measure_speedup"]


def _pow_chunk(args: tuple[list[int], int, int]) -> list[int]:
    """Worker: exponentiate one chunk (module-level for pickling)."""
    chunk, exponent, modulus = args
    return [pow(x, exponent, modulus) for x in chunk]


def sequential_pow(xs: Sequence[int], exponent: int, modulus: int) -> list[int]:
    """Baseline: the batch on one processor."""
    return [pow(x, exponent, modulus) for x in xs]


def parallel_pow(
    xs: Sequence[int],
    exponent: int,
    modulus: int,
    processors: int = 2,
    chunk_size: int | None = None,
) -> list[int]:
    """The batch fanned out over ``processors`` worker processes.

    Order is preserved. Falls back to the sequential path for trivial
    batches or ``processors <= 1`` (avoids pool overhead dominating).
    """
    xs = list(xs)
    if processors <= 1 or len(xs) < 2 * processors:
        return sequential_pow(xs, exponent, modulus)
    if chunk_size is None:
        chunk_size = max(1, len(xs) // (4 * processors))
    chunks = [
        (xs[i : i + chunk_size], exponent, modulus)
        for i in range(0, len(xs), chunk_size)
    ]
    out: list[int] = []
    with ProcessPoolExecutor(max_workers=processors) as pool:
        for result in pool.map(_pow_chunk, chunks):
            out.extend(result)
    return out


@dataclass(frozen=True)
class BatchSpeedup:
    """One measured sequential-vs-parallel comparison."""

    batch: int
    processors: int
    sequential_s: float
    parallel_s: float

    @property
    def speedup(self) -> float:
        return self.sequential_s / self.parallel_s if self.parallel_s else 0.0

    @property
    def ideal(self) -> float:
        """The Section 6.2 model's assumption."""
        return float(self.processors)


def measure_speedup(
    xs: Sequence[int], exponent: int, modulus: int, processors: int
) -> BatchSpeedup:
    """Time both paths on the same batch."""
    start = time.perf_counter()
    expected = sequential_pow(xs, exponent, modulus)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    got = parallel_pow(xs, exponent, modulus, processors)
    parallel_s = time.perf_counter() - start

    if got != expected:  # pragma: no cover - would be a correctness bug
        raise AssertionError("parallel batch disagreed with sequential")
    return BatchSpeedup(
        batch=len(xs),
        processors=processors,
        sequential_s=sequential_s,
        parallel_s=parallel_s,
    )
