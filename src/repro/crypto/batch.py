"""Parallel batch encryption (the Section 6.2 ``P``-processor model).

Section 6.2: "Encrypting the set of values is trivially parallelizable
in all three protocols. We assume that we have P processors that we can
utilize in parallel." This module makes that assumption executable:
:func:`parallel_pow` fans a batch of modular exponentiations out over a
process pool (CPython's GIL makes threads useless for bignum math), and
:class:`BatchSpeedup` measures the realized speedup so the parallelism
ablation can compare it with the model's ideal ``1/P``.

The pool itself lives in :mod:`repro.crypto.engine`: repeated
:func:`parallel_pow` calls share one process-wide
:class:`~repro.crypto.engine.ProcessPoolEngine` per processor count,
so only the *first* call pays worker startup. :func:`measure_speedup`
reports that startup cost separately (``pool_startup_s``) from the
steady-state parallel time, which is what the crossover analysis in
the parallelism ablation actually needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from .engine import ProcessPoolEngine, shared_engine

__all__ = ["parallel_pow", "sequential_pow", "BatchSpeedup", "measure_speedup"]


def sequential_pow(xs: Sequence[int], exponent: int, modulus: int) -> list[int]:
    """Baseline: the batch on one processor."""
    return [pow(x, exponent, modulus) for x in xs]


def parallel_pow(
    xs: Sequence[int],
    exponent: int,
    modulus: int,
    processors: int = 2,
    chunk_size: int | None = None,
) -> list[int]:
    """The batch fanned out over ``processors`` worker processes.

    Order is preserved. Falls back to the sequential path for small
    batches or ``processors <= 1`` (avoids pool overhead dominating).
    The worker pool is shared across calls with the same processor
    count (see :func:`repro.crypto.engine.shared_engine`), so only the
    first call pays startup.
    """
    xs = list(xs)
    if processors <= 1 or len(xs) < 2 * processors:
        return sequential_pow(xs, exponent, modulus)
    engine = shared_engine(processors)
    if isinstance(engine, ProcessPoolEngine):
        return engine.pow_many(xs, exponent, modulus, chunk_size=chunk_size)
    return engine.pow_many(xs, exponent, modulus)


@dataclass(frozen=True)
class BatchSpeedup:
    """One measured sequential-vs-parallel comparison.

    ``parallel_s`` is the steady-state (warm pool) time;
    ``pool_startup_s`` is the one-time worker startup cost, reported
    separately because a shared pool amortizes it across all batches
    of a run.
    """

    batch: int
    processors: int
    sequential_s: float
    parallel_s: float
    pool_startup_s: float = 0.0

    @property
    def speedup(self) -> float:
        return self.sequential_s / self.parallel_s if self.parallel_s else 0.0

    @property
    def ideal(self) -> float:
        """The Section 6.2 model's assumption."""
        return float(self.processors)


def measure_speedup(
    xs: Sequence[int], exponent: int, modulus: int, processors: int
) -> BatchSpeedup:
    """Time both paths on the same batch.

    The shared pool is warmed first and that startup time recorded in
    ``pool_startup_s``; on later calls with the same processor count
    the pool is already warm and the startup cost reads ~0.
    """
    start = time.perf_counter()
    expected = sequential_pow(xs, exponent, modulus)
    sequential_s = time.perf_counter() - start

    engine = shared_engine(processors)
    pool_startup_s = 0.0
    if engine.workers > 1:
        start = time.perf_counter()
        engine.warm_up()
        pool_startup_s = time.perf_counter() - start

    start = time.perf_counter()
    got = parallel_pow(xs, exponent, modulus, processors)
    parallel_s = time.perf_counter() - start

    if got != expected:  # pragma: no cover - would be a correctness bug
        raise AssertionError("parallel batch disagreed with sequential")
    return BatchSpeedup(
        batch=len(xs),
        processors=processors,
        sequential_s=sequential_s,
        parallel_s=parallel_s,
        pool_startup_s=pool_startup_s,
    )
