"""An explicit random oracle (Section 3.2.2's proof model).

The security statements are proved in the random-oracle model: "every
time ``h(v)`` is evaluated for a new ``v``, an independent random
``x in DomF`` is chosen". :class:`RandomOracle` implements exactly that
- a lazily sampled, memoized table of uniform group elements - and is
used by the executable view simulators and by tests that need the
idealized hash rather than the SHA-256 instantiation.
"""

from __future__ import annotations

import random

from .groups import QRGroup
from .hashing import DomainHash, Value, value_to_bytes

__all__ = ["RandomOracle"]


class RandomOracle(DomainHash):
    """A lazily sampled random function ``V -> QR_p``.

    Deterministic for a given seed, so protocol runs using it are
    reproducible. Collisions are possible exactly with the birthday
    probability the paper computes - no rejection is performed.
    """

    def __init__(self, group: QRGroup, seed: int | None = None):
        super().__init__(group, label=b"repro.random-oracle")
        self._rng = random.Random(seed)
        self._table: dict[bytes, int] = {}

    def hash_value(self, value: Value) -> int:
        key = value_to_bytes(value)
        cached = self._table.get(key)
        if cached is None:
            cached = self.group.random_element(self._rng)
            self._table[key] = cached
        return cached

    @property
    def queries(self) -> int:
        """Number of distinct values queried so far."""
        return len(self._table)

    def programmed(self, value: Value) -> bool:
        """True when the oracle has already answered for ``value``."""
        return value_to_bytes(value) in self._table

    def program(self, value: Value, element: int) -> None:
        """Force the oracle's answer for ``value`` (simulator technique).

        Raises:
            ValueError: if the oracle was already queried on ``value``
                with a different answer, or ``element`` is outside QR_p.
        """
        if element not in self.group:
            raise ValueError("programmed answer must be a group element")
        key = value_to_bytes(value)
        existing = self._table.get(key)
        if existing is not None and existing != element:
            raise ValueError(f"oracle already fixed h({value!r})")
        self._table[key] = element
