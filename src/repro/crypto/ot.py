"""1-out-of-2 oblivious transfer (substrate for the Appendix A baseline).

Appendix A compares the paper's protocols against circuit evaluation a
la Yao, whose input-coding phase runs one oblivious transfer per input
bit. To make that baseline *executable* (the paper only costs it
analytically) we implement a classic semi-honest DH-based OT
(Bellare-Micali style) over the same quadratic-residue group the main
protocols use, plus the Naor-Pinkas amortized cost model the paper
quotes (``C_ot = (1/l) C_e + (2^l/l) C_x``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from .groups import QRGroup
from .numtheory import modinv

__all__ = [
    "OTSender",
    "OTReceiver",
    "run_ot",
    "NaorPinkasCostModel",
]


def _mask(key_element: int, group: QRGroup, length: int, tag: bytes) -> bytes:
    """Derive a ``length``-byte XOR pad from a group element."""
    key_bytes = key_element.to_bytes((group.p.bit_length() + 7) // 8, "big")
    out = b""
    counter = 0
    while len(out) < length:
        h = hashlib.sha256()
        h.update(b"repro.ot")
        h.update(tag)
        h.update(key_bytes)
        h.update(counter.to_bytes(4, "big"))
        out += h.digest()
        counter += 1
    return out[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class OTTransfer:
    """Sender's final message: two hashed-ElGamal ciphertexts."""

    g_r0: int
    c0: bytes
    g_r1: int
    c1: bytes


class OTSender:
    """Holds two equal-length messages; reveals exactly the chosen one."""

    def __init__(self, group: QRGroup, m0: bytes, m1: bytes, rng: random.Random):
        if len(m0) != len(m1):
            raise ValueError("OT messages must have equal length")
        self.group = group
        self._m0, self._m1 = m0, m1
        self._rng = rng
        # Public random point whose discrete log nobody knows.
        self.c_point = group.random_element(rng)

    def respond(self, pk0: int) -> OTTransfer:
        """Given the receiver's first key, encrypt both messages."""
        group = self.group
        pk1 = group.mul(self.c_point, modinv(pk0, group.p))
        r0 = group.random_exponent(self._rng)
        r1 = group.random_exponent(self._rng)
        g = group.generator
        k0 = group.pow(pk0, r0)
        k1 = group.pow(pk1, r1)
        return OTTransfer(
            g_r0=group.pow(g, r0),
            c0=_xor(self._m0, _mask(k0, group, len(self._m0), b"0")),
            g_r1=group.pow(g, r1),
            c1=_xor(self._m1, _mask(k1, group, len(self._m1), b"1")),
        )


class OTReceiver:
    """Chooses bit ``b``; learns ``m_b`` and nothing about ``m_{1-b}``."""

    def __init__(self, group: QRGroup, choice: int, rng: random.Random):
        if choice not in (0, 1):
            raise ValueError("choice must be 0 or 1")
        self.group = group
        self.choice = choice
        self._k = group.random_exponent(rng)

    def first_message(self, c_point: int) -> int:
        """PK_0; PK_choice = g^k, the other key is C / PK_choice."""
        group = self.group
        pk_choice = group.pow(group.generator, self._k)
        if self.choice == 0:
            return pk_choice
        return group.mul(c_point, modinv(pk_choice, group.p))

    def receive(self, transfer: OTTransfer) -> bytes:
        """Decrypt the chosen branch of the sender's response."""
        group = self.group
        if self.choice == 0:
            key = group.pow(transfer.g_r0, self._k)
            return _xor(transfer.c0, _mask(key, group, len(transfer.c0), b"0"))
        key = group.pow(transfer.g_r1, self._k)
        return _xor(transfer.c1, _mask(key, group, len(transfer.c1), b"1"))


def run_ot(
    group: QRGroup,
    m0: bytes,
    m1: bytes,
    choice: int,
    rng: random.Random,
) -> bytes:
    """Execute the whole OT locally and return the chosen message."""
    sender = OTSender(group, m0, m1, rng)
    receiver = OTReceiver(group, choice, rng)
    pk0 = receiver.first_message(sender.c_point)
    return receiver.receive(sender.respond(pk0))


@dataclass(frozen=True)
class NaorPinkasCostModel:
    """Amortized OT cost model from Appendix A.1.1 ([36]).

    For batch parameter ``l`` the amortized computation cost is
    ``C_ot = (1/l) C_e + (2^l / l) C_x`` and the communication is at
    least ``(2^l / l) k_1`` bits. With the paper's assumption
    ``C_e = 1000 C_x`` the computation-optimal choice is ``l = 8``,
    giving ``C_ot = 0.157 C_e`` and ``C'_ot >= 32 k_1``.
    """

    ce_over_cx: float = 1000.0
    k1_bits: int = 100

    def computation_cost(self, l: int) -> float:
        """Amortized cost in units of ``C_e``."""
        if l < 1:
            raise ValueError("l must be positive")
        return 1.0 / l + (2.0**l / l) / self.ce_over_cx

    def communication_bits(self, l: int) -> float:
        """Amortized communication lower bound in bits."""
        return (2.0**l / l) * self.k1_bits

    def optimal_l(self, max_l: int = 24) -> int:
        """The ``l`` minimizing computation cost."""
        return min(range(1, max_l + 1), key=self.computation_cost)
