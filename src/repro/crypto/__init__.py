"""Cryptographic substrate: number theory, safe primes, QR groups,
commutative encryption, domain hashing, the ext cipher ``K``, and
oblivious transfer.

This package is the "Libraries (including encryption primitives)" box
of the paper's Figure 1, built from scratch on Python bignums.
"""

from .commutative import CommutativeCipher, PowerCipher
from .engine import (
    CryptoEngine,
    MeteredEngine,
    ProcessPoolEngine,
    SerialEngine,
    create_engine,
    shared_engine,
    shutdown_shared_engines,
)
from .ext_cipher import BlockExtCipher, ExtCipher, MultiplicativeExtCipher
from .groups import QRGroup
from .hashing import (
    DomainHash,
    SquareHash,
    TryIncrementHash,
    collision_probability,
    find_collisions,
    value_to_bytes,
)
from .numtheory import (
    crt,
    egcd,
    is_probable_prime,
    is_quadratic_residue,
    jacobi,
    legendre,
    modinv,
    next_probable_prime,
    sqrt_mod,
)
from .batch import BatchSpeedup, measure_speedup, parallel_pow, sequential_pow
from .oracle import RandomOracle
from .ot import NaorPinkasCostModel, OTReceiver, OTSender, run_ot
from .ot_n import OneOfNReceiver, OneOfNSender, run_ot_1_of_n
from .paillier import PaillierPrivateKey, PaillierPublicKey, generate_keypair
from .primes import (
    EMBEDDED_SAFE_PRIMES,
    generate_safe_prime,
    is_safe_prime,
    safe_prime,
    sophie_germain_order,
)

__all__ = [
    "CommutativeCipher",
    "PowerCipher",
    "CryptoEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "MeteredEngine",
    "create_engine",
    "shared_engine",
    "shutdown_shared_engines",
    "QRGroup",
    "DomainHash",
    "TryIncrementHash",
    "SquareHash",
    "RandomOracle",
    "ExtCipher",
    "MultiplicativeExtCipher",
    "BlockExtCipher",
    "OTSender",
    "OTReceiver",
    "run_ot",
    "OneOfNSender",
    "OneOfNReceiver",
    "run_ot_1_of_n",
    "NaorPinkasCostModel",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_keypair",
    "parallel_pow",
    "sequential_pow",
    "measure_speedup",
    "BatchSpeedup",
    "collision_probability",
    "find_collisions",
    "value_to_bytes",
    "EMBEDDED_SAFE_PRIMES",
    "safe_prime",
    "generate_safe_prime",
    "is_safe_prime",
    "sophie_germain_order",
    "is_probable_prime",
    "next_probable_prime",
    "is_quadratic_residue",
    "jacobi",
    "legendre",
    "sqrt_mod",
    "modinv",
    "egcd",
    "crt",
]
