"""The group QR_p of quadratic residues modulo a safe prime.

This is ``DomF`` of the paper (Example 1): for a safe prime
``p = 2q + 1`` the quadratic residues form a cyclic group of prime
order ``q`` in which the Decisional Diffie-Hellman assumption is
believed to hold, making the power function a commutative encryption.

Because safe primes satisfy ``p % 4 == 3``, the element ``-1`` is a
*non*-residue, so for every ``c`` exactly one of ``c`` and ``p - c`` is
a quadratic residue. :meth:`QRGroup.encode` exploits this to embed the
integers ``0 .. q-2`` injectively into QR_p, which is how ``ext(v)``
payloads are carried by the multiplicative cipher of Section 4.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .numtheory import is_quadratic_residue, modinv
from .primes import is_safe_prime, safe_prime, sophie_germain_order

__all__ = ["QRGroup"]


@dataclass(frozen=True)
class QRGroup:
    """Quadratic residues modulo a safe prime ``p``.

    Attributes:
        p: the safe prime modulus.
        q: the group order ``(p - 1) // 2`` (prime).
    """

    p: int
    q: int = field(init=False)

    def __post_init__(self) -> None:
        if self.p % 4 != 3:
            raise ValueError("a safe prime modulus must satisfy p % 4 == 3")
        object.__setattr__(self, "q", sophie_germain_order(self.p))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_bits(cls, bits: int, rng: random.Random | None = None) -> "QRGroup":
        """Group over an embedded (or freshly generated) ``bits``-bit safe prime."""
        return cls(safe_prime(bits, rng))

    @classmethod
    def checked(cls, p: int) -> "QRGroup":
        """Construct after verifying that ``p`` really is a safe prime."""
        if not is_safe_prime(p):
            raise ValueError(f"{p} is not a safe prime")
        return cls(p)

    # ------------------------------------------------------------------
    # Basic group facts
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """Bit length of the modulus (the paper's codeword size ``k``)."""
        return self.p.bit_length()

    @property
    def order(self) -> int:
        """Number of elements in the group, ``q``."""
        return self.q

    @property
    def generator(self) -> int:
        """A generator of QR_p.

        QR_p has prime order, so any element other than 1 generates it;
        ``4 = 2**2`` is always a quadratic residue.
        """
        return 4 % self.p

    def __contains__(self, x: object) -> bool:
        return (
            isinstance(x, int)
            and 0 < x < self.p
            and is_quadratic_residue(x, self.p)
        )

    def __len__(self) -> int:  # pragma: no cover - trivially delegating
        return self.q

    # ------------------------------------------------------------------
    # Group operations
    # ------------------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        """Group multiplication ``a * b mod p``."""
        return a * b % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse in the group."""
        return modinv(a, self.p)

    def pow(self, x: int, e: int) -> int:
        """Exponentiation ``x ** e mod p`` (the paper's ``f_e``)."""
        return pow(x, e, self.p)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def random_element(self, rng: random.Random) -> int:
        """A uniformly random quadratic residue (square of a unit)."""
        x = rng.randrange(1, self.p)
        return x * x % self.p

    def random_exponent(self, rng: random.Random) -> int:
        """A uniformly random key from ``KeyF = {1 .. q-1}``.

        Every such exponent is invertible modulo the prime order ``q``,
        so each key yields a bijection of QR_p (Definition 2).
        """
        return rng.randrange(1, self.q)

    # ------------------------------------------------------------------
    # Message encoding (Section 4.2, Example 2)
    # ------------------------------------------------------------------
    @property
    def message_capacity(self) -> int:
        """Largest integer ``m`` such that ``encode(m)`` is defined (``q - 2``)."""
        return self.q - 2

    @property
    def message_capacity_bytes(self) -> int:
        """Number of whole bytes that fit in one encoded group element."""
        return (self.message_capacity.bit_length() - 1) // 8

    def encode(self, m: int) -> int:
        """Injectively encode ``0 <= m <= q - 2`` as a quadratic residue.

        Exactly one of ``m + 1`` and ``p - (m + 1)`` is a residue because
        ``-1`` is a non-residue mod a safe prime.
        """
        if not 0 <= m <= self.message_capacity:
            raise ValueError(
                f"message {m} outside encodable range [0, {self.message_capacity}]"
            )
        candidate = m + 1
        if is_quadratic_residue(candidate, self.p):
            return candidate
        return self.p - candidate

    def decode(self, x: int) -> int:
        """Inverse of :meth:`encode`."""
        if x not in self:
            raise ValueError(f"{x} is not an element of QR_p")
        candidate = x if x <= self.q else self.p - x
        return candidate - 1
