"""The ext-information cipher ``K`` of the equijoin protocol (Section 4.2).

``K : DomF x V_ext -> C_ext`` must be (1) efficiently invertible given
the key and (2) perfectly secret: for a uniformly random key the
ciphertext distribution is independent of the plaintext.

:class:`MultiplicativeExtCipher` is the paper's Example 2: the payload
is encoded as a quadratic residue and multiplied by the key
``kappa(v) = f_{e'_S}(h(v))``. One-time-pad style perfect secrecy holds
because multiplication by a uniform group element is a uniform group
element.

A single group element only carries ``~(bits/8 - 2)`` bytes, so
:class:`BlockExtCipher` extends the construction to arbitrary-length
records: block ``i`` is blinded by ``H(kappa, i)`` mapped into the
group. Per-block keys derived through a hash are only *computationally*
secret (random-oracle argument) rather than perfectly secret - this is
the documented substitution for realistically sized ``ext(v)`` records.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from .groups import QRGroup
from .numtheory import modinv

__all__ = ["ExtCipher", "MultiplicativeExtCipher", "BlockExtCipher"]


class ExtCipher(ABC):
    """Symmetric cipher keyed by a group element (the paper's ``K``)."""

    def __init__(self, group: QRGroup):
        self.group = group

    @abstractmethod
    def encrypt(self, kappa: int, ext: bytes) -> object:
        """Encrypt a payload under key ``kappa in QR_p``."""

    @abstractmethod
    def decrypt(self, kappa: int, ciphertext: object) -> bytes:
        """Invert :meth:`encrypt` given the key."""


def _encode_payload(group: QRGroup, ext: bytes) -> int:
    """Byte payload -> group element (single block).

    The payload length lives in the *low* 16 bits of the encoded
    integer, ``m = (int(ext) << 16) | len(ext)``, so leading zero bytes
    of the payload survive the integer round trip.
    """
    capacity = group.message_capacity_bytes
    if len(ext) > capacity - 2:
        raise ValueError(
            f"payload of {len(ext)} bytes exceeds single-block capacity "
            f"{capacity - 2}; use BlockExtCipher"
        )
    framed = (int.from_bytes(ext, "big") << 16) | len(ext)
    return group.encode(framed)


def _decode_payload(group: QRGroup, element: int) -> bytes:
    """Inverse of :func:`_encode_payload`."""
    m = group.decode(element)
    length = m & 0xFFFF
    body = m >> 16
    if body.bit_length() > 8 * length:
        raise ValueError("corrupt payload frame")
    return body.to_bytes(length, "big")


class MultiplicativeExtCipher(ExtCipher):
    """Example 2: ``K_kappa(ext) = kappa * encode(ext) mod p``.

    Perfectly secret for uniform ``kappa`` and limited to payloads that
    fit in one group element.
    """

    def encrypt(self, kappa: int, ext: bytes) -> int:
        if kappa not in self.group:
            raise ValueError("key must be a quadratic residue")
        return self.group.mul(kappa, _encode_payload(self.group, ext))

    def decrypt(self, kappa: int, ciphertext: int) -> bytes:
        element = self.group.mul(modinv(kappa, self.group.p), ciphertext)
        return _decode_payload(self.group, element)

    @property
    def capacity_bytes(self) -> int:
        """Maximum payload length for a single block."""
        return self.group.message_capacity_bytes - 2


class BlockExtCipher(ExtCipher):
    """Multi-block extension for arbitrary-length ``ext(v)`` records.

    Block ``i`` is multiplied by a per-block key derived as
    ``H(kappa, i)`` hashed into QR_p. The construction stays within the
    paper's algebra (only group multiplications) but trades perfect
    secrecy for random-oracle secrecy; see DESIGN.md, substitutions.
    """

    def __init__(self, group: QRGroup, label: bytes = b"repro.K.block"):
        super().__init__(group)
        self.label = label

    def _block_key(self, kappa: int, index: int) -> int:
        """Derive the i-th block key from ``kappa`` (a residue)."""
        needed_bits = self.group.p.bit_length() + 64
        material = b""
        counter = 0
        kappa_bytes = kappa.to_bytes((self.group.p.bit_length() + 7) // 8, "big")
        while len(material) * 8 < needed_bits + 8:
            h = hashlib.sha256()
            h.update(self.label)
            h.update(kappa_bytes)
            h.update(index.to_bytes(8, "big"))
            h.update(counter.to_bytes(4, "big"))
            material += h.digest()
            counter += 1
        candidate = int.from_bytes(material, "big") % self.group.p
        if candidate == 0:
            candidate = 4  # probability ~2**-bits; any fixed residue works
        return candidate * candidate % self.group.p

    def encrypt(self, kappa: int, ext: bytes) -> list[int]:
        if kappa not in self.group:
            raise ValueError("key must be a quadratic residue")
        chunk = self.group.message_capacity_bytes - 2
        blocks = []
        # Always emit at least one block so empty payloads round-trip.
        pieces = [ext[i : i + chunk] for i in range(0, len(ext), chunk)] or [b""]
        for index, piece in enumerate(pieces):
            element = _encode_payload(self.group, piece)
            blocks.append(self.group.mul(self._block_key(kappa, index), element))
        return blocks

    def decrypt(self, kappa: int, ciphertext: list[int]) -> bytes:
        out = []
        for index, block in enumerate(ciphertext):
            key = self._block_key(kappa, index)
            element = self.group.mul(modinv(key, self.group.p), block)
            out.append(_decode_payload(self.group, element))
        return b"".join(out)
