"""1-out-of-n oblivious transfer, built from 1-out-of-2 OTs.

Substrate for the private selection protocol
(:mod:`repro.protocols.selection`), which the paper's related-work
section connects to private information retrieval: "This literature
will be useful for developing protocols for the selection operation in
our setting."

Classic reduction (Naor-Pinkas): for ``n`` messages, the sender draws
``L = ceil(log2 n)`` key *pairs*; message ``j`` is encrypted under the
XOR-combination of the keys selected by ``j``'s bits; the receiver runs
one 1-of-2 OT per bit position to learn exactly the key chain of its
index and can decrypt exactly one message.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from .groups import QRGroup
from .ot import OTReceiver, OTSender

__all__ = ["OneOfNSender", "OneOfNReceiver", "run_ot_1_of_n"]

_KEY_BYTES = 16


def _combine_keys(keys: list[bytes], index: int, length: int, tag: bytes) -> bytes:
    """Derive a ``length``-byte pad from the bit-selected key chain."""
    out = b""
    counter = 0
    material = b"".join(keys) + index.to_bytes(4, "big")
    while len(out) < length:
        h = hashlib.sha256()
        h.update(b"repro.ot1n")
        h.update(tag)
        h.update(material)
        h.update(counter.to_bytes(4, "big"))
        out += h.digest()
        counter += 1
    return out[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class OneOfNTransfer:
    """Everything the sender publishes: per-bit OT transcript material
    plus the n encrypted messages."""

    c_points: list[int]
    ot_transfers: list  # one OTTransfer per bit position
    ciphertexts: list[bytes]


class OneOfNSender:
    """Holds ``n`` equal-length messages; reveals exactly one."""

    def __init__(self, group: QRGroup, messages: list[bytes], rng: random.Random):
        if not messages:
            raise ValueError("need at least one message")
        length = len(messages[0])
        if any(len(m) != length for m in messages):
            raise ValueError("all messages must have equal length")
        self.group = group
        self._messages = list(messages)
        self._rng = rng
        self.n = len(messages)
        self.bits = max(1, (self.n - 1).bit_length())
        # One key pair per bit position.
        self._key_pairs = [
            (rng.randbytes(_KEY_BYTES), rng.randbytes(_KEY_BYTES))
            for _ in range(self.bits)
        ]
        # One 1-of-2 OT sender per bit position, transferring the keys.
        self._ot_senders = [
            OTSender(group, k0, k1, rng) for k0, k1 in self._key_pairs
        ]

    @property
    def c_points(self) -> list[int]:
        return [sender.c_point for sender in self._ot_senders]

    def respond(self, pk0s: list[int]) -> OneOfNTransfer:
        """Answer the receiver's per-bit first messages."""
        if len(pk0s) != self.bits:
            raise ValueError(f"expected {self.bits} OT first-messages")
        transfers = [
            sender.respond(pk0) for sender, pk0 in zip(self._ot_senders, pk0s)
        ]
        ciphertexts = []
        for j, message in enumerate(self._messages):
            keys = [
                self._key_pairs[l][(j >> l) & 1] for l in range(self.bits)
            ]
            pad = _combine_keys(keys, j, len(message), b"enc")
            ciphertexts.append(_xor(message, pad))
        return OneOfNTransfer(
            c_points=self.c_points, ot_transfers=transfers, ciphertexts=ciphertexts
        )


class OneOfNReceiver:
    """Chooses index ``i``; learns message ``i`` only."""

    def __init__(self, group: QRGroup, n: int, index: int, rng: random.Random):
        if not 0 <= index < n:
            raise ValueError(f"index {index} outside [0, {n})")
        self.group = group
        self.index = index
        self.bits = max(1, (n - 1).bit_length())
        self._receivers = [
            OTReceiver(group, (index >> l) & 1, rng) for l in range(self.bits)
        ]

    def first_messages(self, c_points: list[int]) -> list[int]:
        """One 1-of-2 OT first message per index bit."""
        return [
            receiver.first_message(c)
            for receiver, c in zip(self._receivers, c_points)
        ]

    def receive(self, transfer: OneOfNTransfer) -> bytes:
        """Recover the key chain for the chosen index and decrypt."""
        keys = [
            receiver.receive(ot)
            for receiver, ot in zip(self._receivers, transfer.ot_transfers)
        ]
        ciphertext = transfer.ciphertexts[self.index]
        pad = _combine_keys(keys, self.index, len(ciphertext), b"enc")
        return _xor(ciphertext, pad)


def run_ot_1_of_n(
    group: QRGroup, messages: list[bytes], index: int, rng: random.Random
) -> bytes:
    """Execute the whole 1-of-n OT locally; returns message ``index``."""
    sender = OneOfNSender(group, messages, rng)
    receiver = OneOfNReceiver(group, len(messages), index, rng)
    pk0s = receiver.first_messages(sender.c_points)
    return receiver.receive(sender.respond(pk0s))
