"""Paillier additively homomorphic encryption (substrate for aggregates).

The paper's conclusions ask: "Can we formalize models of minimal
disclosure and discover corresponding protocols for other database
operations such as aggregations?" The equijoin-sum protocol
(:mod:`repro.protocols.aggregate`) is this library's answer, and it
needs an additively homomorphic cipher; Paillier (1999) is the
classical choice and is implemented here from scratch.

Construction (simplified variant with ``g = n + 1``):

* keygen: ``n = p q`` for distinct primes, ``λ = lcm(p-1, q-1)``,
  ``μ = λ^{-1} mod n``.
* encrypt: ``c = (1 + m n) r^n mod n²`` for random ``r ∈ Z*_n``.
* decrypt: ``m = L(c^λ mod n²) · μ mod n`` with ``L(x) = (x-1)/n``.
* homomorphisms: ``E(a) · E(b) = E(a+b)``; ``E(a)^k = E(k a)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .numtheory import is_probable_prime, modinv

__all__ = ["PaillierPublicKey", "PaillierPrivateKey", "generate_keypair"]


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """Encryption key: the modulus ``n`` (``g = n + 1`` is implicit)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def plaintext_modulus(self) -> int:
        """Messages live in ``Z_n``; sums wrap modulo ``n``."""
        return self.n

    def encrypt(self, m: int, rng: random.Random) -> int:
        """Randomized encryption of ``m mod n``."""
        m %= self.n
        n2 = self.n_squared
        while True:
            r = rng.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                break
        return (1 + m * self.n) % n2 * pow(r, self.n, n2) % n2

    def add(self, c1: int, c2: int) -> int:
        """``E(a) + E(b) -> E(a + b)`` (ciphertext multiplication)."""
        return c1 * c2 % self.n_squared

    def add_plain(self, c: int, k: int, rng: random.Random) -> int:
        """``E(a) + k -> E(a + k)``."""
        return self.add(c, self.encrypt(k, rng))

    def multiply_plain(self, c: int, k: int) -> int:
        """``E(a) * k -> E(k a)`` (ciphertext exponentiation)."""
        return pow(c, k % self.n, self.n_squared)

    def rerandomize(self, c: int, rng: random.Random) -> int:
        """Fresh randomness, same plaintext (unlinkability helper)."""
        return self.add(c, self.encrypt(0, rng))

    def encrypt_zero(self, rng: random.Random) -> int:
        """A fresh encryption of zero (accumulator seed)."""
        return self.encrypt(0, rng)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Decryption key: ``λ`` and ``μ`` for the modulus in ``public``."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, c: int) -> int:
        """Recover ``m in Z_n`` from a ciphertext."""
        n = self.public.n
        n2 = self.public.n_squared
        if not 0 < c < n2:
            raise ValueError("ciphertext outside Z_{n^2}")
        x = pow(c, self.lam, n2)
        l_value = (x - 1) // n
        return l_value * self.mu % n

    def decrypt_signed(self, c: int) -> int:
        """Decrypt interpreting the upper half of Z_n as negatives."""
        m = self.decrypt(c)
        return m - self.public.n if m > self.public.n // 2 else m


def generate_keypair(
    bits: int = 256, rng: random.Random | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an (approximately) ``bits``-bit n.

    256-bit default keeps tests fast; use >= 2048 for anything real.
    """
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(half, rng)
        if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
            break
    n = p * q
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    public = PaillierPublicKey(n)
    # With g = n + 1: L(g^λ mod n²) = λ mod n, so μ = λ^{-1} mod n.
    mu = modinv(lam, n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu)
