"""Hashing database values into the cipher domain (Section 3.2.2).

The protocols never encrypt raw attribute values: each value ``v`` is
first hashed into the quadratic-residue group so the commutative
cipher's input "looks random" (the random-oracle assumption under which
the security statements are proved).

Two constructions are provided:

* :class:`TryIncrementHash` - SHA-256 of ``(label, value, counter)``,
  incrementing the counter until the digest, reduced modulo ``p``, is a
  quadratic residue. Expected two Legendre tests per value; the output
  is statistically close to uniform on QR_p.
* :class:`SquareHash` - one SHA-256 evaluation squared modulo ``p``.
  Cheaper (no Legendre tests) and still uniform on QR_p, at the price
  of hashing value pairs ``x`` and ``p - x`` together (harmless in the
  random-oracle model; kept as an ablation).

The module also implements the paper's collision analysis: the
closed-form bound ``1 - exp(-n(n-1)/2N)`` and the sort-based collision
check the server runs "at the start of each protocol".
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from .groups import QRGroup
from .numtheory import is_quadratic_residue

__all__ = [
    "value_to_bytes",
    "DomainHash",
    "TryIncrementHash",
    "SquareHash",
    "collision_probability",
    "find_collisions",
]

Value = int | str | bytes


def value_to_bytes(value: Value) -> bytes:
    """Canonical byte encoding of a database value.

    Distinct values map to distinct byte strings (the type is part of
    the encoding), so hashing cannot be confused across types.
    """
    if isinstance(value, bytes):
        return b"B" + value
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bool):  # bool is an int subtype; tag separately
        return b"L" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    raise TypeError(f"unhashable database value type: {type(value).__name__}")


class DomainHash(ABC):
    """A hash ``h : V -> QR_p`` modelled as a random oracle."""

    def __init__(self, group: QRGroup, label: bytes = b"repro.h"):
        self.group = group
        self.label = label

    @abstractmethod
    def hash_value(self, value: Value) -> int:
        """Hash one database value into the group."""

    def hash_set(self, values: Iterable[Value]) -> list[int]:
        """Hash a collection, preserving order (the paper's ``h(V)``)."""
        return [self.hash_value(v) for v in values]

    def _digest_stream(self, value: Value, counter: int) -> int:
        """An integer derived from SHA-256 of (label, value, counter).

        Enough digest blocks are concatenated to exceed the modulus by
        64 bits, so the reduction modulo ``p`` is statistically close to
        uniform.
        """
        needed_bits = self.group.p.bit_length() + 64
        blocks = []
        block_index = 0
        encoded = value_to_bytes(value)
        while sum(len(b) for b in blocks) * 8 < needed_bits:
            h = hashlib.sha256()
            h.update(self.label)
            h.update(counter.to_bytes(8, "big"))
            h.update(block_index.to_bytes(4, "big"))
            h.update(encoded)
            blocks.append(h.digest())
            block_index += 1
        return int.from_bytes(b"".join(blocks), "big")


class TryIncrementHash(DomainHash):
    """Try-and-increment hash: retry until the candidate is a residue."""

    def hash_value(self, value: Value) -> int:
        p = self.group.p
        counter = 0
        while True:
            candidate = self._digest_stream(value, counter) % p
            if candidate != 0 and is_quadratic_residue(candidate, p):
                return candidate
            counter += 1


class SquareHash(DomainHash):
    """Hash-and-square: one digest, squared into QR_p."""

    def hash_value(self, value: Value) -> int:
        p = self.group.p
        counter = 0
        while True:
            candidate = self._digest_stream(value, counter) % p
            if candidate != 0:
                return candidate * candidate % p
            counter += 1  # pragma: no cover - probability ~2**-bits


def collision_probability(n: int, domain_size: int) -> float:
    """The paper's birthday bound ``1 - exp(-n(n-1)/2N)``.

    For 1024-bit hash values (``N ~ 2**1024 / 2`` residues) and
    ``n = 10**6`` this evaluates to ~1e-295, the number quoted in
    Section 3.2.2.
    """
    if n < 2:
        return 0.0
    exponent = -(n * (n - 1)) / (2 * domain_size)
    return -math.expm1(exponent)


def find_collisions(hashes: Sequence[int]) -> list[int]:
    """Hash values occurring more than once (sort-based server check)."""
    ordered = sorted(hashes)
    collisions = []
    for previous, current in zip(ordered, ordered[1:]):
        if previous == current and (not collisions or collisions[-1] != current):
            collisions.append(current)
    return collisions
