"""Safe primes: generation and a table of embedded, vetted moduli.

The paper's commutative encryption (Section 3.2.1, Example 1) works in
the group of quadratic residues modulo a *safe* prime ``p = 2q + 1``
with both ``p`` and ``q`` prime.

Generating large safe primes in pure Python is slow, so this module
embeds:

* locally generated safe primes from 64 to 512 bits (fast test sizes),
  verified by the test suite, and
* the MODP groups from RFC 2409 (768/1024-bit) and RFC 3526
  (1536/2048-bit), whose moduli are published safe primes.

``safe_prime(bits)`` returns an embedded modulus when available and
falls back to random generation otherwise.
"""

from __future__ import annotations

import random

from .numtheory import is_probable_prime

__all__ = [
    "EMBEDDED_SAFE_PRIMES",
    "safe_prime",
    "generate_safe_prime",
    "is_safe_prime",
    "sophie_germain_order",
]

# RFC 2409 Second Oakley Group (1024-bit MODP), a published safe prime.
_RFC2409_1024 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)

# RFC 2409 First Oakley Group (768-bit MODP).
_RFC2409_768 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526 Group 5 (1536-bit MODP).
_RFC3526_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526 Group 14 (2048-bit MODP).
_RFC3526_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED5290770969 66D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF".replace(" ", ""),
    16,
)

# Locally generated safe primes (seeded search; verified in the test
# suite with deterministic Miller-Rabin where applicable).
EMBEDDED_SAFE_PRIMES: dict[int, int] = {
    64: 0xABA5ABD8BECC230B,
    96: 0x898A146EA6CEC45B33F9744F,
    128: 0xBA7C68AB3EAE6A8F5C13962C8874B533,
    160: 0xBD376C12F8BA5C0F4EFA73260962E34EDE8343AF,
    192: 0xFF52D2C3583D77B78BEA677132B044661E5804987B2151A3,
    256: 0xF2B19788485432E856C0EA5A5F416206E341DD3A152A90D0D39C2273DE2DF0B7,
    384: int(
        "B8617D255DC62742D57D23BD3DC406F3DB2BD1C996796F42"
        "2B26815742F3AA0388CE9339F8CFF159BCC6855589151DEF",
        16,
    ),
    512: int(
        "DFEE7C447AED8C3725B4F9A0D83019D10181A8C8AA0C2FCD998B669851A071BB"
        "DC36BDD7B64A5C61CBAFDDC4753102429BA37C896B00DE03B6AFA6AA8B147523",
        16,
    ),
    768: _RFC2409_768,
    1024: _RFC2409_1024,
    1536: _RFC3526_1536,
    2048: _RFC3526_2048,
}


def sophie_germain_order(p: int) -> int:
    """The prime order ``q = (p - 1) // 2`` of QR_p for a safe prime ``p``."""
    return (p - 1) // 2


def is_safe_prime(p: int, rounds: int = 40) -> bool:
    """True when both ``p`` and ``(p - 1) / 2`` are (probable) primes."""
    return p > 5 and p % 2 == 1 and is_probable_prime(p, rounds) and is_probable_prime((p - 1) // 2, rounds)


def generate_safe_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a fresh ``bits``-bit safe prime by random search.

    This is slow for large ``bits`` in pure Python; prefer
    :func:`safe_prime`, which serves embedded moduli for standard sizes.
    """
    if bits < 4:
        raise ValueError("safe primes need at least 4 bits")
    rng = rng or random.Random()
    while True:
        # Sample q with the top bit set so p = 2q + 1 has exactly `bits` bits.
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        # p = 2q + 1 is prime only if q % 3 != 1 (else 3 | p); cheap filter.
        if q % 3 == 1:
            continue
        if not is_probable_prime(q):
            continue
        p = 2 * q + 1
        if is_probable_prime(p):
            return p


def safe_prime(bits: int, rng: random.Random | None = None) -> int:
    """Return a ``bits``-bit safe prime.

    Embedded, vetted moduli are returned for the standard sizes in
    :data:`EMBEDDED_SAFE_PRIMES`; any other size triggers a (potentially
    slow) random search.
    """
    embedded = EMBEDDED_SAFE_PRIMES.get(bits)
    if embedded is not None:
        return embedded
    return generate_safe_prime(bits, rng)
