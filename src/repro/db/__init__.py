"""Database substrate: tables, value multisets, the plaintext query
engine (ground truth), and minimal-sharing query descriptions."""

from .engine import (
    equijoin,
    equijoin_size,
    group_by_count,
    intersection,
    intersection_size,
)
from .multiset import ValueMultiset
from .query import (
    Disclosure,
    DisclosureProfile,
    EquijoinQuery,
    EquijoinSizeQuery,
    IntersectionQuery,
    IntersectionSizeQuery,
)
from .table import Row, Table

__all__ = [
    "Table",
    "Row",
    "ValueMultiset",
    "intersection",
    "intersection_size",
    "equijoin",
    "equijoin_size",
    "group_by_count",
    "Disclosure",
    "DisclosureProfile",
    "IntersectionQuery",
    "IntersectionSizeQuery",
    "EquijoinQuery",
    "EquijoinSizeQuery",
]
