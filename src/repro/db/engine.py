"""Plaintext query engine - the ground truth.

Every protocol result in the test suite is checked against these
straightforward single-machine implementations of the four operations
the paper privatizes (intersection, equijoin, intersection size,
equijoin size) plus the group-by count query of the medical
application.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable

from .multiset import ValueMultiset
from .table import Row, Table

__all__ = [
    "intersection",
    "intersection_size",
    "equijoin",
    "equijoin_size",
    "group_by_count",
]


def intersection(v_s: Iterable[Hashable], v_r: Iterable[Hashable]) -> set[Hashable]:
    """``V_S intersect V_R`` over value *sets* (duplicates ignored)."""
    return set(v_s) & set(v_r)


def intersection_size(v_s: Iterable[Hashable], v_r: Iterable[Hashable]) -> int:
    """``|V_S intersect V_R|``."""
    return len(intersection(v_s, v_r))


def equijoin(t_s: Table, t_r: Table, s_attr: str, r_attr: str | None = None) -> Table:
    """``T_S join T_R`` on ``T_S.s_attr = T_R.r_attr`` (hash join).

    The result schema is R's columns followed by S's columns prefixed
    with ``s_`` when names collide, matching what the protocol's
    receiver R can materialize from ``ext(v)``.
    """
    r_attr = r_attr or s_attr
    s_groups = t_s.group_rows_by(s_attr)
    r_idx = t_r.column_index(r_attr)

    taken = set(t_r.columns)
    s_out_cols = tuple(
        c if c not in taken else f"s_{c}" for c in t_s.columns
    )
    out_columns = t_r.columns + s_out_cols

    out_rows: list[Row] = []
    for r_row in t_r.rows:
        for s_row in s_groups.get(r_row[r_idx], ()):  # preserves S row order
            out_rows.append(r_row + s_row)
    return Table(out_columns, out_rows, name=f"{t_r.name}_join_{t_s.name}")


def equijoin_size(t_s: Table, t_r: Table, s_attr: str, r_attr: str | None = None) -> int:
    """``|T_S join T_R|`` without materializing the join."""
    r_attr = r_attr or s_attr
    ms_s = ValueMultiset.from_table(t_s, s_attr)
    ms_r = ValueMultiset.from_table(t_r, r_attr)
    return ms_s.join_size(ms_r)


def group_by_count(
    table: Table, group_columns: Iterable[str]
) -> dict[tuple[Any, ...], int]:
    """``SELECT group_columns, COUNT(*) ... GROUP BY group_columns``."""
    cols = list(group_columns)
    indices = [table.column_index(c) for c in cols]
    counts: Counter = Counter(tuple(row[i] for i in indices) for row in table.rows)
    return dict(counts)
