"""Query descriptions and the minimal-sharing problem statement.

Section 2.2 states the problem as: given a query ``Q`` over the two
databases and *categories of additional information* ``I``, compute the
answer, revealing to each party nothing beyond the answer and ``I``.

These classes make the statement machine-checkable: each query type
declares its :class:`DisclosureProfile` - what R and S are allowed to
learn - and the audit machinery (:mod:`repro.protocols.audit`) verifies
a protocol run's recorded views against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Disclosure",
    "DisclosureProfile",
    "IntersectionQuery",
    "IntersectionSizeQuery",
    "EquijoinQuery",
    "EquijoinSizeQuery",
    "EquijoinSumQuery",
    "SelectionQuery",
]


class Disclosure(Enum):
    """Categories of information a party may legitimately learn."""

    OTHER_SET_SIZE = "size of the other party's value set"
    INTERSECTION = "the intersection V_S ∩ V_R"
    INTERSECTION_SIZE = "the intersection size |V_S ∩ V_R|"
    JOIN_ROWS = "ext(v) for every v in the intersection"
    JOIN_SIZE = "the equijoin size |T_S ⋈ T_R|"
    DUPLICATE_DISTRIBUTION = "the other party's duplicate distribution"
    PARTITION_OVERLAPS = "|V_R(d) ∩ V_S(d')| for duplicate classes d, d'"
    JOIN_SUM = "the aggregate SUM over the intersection"
    SELECTED_RECORD = "the single record selected by index"
    RECORD_COUNT_AND_WIDTH = "the record count and maximum record size"


@dataclass(frozen=True)
class DisclosureProfile:
    """What each party is permitted to learn from one query."""

    r_learns: frozenset[Disclosure]
    s_learns: frozenset[Disclosure]

    @classmethod
    def of(cls, r: set[Disclosure], s: set[Disclosure]) -> "DisclosureProfile":
        """Build from plain sets."""
        return cls(frozenset(r), frozenset(s))

    def describe(self) -> str:
        """Human-readable summary (used by examples and docs)."""
        r = ", ".join(sorted(d.value for d in self.r_learns)) or "nothing"
        s = ", ".join(sorted(d.value for d in self.s_learns)) or "nothing"
        return f"R learns: {r}. S learns: {s}."


@dataclass(frozen=True)
class _QueryBase:
    """Common shape of a two-party query over a shared attribute."""

    attribute: str = "A"

    @property
    def profile(self) -> DisclosureProfile:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class IntersectionQuery(_QueryBase):
    """``V_S ∩ V_R`` (Section 3): the answer goes to R."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={Disclosure.INTERSECTION, Disclosure.OTHER_SET_SIZE},
            s={Disclosure.OTHER_SET_SIZE},
        )


@dataclass(frozen=True)
class IntersectionSizeQuery(_QueryBase):
    """``|V_S ∩ V_R|`` (Section 5.1)."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={Disclosure.INTERSECTION_SIZE, Disclosure.OTHER_SET_SIZE},
            s={Disclosure.OTHER_SET_SIZE},
        )


@dataclass(frozen=True)
class EquijoinQuery(_QueryBase):
    """``T_S ⋈ T_R`` (Section 4): R also gets ``ext(v)`` on matches."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={
                Disclosure.INTERSECTION,
                Disclosure.JOIN_ROWS,
                Disclosure.OTHER_SET_SIZE,
            },
            s={Disclosure.OTHER_SET_SIZE},
        )


@dataclass(frozen=True)
class EquijoinSizeQuery(_QueryBase):
    """``|T_S ⋈ T_R|`` (Section 5.2) - with the characterized extra leak."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={
                Disclosure.JOIN_SIZE,
                Disclosure.OTHER_SET_SIZE,
                Disclosure.DUPLICATE_DISTRIBUTION,
                Disclosure.PARTITION_OVERLAPS,
            },
            s={Disclosure.OTHER_SET_SIZE, Disclosure.DUPLICATE_DISTRIBUTION},
        )


@dataclass(frozen=True)
class EquijoinSumQuery(_QueryBase):
    """``SUM(val_S(v)) over v ∈ V_S ∩ V_R`` - the aggregate extension
    answering the paper's future-work question (see
    :mod:`repro.protocols.aggregate`)."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={
                Disclosure.JOIN_SUM,
                Disclosure.INTERSECTION_SIZE,
                Disclosure.OTHER_SET_SIZE,
            },
            s={Disclosure.OTHER_SET_SIZE},
        )


@dataclass(frozen=True)
class SelectionQuery(_QueryBase):
    """Retrieve one record by index without revealing the index
    (symmetric-PIR-style; see :mod:`repro.protocols.selection`)."""

    @property
    def profile(self) -> DisclosureProfile:
        return DisclosureProfile.of(
            r={Disclosure.SELECTED_RECORD, Disclosure.RECORD_COUNT_AND_WIDTH},
            s=set(),
        )
