"""A minimal in-memory relational table.

This is the "Database" box of Figure 1: just enough relational
machinery to hold the parties' private tables ``T_R`` and ``T_S``,
extract the join-attribute value sets ``V_R``/``V_S`` and the
``ext(v)`` record groups, and execute the plaintext queries the
protocol results are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = ["Row", "Table"]

Row = tuple[Any, ...]


@dataclass
class Table:
    """An immutable-by-convention relation: named columns over rows.

    Attributes:
        columns: ordered column names (the schema).
        rows: list of value tuples, one per record.
        name: optional relation name (used in error messages only).
    """

    columns: tuple[str, ...]
    rows: list[Row] = field(default_factory=list)
    name: str = "table"

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        width = len(self.columns)
        if len(set(self.columns)) != width:
            raise ValueError(f"{self.name}: duplicate column names {self.columns}")
        for i, row in enumerate(self.rows):
            if len(row) != width:
                raise ValueError(
                    f"{self.name}: row {i} has {len(row)} values, schema has {width}"
                )
        self.rows = [tuple(row) for row in self.rows]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, columns: Sequence[str], records: Iterable[dict[str, Any]], name: str = "table"
    ) -> "Table":
        """Build from dict records; missing keys raise ``KeyError``."""
        cols = tuple(columns)
        return cls(cols, [tuple(rec[c] for c in cols) for rec in records], name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_index(self, column: str) -> int:
        """Position of a column; raises ``KeyError`` when unknown."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"{self.name}: no column {column!r} in {self.columns}") from None

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in row order (with duplicates)."""
        idx = self.column_index(column)
        return [row[idx] for row in self.rows]

    def distinct_values(self, column: str) -> set[Any]:
        """The value set ``V`` of an attribute (duplicates removed)."""
        return set(self.column_values(column))

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Rows satisfying a predicate over a column-name -> value dict."""
        kept = [row for row in self.rows if predicate(dict(zip(self.columns, row)))]
        return Table(self.columns, kept, name=f"{self.name}_sel")

    def where(self, column: str, value: Any) -> "Table":
        """Shorthand equality selection."""
        idx = self.column_index(column)
        return Table(
            self.columns,
            [row for row in self.rows if row[idx] == value],
            name=f"{self.name}_where",
        )

    def project(self, columns: Sequence[str]) -> "Table":
        """Projection (keeps duplicates, like SQL ``SELECT`` without DISTINCT)."""
        indices = [self.column_index(c) for c in columns]
        return Table(
            tuple(columns),
            [tuple(row[i] for i in indices) for row in self.rows],
            name=f"{self.name}_proj",
        )

    def group_rows_by(self, column: str) -> dict[Any, list[Row]]:
        """The ``ext(v)`` map: attribute value -> all rows carrying it."""
        idx = self.column_index(column)
        groups: dict[Any, list[Row]] = {}
        for row in self.rows:
            groups.setdefault(row[idx], []).append(row)
        return groups

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries (convenient for assertions and display)."""
        return [dict(zip(self.columns, row)) for row in self.rows]
