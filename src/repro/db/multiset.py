"""Value multisets over a join attribute (Section 5.2's objects).

The equijoin-size protocol operates on the *multisets* of attribute
values, and its leakage is characterized entirely in terms of the
duplicate structure: the partition ``V(d) = {v : v occurs d times}``.
:class:`ValueMultiset` packages the counts, the partition, and the
duplicate *distribution* (``d -> |V(d)|``) which is exactly what each
party learns about the other side.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from .table import Table

__all__ = ["ValueMultiset"]


@dataclass
class ValueMultiset:
    """A multiset of attribute values with duplicate bookkeeping."""

    counts: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[Hashable]) -> "ValueMultiset":
        """Count occurrences of an iterable of values."""
        return cls(Counter(values))

    @classmethod
    def from_table(cls, table: Table, column: str) -> "ValueMultiset":
        """The multiset of one table column (duplicates kept)."""
        return cls.from_values(table.column_values(column))

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    def distinct(self) -> set[Hashable]:
        """The underlying value *set* ``V`` (duplicates removed)."""
        return set(self.counts)

    def multiplicity(self, value: Hashable) -> int:
        """Occurrences of ``value`` (0 when absent)."""
        return self.counts.get(value, 0)

    def __len__(self) -> int:
        """Total number of occurrences (``|T.A|`` with duplicates)."""
        return sum(self.counts.values())

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate occurrences (each value repeated by its count)."""
        return iter(self.counts.elements())

    def __contains__(self, value: Hashable) -> bool:
        return value in self.counts

    @property
    def distinct_size(self) -> int:
        """``|V|`` - the number of distinct values."""
        return len(self.counts)

    # ------------------------------------------------------------------
    # Duplicate structure (the Section 5.2 leakage vocabulary)
    # ------------------------------------------------------------------
    def duplicate_distribution(self) -> dict[int, int]:
        """``d -> |V(d)|``: how many values occur exactly ``d`` times.

        This is precisely "the distribution of duplicates" that the
        equijoin-size protocol reveals to the other party.
        """
        histogram: Counter = Counter(self.counts.values())
        return dict(sorted(histogram.items()))

    def partition_by_count(self) -> dict[int, set[Hashable]]:
        """The partition ``d -> V(d)`` of values by multiplicity."""
        partition: dict[int, set[Hashable]] = {}
        for value, count in self.counts.items():
            partition.setdefault(count, set()).add(value)
        return partition

    # ------------------------------------------------------------------
    # Joint statistics
    # ------------------------------------------------------------------
    def join_size(self, other: "ValueMultiset") -> int:
        """``|T_S join T_R|`` = sum over shared values of count products."""
        smaller, larger = (
            (self, other) if self.distinct_size <= other.distinct_size else (other, self)
        )
        return sum(
            count * larger.counts[value]
            for value, count in smaller.counts.items()
            if value in larger.counts
        )

    def intersection_size(self, other: "ValueMultiset") -> int:
        """``|V_S intersect V_R|`` on the distinct value sets."""
        return len(self.distinct() & other.distinct())
