"""TF-IDF document preprocessing (substrate for Application 1).

Section 1.1: "The documents have been preprocessed to only include the
most significant words, using some measure such as term frequency
times inverse document frequency [41]." This module implements that
preprocessing from scratch: tokenization, tf-idf scoring over a corpus,
and per-document top-``k`` selection.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["tokenize", "TfIdfModel", "significant_words"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens, in order of appearance."""
    return _TOKEN_RE.findall(text.lower())


@dataclass
class TfIdfModel:
    """Corpus statistics for tf-idf scoring.

    ``idf(t) = ln((1 + N) / (1 + df(t))) + 1`` (smoothed, always
    positive) and ``tf(t, d)`` is the within-document relative
    frequency.
    """

    document_frequency: Counter
    n_documents: int

    @classmethod
    def fit(cls, corpus: Iterable[str]) -> "TfIdfModel":
        """Compute document frequencies over raw-text documents."""
        df: Counter = Counter()
        n = 0
        for text in corpus:
            n += 1
            df.update(set(tokenize(text)))
        return cls(document_frequency=df, n_documents=n)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of one term."""
        return math.log((1 + self.n_documents) / (1 + self.document_frequency[term])) + 1.0

    def scores(self, text: str) -> dict[str, float]:
        """tf-idf score per distinct term of one document."""
        tokens = tokenize(text)
        if not tokens:
            return {}
        counts = Counter(tokens)
        total = len(tokens)
        return {term: (count / total) * self.idf(term) for term, count in counts.items()}

    def top_k(self, text: str, k: int) -> frozenset[str]:
        """The ``k`` most significant words of one document.

        Ties break lexicographically so preprocessing is deterministic.
        """
        ranked = sorted(self.scores(text).items(), key=lambda item: (-item[1], item[0]))
        return frozenset(term for term, _ in ranked[:k])


def significant_words(corpus: Sequence[str], k: int) -> list[frozenset[str]]:
    """Preprocess a whole corpus to top-``k`` significant-word sets."""
    model = TfIdfModel.fit(corpus)
    return [model.top_k(text, k) for text in corpus]
