"""Application 2: medical research (Sections 1.1, 6.2.2, Figure 2).

A researcher ``T`` wants the 2x2 contingency table of the SQL query

    select pattern, reaction, count(*)
    from T_R, T_S
    where T_R.person_id = T_S.person_id and T_S.drug = true
    group by T_R.pattern, T_S.reaction

where ``T_R(person_id, pattern)`` and ``T_S(person_id, drug,
reaction)`` live in different enterprises. Figure 2's algorithm:

    V_R  = ids in T_R            V'_R = ids whose DNA matches
    V_S  = ids that took drug    V'_S = ids with adverse reaction
    T gets IntersectionSize(V'_R, V'_S)
    T gets IntersectionSize(V'_R, V_S - V'_S)
    T gets IntersectionSize(V_R - V'_R, V'_S)
    T gets IntersectionSize(V_R - V'_R, V_S - V'_S)

using the *modified* intersection-size protocol in which the doubly
encrypted sets ``Z_R`` and ``Z_S`` are sent to ``T`` instead of back to
R and S, so neither data holder learns even the counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..db.engine import equijoin, group_by_count
from ..db.table import Table
from ..net.runner import ThreePartyRun
from ..protocols.base import ProtocolSuite, sorted_ciphertexts

__all__ = [
    "ContingencyTable",
    "intersection_size_to_third_party",
    "run_medical_research",
    "plaintext_contingency",
]


@dataclass(frozen=True)
class ContingencyTable:
    """Counts of the four (pattern, reaction) groups among drug takers."""

    pattern_reaction: int
    pattern_no_reaction: int
    no_pattern_reaction: int
    no_pattern_no_reaction: int

    @property
    def total(self) -> int:
        return (
            self.pattern_reaction
            + self.pattern_no_reaction
            + self.no_pattern_reaction
            + self.no_pattern_no_reaction
        )

    def as_dict(self) -> dict[tuple[bool, bool], int]:
        """Counts keyed by (pattern, reaction), for comparisons."""
        return {
            (True, True): self.pattern_reaction,
            (True, False): self.pattern_no_reaction,
            (False, True): self.no_pattern_reaction,
            (False, False): self.no_pattern_no_reaction,
        }


def intersection_size_to_third_party(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite,
    run: ThreePartyRun,
    label: str,
) -> int:
    """One modified intersection-size execution; the count lands at T.

    Steps 1-4(b) are as in Section 5.1, except the final sets
    ``Z_S = f_eR(f_eS(h(V_S)))`` and ``Z_R = f_eS(f_eR(h(V_R)))`` are
    shipped to the researcher, who computes ``|Z_S ∩ Z_R|``.
    """
    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(set(v_s), key=repr)

    # Step 1 - hash and key generation.
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # Step 2 - single encryptions.
    y_r = suite.cipher.encrypt_many(e_r, x_r)
    y_s = suite.cipher.encrypt_many(e_s, x_s)

    # Steps 3/4(a) - exchange of singly encrypted sets between R and S.
    y_r_at_s = run.r_to_s.to_s(f"{label}:3:Y_R", sorted_ciphertexts(y_r))
    y_s_at_r = run.r_to_s.to_r(f"{label}:4a:Y_S", sorted_ciphertexts(y_s))

    # Modified step 4(b) - double encryptions go to T, reordered.
    z_r_at_t = run.s_sends_t(
        f"{label}:Z_R", sorted_ciphertexts(suite.cipher.encrypt_many(e_s, y_r_at_s))
    )
    z_s_at_t = run.r_sends_t(
        f"{label}:Z_S", sorted_ciphertexts(suite.cipher.encrypt_many(e_r, y_s_at_r))
    )

    # T computes the intersection size.
    return len(set(z_s_at_t) & set(z_r_at_t))


@dataclass
class MedicalResult:
    """T's answer plus the recorded three-party run."""

    table: ContingencyTable
    run: ThreePartyRun


def run_medical_research(
    t_r: Table,
    t_s: Table,
    suite: ProtocolSuite | None = None,
    id_column: str = "person_id",
    pattern_column: str = "pattern",
    drug_column: str = "drug",
    reaction_column: str = "reaction",
) -> MedicalResult:
    """Execute Figure 2 end to end.

    Args:
        t_r: the DNA enterprise's table (person_id, pattern: bool).
        t_s: the medical-history enterprise's table
            (person_id, drug: bool, reaction: bool).
        suite: protocol parameters shared by the four runs.
    """
    suite = suite or ProtocolSuite.default()
    run = ThreePartyRun(protocol="medical_research")

    # Local set computations (Figure 2's preamble; the set differences
    # are computed locally and fed to the protocol).
    v_r = set(t_r.column_values(id_column))
    v_r_pattern = set(t_r.where(pattern_column, True).column_values(id_column))
    drug_takers = t_s.where(drug_column, True)
    v_s = set(drug_takers.column_values(id_column))
    v_s_reaction = set(
        drug_takers.where(reaction_column, True).column_values(id_column)
    )

    table = ContingencyTable(
        pattern_reaction=intersection_size_to_third_party(
            v_r_pattern, v_s_reaction, suite, run, "q1"
        ),
        pattern_no_reaction=intersection_size_to_third_party(
            v_r_pattern, v_s - v_s_reaction, suite, run, "q2"
        ),
        no_pattern_reaction=intersection_size_to_third_party(
            v_r - v_r_pattern, v_s_reaction, suite, run, "q3"
        ),
        no_pattern_no_reaction=intersection_size_to_third_party(
            v_r - v_r_pattern, v_s - v_s_reaction, suite, run, "q4"
        ),
    )
    return MedicalResult(table=table, run=run)


def plaintext_contingency(
    t_r: Table,
    t_s: Table,
    id_column: str = "person_id",
    pattern_column: str = "pattern",
    drug_column: str = "drug",
    reaction_column: str = "reaction",
) -> ContingencyTable:
    """Ground truth: run the SQL query on the co-located tables."""
    drug_takers = t_s.where(drug_column, True)
    joined = equijoin(drug_takers, t_r, id_column)
    counts = group_by_count(joined, [pattern_column, reaction_column])
    return ContingencyTable(
        pattern_reaction=counts.get((True, True), 0),
        pattern_no_reaction=counts.get((True, False), 0),
        no_pattern_reaction=counts.get((False, True), 0),
        no_pattern_no_reaction=counts.get((False, False), 0),
    )
