"""Multi-query defenses (Section 2.3, "Multiple Queries").

The protocols bound what a *single* query reveals; across queries a
party could still triangulate (e.g. intersect against ``V``, then
``V - {v}``, and diff the answers). Section 2.3 lists the classical
statistical-database countermeasures as the first line of defense:

* scrutiny/auditing of queries (audit trails [13]),
* restricting the size of query results [17, 23],
* controlling the overlap among successive queries [19].

:class:`QueryAuditor` implements all three as a gatekeeper a party can
run in front of its protocol endpoint. This is an extension beyond the
paper's core protocols, flagged as such in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = ["QueryRefused", "AuditEntry", "QueryAuditor"]


class QueryRefused(Exception):
    """A query was refused by policy; the message says which rule."""


@dataclass(frozen=True)
class AuditEntry:
    """One line of the audit trail."""

    query_id: str
    input_size: int
    result_size: int | None
    decision: str
    reason: str
    timestamp: float


@dataclass
class QueryAuditor:
    """Gatekeeper enforcing result-size and overlap restrictions.

    Attributes:
        min_result_size: refuse queries whose (predicted or actual)
            result is smaller - small results isolate individuals [17].
        max_overlap_fraction: refuse a query whose input set overlaps
            any previously answered query's input by more than this
            fraction of the smaller set [19].
        max_queries: refuse after this many answered queries (None =
            unlimited).
    """

    min_result_size: int = 2
    max_overlap_fraction: float = 0.75
    max_queries: int | None = None
    trail: list[AuditEntry] = field(default_factory=list)
    _answered_inputs: list[frozenset] = field(default_factory=list)

    def review(
        self,
        query_id: str,
        input_values: Iterable[Hashable],
        result_size: int | None = None,
    ) -> None:
        """Admit or refuse one query; raises :class:`QueryRefused`.

        Args:
            query_id: identifier recorded in the trail.
            input_values: the value set the querying party will feed to
                the protocol.
            result_size: the answer's size, when the protocol has run
                (post-hoc enforcement for the size rule); None skips
                the size check.
        """
        input_set = frozenset(input_values)

        def refuse(reason: str) -> None:
            self.trail.append(
                AuditEntry(
                    query_id=query_id,
                    input_size=len(input_set),
                    result_size=result_size,
                    decision="refused",
                    reason=reason,
                    timestamp=time.time(),
                )
            )
            raise QueryRefused(f"{query_id}: {reason}")

        if self.max_queries is not None and self._answered() >= self.max_queries:
            refuse(f"query budget of {self.max_queries} exhausted")

        if result_size is not None and result_size < self.min_result_size:
            refuse(
                f"result size {result_size} below minimum {self.min_result_size}"
            )

        for previous in self._answered_inputs:
            smaller = min(len(previous), len(input_set))
            if smaller == 0:
                continue
            overlap = len(previous & input_set) / smaller
            if overlap > self.max_overlap_fraction:
                refuse(
                    f"overlap {overlap:.2f} with an answered query exceeds "
                    f"{self.max_overlap_fraction:.2f}"
                )

        self._answered_inputs.append(input_set)
        self.trail.append(
            AuditEntry(
                query_id=query_id,
                input_size=len(input_set),
                result_size=result_size,
                decision="answered",
                reason="",
                timestamp=time.time(),
            )
        )

    def _answered(self) -> int:
        return sum(1 for entry in self.trail if entry.decision == "answered")

    def answered_queries(self) -> list[AuditEntry]:
        """Trail entries for admitted queries."""
        return [entry for entry in self.trail if entry.decision == "answered"]

    def refused_queries(self) -> list[AuditEntry]:
        """Trail entries for refused queries."""
        return [entry for entry in self.trail if entry.decision == "refused"]
