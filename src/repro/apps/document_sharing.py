"""Application 1: selective document sharing (Sections 1.1 and 6.2.1).

Enterprise R holds documents ``D_R``, enterprise S holds ``D_S``; both
are preprocessed to significant-word sets. They want all pairs with
``f(|d_R ∩ d_S|, |d_R|, |d_S|) > τ`` - e.g.
``f = |d_R ∩ d_S| / (|d_R| + |d_S|)`` - without revealing the
non-matching documents.

Implementation (as in 6.2.1): R and S run the intersection-*size*
protocol once per document pair; R then evaluates the similarity
function. Besides the matches, the paper notes R also learns
``|d_R ∩ d_S|`` for every pair and S learns ``|D_R|`` and the document
sizes - the result object reports that disclosed information
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis.costmodel import ProtocolCostModel
from ..protocols.base import ProtocolSuite
from ..protocols.intersection_size import run_intersection_size

__all__ = [
    "dice_similarity",
    "DocumentMatch",
    "DocumentSharingResult",
    "run_document_sharing",
]

SimilarityFn = Callable[[int, int, int], float]


def dice_similarity(common: int, size_r: int, size_s: int) -> float:
    """The paper's example: ``|d_R ∩ d_S| / (|d_R| + |d_S|)``."""
    if size_r + size_s == 0:
        return 0.0
    return common / (size_r + size_s)


@dataclass(frozen=True)
class DocumentMatch:
    """One similar pair found by the join."""

    r_index: int
    s_index: int
    common_words: int
    similarity: float


@dataclass
class DocumentSharingResult:
    """Matches plus full accounting of cost and disclosure."""

    matches: list[DocumentMatch]
    pair_overlaps: dict[tuple[int, int], int]  # what R learns per pair
    protocol_runs: int
    total_bytes: int
    total_encryptions: int

    def matched_pairs(self) -> set[tuple[int, int]]:
        """The (R index, S index) pairs above the threshold."""
        return {(m.r_index, m.s_index) for m in self.matches}


def run_document_sharing(
    docs_r: Sequence[frozenset[str]],
    docs_s: Sequence[frozenset[str]],
    threshold: float,
    suite: ProtocolSuite | None = None,
    similarity: SimilarityFn = dice_similarity,
) -> DocumentSharingResult:
    """Find all similar document pairs via per-pair intersection sizes.

    Args:
        docs_r: R's documents as significant-word sets (see
            :mod:`repro.apps.tfidf`).
        docs_s: S's documents.
        threshold: τ - pairs with similarity strictly above it match.
        suite: protocol parameters shared by all pair runs.
        similarity: ``f(|d_R ∩ d_S|, |d_R|, |d_S|)``.
    """
    suite = suite or ProtocolSuite.default()
    matches: list[DocumentMatch] = []
    overlaps: dict[tuple[int, int], int] = {}
    total_bytes = 0
    cost_model = ProtocolCostModel()
    total_encryptions = 0

    for i, d_r in enumerate(docs_r):
        for j, d_s in enumerate(docs_s):
            result = run_intersection_size(list(d_r), list(d_s), suite)
            overlaps[(i, j)] = result.size
            total_bytes += result.run.total_bytes
            total_encryptions += cost_model.intersection_ops(
                len(d_s), len(d_r)
            ).encryptions
            score = similarity(result.size, len(d_r), len(d_s))
            if score > threshold:
                matches.append(
                    DocumentMatch(
                        r_index=i,
                        s_index=j,
                        common_words=result.size,
                        similarity=score,
                    )
                )

    return DocumentSharingResult(
        matches=matches,
        pair_overlaps=overlaps,
        protocol_runs=len(docs_r) * len(docs_s),
        total_bytes=total_bytes,
        total_encryptions=total_encryptions,
    )
