"""The paper's motivating applications built on the protocol layer:
selective document sharing (Application 1), medical research
(Application 2, Figure 2), TF-IDF preprocessing, and the Section 2.3
multi-query defenses."""

from .document_sharing import (
    DocumentMatch,
    DocumentSharingResult,
    dice_similarity,
    run_document_sharing,
)
from .medical import (
    ContingencyTable,
    MedicalResult,
    intersection_size_to_third_party,
    plaintext_contingency,
    run_medical_research,
)
from .restriction import AuditEntry, QueryAuditor, QueryRefused
from .tfidf import TfIdfModel, significant_words, tokenize

__all__ = [
    "dice_similarity",
    "DocumentMatch",
    "DocumentSharingResult",
    "run_document_sharing",
    "ContingencyTable",
    "MedicalResult",
    "run_medical_research",
    "plaintext_contingency",
    "intersection_size_to_third_party",
    "QueryAuditor",
    "QueryRefused",
    "AuditEntry",
    "TfIdfModel",
    "significant_words",
    "tokenize",
]
