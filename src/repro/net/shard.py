"""Session-sharded serving: one routing front end, N supervised workers.

One :class:`~repro.net.server.ProtocolServer` scales to the sessions a
single process can crypto for; past that the bottleneck is the GIL and
one process's executor, not the sockets. This module splits the roles:

* **workers** - plain :class:`ProtocolServer` instances (each with its
  own event loop, worker pool, and journal subdirectory
  ``shard-<i>/``), either forked into child processes
  (``worker_processes=True``, real parallelism) or started in-process
  (``False`` - cheap, deterministic, and what the tests and smoke
  benches use);
* **front end** - a :class:`ShardedProtocolServer` accept/route loop
  that owns the public port. It reads frames off a new connection just
  far enough to find the first valid ``hello``, takes the session id
  from it, and splices the connection through to worker
  ``session_id % shards`` - first replaying the buffered frames
  byte-for-byte, then degenerating into a dumb bidirectional byte
  relay. The front end never unseals payloads beyond the hello and
  holds no session state, so it stays O(connections), not O(sessions).

Routing by ``session_id % shards`` is what makes *reconnects* work:
the id in every hello is stable across a client's reconnect attempts,
so a resumed session always lands on the worker that owns its journal.

**Self-healing.** Forked workers are supervised: each worker sends
periodic ``("hb", shard, sessions, ts)`` heartbeat frames up its
control pipe, and a supervisor thread on the front end sweeps every
shard - reaping exits via the process table (``Process.is_alive`` is
a ``waitpid(WNOHANG)``) and treating a missed-heartbeat deadline as a
hung worker, which it SIGKILLs. A dead worker is respawned against the
*same* per-shard journal directory after an exponential backoff, so
every journaled session a crash stranded is recovered by the existing
``recover_*`` machinery the moment its client reconnects. Respawns are
capped by a per-shard restart budget; past it the shard is marked
``failed`` and its hellos get a typed permanent reject while the other
shards keep serving. The per-shard lifecycle is::

    alive --exit/hang--> dead --budget left--> respawning --> alive
                           \\--budget spent--> failed

While a shard is down, the front end never lets a client see a raw
socket reset: an in-flight splice that loses its worker leg - and any
hello routed at a dead or respawning shard - is answered with a typed
``worker-lost`` frame (the busy wire shape under its own tag, retry
hint included) before the client socket is closed cleanly. The session
layer raises it as :class:`~repro.net.session.WorkerLost` and
reconnects-and-resumes onto the respawned worker.

Wire bytes are otherwise untouched: a client cannot tell a sharded
server from a flat one (same hello/welcome/busy/reject frames, same
CRC seals), and each worker journals exactly what a standalone server
would.

Process workers are started by **fork** (party factories are closures
over live data and do not pickle), so ``worker_processes=True`` is
POSIX-only; construction fails fast elsewhere. The initial workers are
forked *before* the front end's event-loop thread starts; respawns
necessarily fork later, but the child immediately builds its own loop
and touches none of the parent's threads.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from . import serialization
from .aio import AsyncFrameEndpoint, LoopThread, _TIMEOUTS
from .server import ProtocolOffer, ProtocolServer
from .session import SESSION_VERSION, SessionConfig, seal, unseal
from .tcp import DEFAULT_MAX_FRAME_BYTES

__all__ = ["ShardedProtocolServer"]

#: Pre-hello frames the front end will buffer before giving up on a
#: connection. A well-behaved client's first frame *is* its hello;
#: the allowance merely tolerates a burst of garbled retransmits.
_MAX_PREHELLO_FRAMES = 32

#: Relay chunk size for the post-hello byte splice.
_RELAY_CHUNK = 65536

#: Ceiling on the exponential pause between respawns of one shard.
_RESPAWN_BACKOFF_CAP_S = 2.0

#: How long a freshly forked worker gets to report its port.
_SPAWN_TIMEOUT_S = 30.0

def _refusal_frame(
    tag: str, reason: str, retry_after_s: float | None = None
) -> tuple:
    """A typed refusal in the busy wire shape (hint in integer ms)."""
    fields: list[Any] = [tag, SESSION_VERSION, reason]
    if retry_after_s is not None:
        fields.append(max(int(round(retry_after_s * 1000)), 0))
    return seal(*fields)


def _worker_main(
    offers: list[ProtocolOffer],
    kwargs: dict[str, Any],
    conn: Any,
    shard_index: int,
    heartbeat_s: float,
) -> None:
    """Child-process entry: serve one shard until told to drain.

    Between control messages the worker emits ``("hb", shard,
    active_sessions, wall_ts)`` every ``heartbeat_s`` seconds; the
    parent's supervisor treats their absence as a hang. A ``("wedge",
    seconds)`` message - the chaos/test hook behind the heartbeat-hang
    axis - stops the control loop (heartbeats included) for that long,
    exactly what a worker stuck in a pathological syscall looks like
    from the outside.
    """
    # A terminal Ctrl-C signals the whole process group; workers must
    # outlive it so the front end's pipe-driven drain (which the
    # parent's own handler triggers) can journal a clean stop.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = ProtocolServer(offers, **kwargs).start()
    try:
        conn.send(("port", server.port))
        last_hb = 0.0  # send the first heartbeat immediately
        while True:
            now = time.monotonic()
            if now - last_hb >= heartbeat_s:
                try:
                    conn.send(("hb", shard_index,
                               server.active_sessions(), time.time()))
                except (BrokenPipeError, OSError):
                    pass
                last_hb = now
            wait = max(heartbeat_s - (time.monotonic() - last_hb), 0.01)
            try:
                if not conn.poll(wait):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                # Parent died: drain nothing, just stop cleanly so the
                # journals are consistent.
                server.shutdown(drain_timeout_s=0)
                return
            if message[0] == "shutdown":
                server.shutdown(drain_timeout_s=message[1])
                try:
                    conn.send(("results", server.results()))
                except (BrokenPipeError, OSError):
                    pass
                return
            if message[0] == "wedge":
                time.sleep(message[1])
    finally:
        conn.close()


class _Shard:
    """Front-end handle on one worker, in-process or forked.

    ``state`` walks alive -> dead -> respawning -> alive (or ``failed``
    once the restart budget is spent); in-process shards stay
    ``alive`` - there is no separate process to lose.
    """

    def __init__(self, index: int):
        self.index = index
        self.port: int | None = None
        self.server: ProtocolServer | None = None  # in-process mode
        self.process: Any = None  # process mode
        self.conn: Any = None
        self.results: list[dict[str, Any]] = []
        self.state = "alive"
        self.restarts = 0
        self.active_sessions = 0
        self.last_heartbeat = time.monotonic()
        self.respawn_at = 0.0


class ShardedProtocolServer:
    """N supervised worker servers behind one hello-routing public port.

    Accepts every :class:`ProtocolServer` keyword argument and forwards
    them to each worker unchanged, except ``journal_dir``, which is
    namespaced per shard (``<journal_dir>/shard-<i>``) so workers never
    contend for each other's journals, and ``max_sessions``, which is
    the **per-worker** ceiling (total capacity = ``shards x
    max_sessions``).

    Args:
        offers: as for :class:`ProtocolServer` (offers or mapping).
        shards: worker count; session ``sid`` is served by worker
            ``sid % shards``.
        worker_processes: fork each worker into its own process (true
            parallel crypto; POSIX only) instead of running them all
            in this process behind distinct ports.
        journal_fsync: fsync policy for the per-shard journal dirs
            (pass ``False`` for throughput benches where crash
            durability across power loss is not the point).
        restart_budget: respawns allowed per shard before it is marked
            ``failed`` (0 = never respawn).
        heartbeat_s: worker heartbeat period on the control pipe.
        heartbeat_timeout_s: missed-heartbeat deadline after which a
            live-but-silent worker is declared hung and killed
            (default ``4 * heartbeat_s``).
        respawn_backoff_s: base of the exponential pause before each
            respawn (doubled per restart, capped at 2 s).
    """

    def __init__(
        self,
        offers: Iterable[ProtocolOffer] | Mapping[str, tuple[Any, Any]],
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_processes: bool = False,
        config: SessionConfig | None = None,
        journal_dir: Any = None,
        journal_fsync: bool = True,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 128,
        restart_budget: int = 3,
        heartbeat_s: float = 1.0,
        heartbeat_timeout_s: float | None = None,
        respawn_backoff_s: float = 0.1,
        **worker_kwargs: Any,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if worker_processes and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            raise RuntimeError(
                "worker_processes=True needs the fork start method "
                "(party factories are closures and do not pickle)"
            )
        if isinstance(offers, Mapping):
            offers = [
                ProtocolOffer.from_data(name, data, params, seed=name)
                for name, (data, params) in offers.items()
            ]
        self.offers = list(offers)
        self.shards = shards
        self.host = host
        self.requested_port = port
        self.worker_processes = worker_processes
        self.config = config or SessionConfig()
        self.journal_dir = journal_dir
        self.journal_fsync = journal_fsync
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self.restart_budget = restart_budget
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = (
            heartbeat_timeout_s
            if heartbeat_timeout_s is not None
            else heartbeat_s * 4
        )
        self.respawn_backoff_s = respawn_backoff_s
        self.worker_kwargs = worker_kwargs
        self.routed = 0
        self.refused_unroutable = 0
        self.refused_failed = 0
        self.worker_lost_notices = 0
        self.worker_deaths = 0
        self.hung_workers = 0
        self.respawns = 0
        self.drain_report: list[dict[str, Any]] = []
        self._poll_s = min(max(heartbeat_s / 4, 0.01), 0.1)
        self._shards: list[_Shard] = []
        self._loop_thread: LoopThread | None = None
        self._aserver: asyncio.AbstractServer | None = None
        self._bound_port: int | None = None
        self._supervisor: threading.Thread | None = None
        self._stop_supervisor = threading.Event()
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The public (front-end) port, valid after :meth:`start`."""
        if self._bound_port is None:
            raise RuntimeError("server not started")
        return self._bound_port

    def _worker_config(self, index: int) -> dict[str, Any]:
        kwargs = dict(
            host="127.0.0.1",
            port=0,
            config=self.config,
            max_frame_bytes=self.max_frame_bytes,
            **self.worker_kwargs,
        )
        if self.journal_dir is not None:
            from .journal import JournalDir

            kwargs["journal_dir"] = JournalDir(
                Path(self.journal_dir) / f"shard-{index}",
                fsync=self.journal_fsync,
            )
        return kwargs

    def _spawn_worker(self, shard: _Shard) -> None:
        """Fork one worker for ``shard`` and wait for its port.

        Used both at :meth:`start` and on every respawn - crucially
        with the *same* ``_worker_config`` (same ``shard-<i>`` journal
        dir), which is what lets a respawned worker recover every
        session its predecessor journaled.
        """
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        shard.process = ctx.Process(
            target=_worker_main,
            args=(self.offers, self._worker_config(shard.index), child_conn,
                  shard.index, self.heartbeat_s),
            daemon=True,
            name=f"repro-shard-{shard.index}",
        )
        shard.process.start()
        child_conn.close()
        shard.conn = parent_conn
        if not parent_conn.poll(_SPAWN_TIMEOUT_S):
            raise RuntimeError(f"shard {shard.index} failed to start")
        tag, value = parent_conn.recv()
        if tag != "port":
            raise RuntimeError(
                f"shard {shard.index} failed to start: {value!r}"
            )
        shard.port = value
        shard.state = "alive"
        shard.active_sessions = 0
        shard.last_heartbeat = time.monotonic()

    def start(self) -> "ShardedProtocolServer":
        """Start every worker, the routing front end, the supervisor.

        Worker processes are forked *before* the front end's event-loop
        thread exists, so children never inherit a half-locked loop.
        """
        if self._loop_thread is not None:
            raise RuntimeError("server already started")
        for index in range(self.shards):
            shard = _Shard(index)
            if self.worker_processes:
                self._spawn_worker(shard)
            else:
                shard.server = ProtocolServer(
                    self.offers, **self._worker_config(index)
                ).start()
                shard.port = shard.server.port
            self._shards.append(shard)
        self._loop_thread = LoopThread(name="repro-shard-front").start()
        self._loop_thread.run(self._start_async(), timeout=30)
        if self.worker_processes:
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._supervisor.start()
        return self

    async def _start_async(self) -> None:
        self._aserver = await asyncio.start_server(
            self._route_client,
            self.host,
            self.requested_port,
            backlog=self.backlog,
        )
        self._bound_port = self._aserver.sockets[0].getsockname()[1]

    def __enter__(self) -> "ShardedProtocolServer":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Drain briefly and close on exit."""
        self.shutdown(drain_timeout_s=self.config.timeout_s)

    @property
    def draining(self) -> bool:
        """Whether a shutdown/drain has begun."""
        return self._draining.is_set()

    def install_signal_handlers(
        self, drain_timeout_s: float = 5.0, signals: tuple | None = None
    ) -> None:
        """Drain gracefully on SIGTERM (and SIGINT by default).

        Main-thread only (a Python ``signal`` restriction). The handler
        runs :meth:`shutdown` on a helper thread so the signal context
        returns immediately. Worker processes are daemonized children;
        the front end's drain is what stops them cleanly.
        """
        if signals is None:
            signals = (signal.SIGTERM, signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.shutdown,
                kwargs={"drain_timeout_s": drain_timeout_s},
                daemon=True,
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    # ------------------------------------------------------------------
    # Supervision (worker-process mode)
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        """Sweep every shard until shutdown stops us."""
        while not self._stop_supervisor.wait(self._poll_s):
            now = time.monotonic()
            for shard in self._shards:
                try:
                    self._check_shard(shard, now)
                except Exception:
                    # A supervision hiccup on one shard must not stop
                    # the sweep for the others.
                    pass

    def _check_shard(self, shard: _Shard, now: float) -> None:
        if shard.process is None or shard.state == "failed":
            return
        self._absorb_heartbeats(shard, now)
        if shard.state == "respawning":
            if now >= shard.respawn_at:
                self._respawn(shard)
            return
        # is_alive() reaps an exited child via waitpid(WNOHANG).
        exited = not shard.process.is_alive()
        hung = (
            not exited
            and now - shard.last_heartbeat > self.heartbeat_timeout_s
        )
        if not exited and not hung:
            return
        if hung:
            # Alive but silent past the deadline: a wedged worker is
            # indistinguishable from a dead one to its sessions, so
            # make it actually dead and take the respawn path.
            self.hung_workers += 1
            try:
                shard.process.kill()
            except (OSError, AttributeError):
                pass
            shard.process.join(timeout=5)
        self.worker_deaths += 1
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        shard.port = None  # stop routing at the corpse immediately
        shard.active_sessions = 0
        shard.state = "dead"
        self._schedule_respawn_or_fail(shard, now)

    def _absorb_heartbeats(self, shard: _Shard, now: float) -> None:
        try:
            while shard.conn is not None and shard.conn.poll(0):
                message = shard.conn.recv()
                if message[0] == "hb":
                    shard.last_heartbeat = now
                    shard.active_sessions = message[2]
        except (EOFError, OSError):
            pass  # the exit/hang checks below classify this

    def _schedule_respawn_or_fail(self, shard: _Shard, now: float) -> None:
        if shard.restarts >= self.restart_budget:
            shard.state = "failed"
            return
        delay = min(
            self.respawn_backoff_s * (2.0 ** shard.restarts),
            _RESPAWN_BACKOFF_CAP_S,
        )
        shard.state = "respawning"
        shard.respawn_at = now + delay

    def _respawn(self, shard: _Shard) -> None:
        shard.restarts += 1
        self.respawns += 1
        try:
            self._spawn_worker(shard)
        except Exception:
            # The fork or the port handshake failed: count it against
            # the budget and back off further.
            shard.state = "dead"
            self._schedule_respawn_or_fail(shard, time.monotonic())

    def _retry_hint_s(self, shard: _Shard) -> float:
        """What to tell a refused client about when to redial."""
        if shard.state == "respawning":
            remaining = max(shard.respawn_at - time.monotonic(), 0.0)
            return remaining + self._poll_s
        return self.respawn_backoff_s + self._poll_s

    # ------------------------------------------------------------------
    # Chaos / test hooks
    # ------------------------------------------------------------------
    def kill_worker(
        self, index: int, sig: int = signal.SIGKILL
    ) -> int | None:
        """Chaos hook: signal shard ``index``'s live worker process.

        Returns the pid signalled, or ``None`` when there was no live
        worker to kill (in-process shard, already dead, or failed).
        """
        shard = self._shards[index % self.shards]
        process = shard.process
        if process is None or process.pid is None or not process.is_alive():
            return None
        try:
            os.kill(process.pid, sig)
        except (ProcessLookupError, OSError):
            return None
        return process.pid

    def wedge_worker(self, index: int, wedge_s: float) -> bool:
        """Chaos hook: stop shard ``index``'s control loop for a while.

        The worker keeps serving its sessions but stops heartbeating -
        the observable signature of a hung process - so the supervisor
        kills and respawns it once the deadline passes.
        """
        shard = self._shards[index % self.shards]
        if shard.conn is None or shard.state != "alive":
            return False
        try:
            shard.conn.send(("wedge", float(wedge_s)))
        except (BrokenPipeError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> list[dict[str, Any]]:
        """One snapshot row per shard: pid, state, restarts, sessions.

        For forked workers ``active_sessions`` and ``heartbeat_age_s``
        reflect the most recent heartbeat; in-process shards are read
        directly and are always ``alive``.
        """
        now = time.monotonic()
        rows = []
        for shard in self._shards:
            if shard.server is not None:
                active = shard.server.active_sessions()
                rows.append({
                    "shard": shard.index,
                    "state": "alive",
                    "pid": os.getpid(),
                    "port": shard.port,
                    "restarts": 0,
                    "active_sessions": active,
                    "heartbeat_age_s": 0.0,
                })
            else:
                rows.append({
                    "shard": shard.index,
                    "state": shard.state,
                    "pid": (
                        shard.process.pid
                        if shard.process is not None
                        else None
                    ),
                    "port": shard.port,
                    "restarts": shard.restarts,
                    "active_sessions": shard.active_sessions,
                    "heartbeat_age_s": round(now - shard.last_heartbeat, 3),
                })
        return rows

    # ------------------------------------------------------------------
    # Shutdown / drain
    # ------------------------------------------------------------------
    def shutdown(self, drain_timeout_s: float | None = 5.0) -> None:
        """Stop accepting, drain every worker, then stop the relay.

        The front end closes its listener first but leaves live relays
        running, so in-flight sessions keep talking to their workers
        for the whole drain window. Dead, failed, and respawning shards
        are reaped without waiting on their control pipes, and every
        shard's outcome lands in :attr:`drain_report`. Idempotent.
        """
        self._draining.set()
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            # Stop the supervisor first: the drain owns the control
            # pipes from here on, and a respawn racing the drain would
            # resurrect a worker we are trying to stop.
            self._stop_supervisor.set()
            if self._supervisor is not None:
                self._supervisor.join(timeout=10)
            if self._loop_thread is not None and self._aserver is not None:
                try:
                    self._loop_thread.run(self._close_listener(), timeout=10)
                except Exception:
                    pass
            drain = drain_timeout_s if drain_timeout_s is not None else 0
            report: list[dict[str, Any]] = []
            pending: list[_Shard] = []
            for shard in self._shards:
                if shard.server is not None:
                    shard.server.shutdown(drain_timeout_s=drain_timeout_s)
                    shard.results = shard.server.results()
                    report.append({
                        "shard": shard.index, "state": "drained",
                        "restarts": shard.restarts,
                        "sessions": len(shard.results),
                    })
                    continue
                if shard.process is None:
                    continue
                if (
                    shard.state == "alive"
                    and shard.conn is not None
                    and shard.process.is_alive()
                ):
                    try:
                        shard.conn.send(("shutdown", drain))
                        pending.append(shard)
                        continue
                    except (BrokenPipeError, OSError):
                        pass  # died under us: report below
                report.append({
                    "shard": shard.index,
                    "state": shard.state if shard.state != "alive" else "dead",
                    "restarts": shard.restarts,
                    "sessions": len(shard.results),
                })
            for shard in pending:
                report.append(self._drain_worker(shard, drain))
            # waitpid sweep: every forked child, including long-dead
            # ones, is joined with a bounded timeout and escalated.
            for shard in self._shards:
                if shard.process is None:
                    continue
                shard.process.join(timeout=self.config.timeout_s * 2)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=5)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=5)
                if shard.conn is not None:
                    shard.conn.close()
                    shard.conn = None
            self.drain_report = sorted(report, key=lambda r: r["shard"])
            if self._loop_thread is not None:
                self._loop_thread.stop()
            self._closed.set()
            self._shutdown_done = True

    def _drain_worker(self, shard: _Shard, drain: float) -> dict[str, Any]:
        """Wait (bounded) for one live worker's drain results."""
        deadline = time.monotonic() + drain + self.config.timeout_s * 2
        state = "drain-timeout"
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                if not shard.conn.poll(remaining):
                    break
                message = shard.conn.recv()
            except (EOFError, OSError):
                state = "dead"  # worker died mid-drain
                break
            if message[0] == "results":
                shard.results = message[1]
                state = "drained"
                break
            # Late heartbeats racing the drain: absorb, keep waiting.
        return {
            "shard": shard.index, "state": state,
            "restarts": shard.restarts, "sessions": len(shard.results),
        }

    async def _close_listener(self) -> None:
        self._aserver.close()
        await self._aserver.wait_closed()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` has completed."""
        return self._closed.wait(timeout)

    def results(self) -> list[dict[str, Any]]:
        """Session summaries from every shard, tagged with ``"shard"``.

        Live (pre-shutdown) results are only visible for in-process
        workers; forked workers report theirs at drain time. Sessions
        a killed worker never got to report are absent - their ground
        truth lives in the shard's journal directory.
        """
        merged: list[dict[str, Any]] = []
        for shard in self._shards:
            rows = (
                shard.server.results()
                if shard.server is not None
                else shard.results
            )
            for row in rows:
                merged.append({**row, "shard": shard.index})
        return merged

    # ------------------------------------------------------------------
    # Routing (event-loop side)
    # ------------------------------------------------------------------
    async def _notify(
        self,
        endpoint: AsyncFrameEndpoint,
        tag: str,
        reason: str,
        retry_after_s: float | None = None,
    ) -> None:
        """Best-effort typed refusal frame on the client leg."""
        try:
            await endpoint.send(_refusal_frame(tag, reason, retry_after_s))
        except (ConnectionError, OSError, ValueError, *_TIMEOUTS):
            pass

    async def _route_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One public connection: find its hello, splice to its shard."""
        endpoint = AsyncFrameEndpoint(
            reader, writer, max_frame_bytes=self.max_frame_bytes
        )
        upstream: AsyncFrameEndpoint | None = None
        try:
            routed = await self._read_routable_hello(endpoint)
            if routed is None:
                self.refused_unroutable += 1
                return
            buffered, session_id = routed
            shard = self._shards[session_id % self.shards]
            if shard.state == "failed":
                self.refused_failed += 1
                await self._notify(
                    endpoint, "reject",
                    f"shard {shard.index} is failed "
                    "(worker restart budget exhausted)",
                )
                return
            port = shard.port
            if shard.state != "alive" or port is None:
                self.worker_lost_notices += 1
                await self._notify(
                    endpoint, "worker-lost",
                    f"shard {shard.index} worker is respawning",
                    retry_after_s=self._retry_hint_s(shard),
                )
                return
            culprit = "worker"
            try:
                up_reader, up_writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                upstream = AsyncFrameEndpoint(
                    up_reader, up_writer, max_frame_bytes=self.max_frame_bytes
                )
                for raw in buffered:
                    await upstream.send_bytes(raw)
                self.routed += 1
                culprit = await self._splice(
                    reader, writer, up_reader, up_writer
                )
            except (ConnectionError, OSError, *_TIMEOUTS):
                # Everything in the try block beyond the splice talks
                # only to the worker leg; the splice classifies its own
                # failures. Either way this is a worker-path loss.
                pass
            if culprit == "worker":
                # Satellite-fix contract: a worker-side reset is never
                # propagated raw - the client gets a typed, retryable
                # notice and then a clean close.
                self.worker_lost_notices += 1
                await self._notify(
                    endpoint, "worker-lost",
                    f"shard {shard.index} worker connection was lost "
                    "mid-session",
                    retry_after_s=self._retry_hint_s(shard),
                )
        except (ConnectionError, OSError, *_TIMEOUTS):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            await endpoint.close()
            if upstream is not None:
                await upstream.close()

    async def _read_routable_hello(
        self, endpoint: AsyncFrameEndpoint
    ) -> tuple[list[bytes], int] | None:
        """Buffer frames until a valid hello yields a session id.

        Mirrors the worker's own hello tolerance: garbled seals are
        buffered and passed along (the worker re-judges them), frames
        that are not even wire format close the connection, and a
        pre-hello burst beyond ``_MAX_PREHELLO_FRAMES`` is dropped as
        hostile.
        """
        deadline = time.monotonic() + self.config.timeout_s
        buffered: list[bytes] = []
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                raw = await endpoint.recv_bytes_within(remaining)
            except (*_TIMEOUTS, ConnectionError, OSError):
                return None
            buffered.append(raw)
            if len(buffered) > _MAX_PREHELLO_FRAMES:
                return None
            try:
                frame = serialization.decode(raw)
            except ValueError:
                return None
            try:
                fields = unseal(frame)
            except ValueError:
                continue
            if (
                fields[0] == "hello"
                and len(fields) == 6
                and isinstance(fields[3], int)
            ):
                return buffered, fields[3]

    async def _splice(
        self,
        down_reader: asyncio.StreamReader,
        down_writer: asyncio.StreamWriter,
        up_reader: asyncio.StreamReader,
        up_writer: asyncio.StreamWriter,
    ) -> str:
        """Dumb byte relay, both directions, until either side drops.

        Returns which side dropped first - ``"client"`` or
        ``"worker"`` - so the caller can translate a lost worker into
        a typed notice instead of a raw reset.
        """

        async def _pipe(
            src: asyncio.StreamReader,
            dst: asyncio.StreamWriter,
            src_side: str,
            dst_side: str,
        ) -> str:
            while True:
                try:
                    chunk = await src.read(_RELAY_CHUNK)
                except (ConnectionError, OSError):
                    return src_side
                if not chunk:
                    return src_side
                try:
                    dst.write(chunk)
                    await dst.drain()
                except (ConnectionError, OSError):
                    return dst_side

        tasks = {
            asyncio.ensure_future(
                _pipe(down_reader, up_writer, "client", "worker")
            ),
            asyncio.ensure_future(
                _pipe(up_reader, down_writer, "worker", "client")
            ),
        }
        culprit = "client"
        try:
            done, _pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                if task.result() == "worker":
                    culprit = "worker"
        finally:
            # One side dropped (or we were cancelled): tear down both
            # legs; the caller notifies the client if the worker leg
            # was the one that died.
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
        return culprit
