"""Session-sharded serving: one routing front end, N worker servers.

One :class:`~repro.net.server.ProtocolServer` scales to the sessions a
single process can crypto for; past that the bottleneck is the GIL and
one process's executor, not the sockets. This module splits the roles:

* **workers** - plain :class:`ProtocolServer` instances (each with its
  own event loop, worker pool, and journal subdirectory
  ``shard-<i>/``), either forked into child processes
  (``worker_processes=True``, real parallelism) or started in-process
  (``False`` - cheap, deterministic, and what the tests and smoke
  benches use);
* **front end** - a :class:`ShardedProtocolServer` accept/route loop
  that owns the public port. It reads frames off a new connection just
  far enough to find the first valid ``hello``, takes the session id
  from it, and splices the connection through to worker
  ``session_id % shards`` - first replaying the buffered frames
  byte-for-byte, then degenerating into a dumb bidirectional byte
  relay. The front end never unseals payloads beyond the hello and
  holds no session state, so it stays O(connections), not O(sessions).

Routing by ``session_id % shards`` is what makes *reconnects* work:
the id in every hello is stable across a client's reconnect attempts,
so a resumed session always lands on the worker that owns its journal.
The relay closes both legs when either side drops, which the session
layer already treats as an ordinary transient - the client redials,
the front end re-routes, the worker resumes from its round log.

Wire bytes are untouched: a client cannot tell a sharded server from a
flat one (same hello/welcome/busy/reject frames, same CRC seals), and
each worker journals exactly what a standalone server would.

Process workers are started by **fork** (party factories are closures
over live data and do not pickle), so ``worker_processes=True`` is
POSIX-only; construction fails fast elsewhere. Workers are forked
*before* the front end's event-loop thread starts, keeping the
children free of inherited locked state.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from . import serialization
from .aio import AsyncFrameEndpoint, LoopThread, _TIMEOUTS
from .server import ProtocolOffer, ProtocolServer
from .session import SessionConfig, unseal
from .tcp import DEFAULT_MAX_FRAME_BYTES

__all__ = ["ShardedProtocolServer"]

#: Pre-hello frames the front end will buffer before giving up on a
#: connection. A well-behaved client's first frame *is* its hello;
#: the allowance merely tolerates a burst of garbled retransmits.
_MAX_PREHELLO_FRAMES = 32

#: Relay chunk size for the post-hello byte splice.
_RELAY_CHUNK = 65536


def _worker_main(
    offers: list[ProtocolOffer],
    kwargs: dict[str, Any],
    conn: Any,
) -> None:
    """Child-process entry: serve one shard until told to drain."""
    # A terminal Ctrl-C signals the whole process group; workers must
    # outlive it so the front end's pipe-driven drain (which the
    # parent's own handler triggers) can journal a clean stop.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = ProtocolServer(offers, **kwargs).start()
    try:
        conn.send(("port", server.port))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                # Parent died: drain nothing, just stop cleanly so the
                # journals are consistent.
                server.shutdown(drain_timeout_s=0)
                return
            if message[0] == "shutdown":
                server.shutdown(drain_timeout_s=message[1])
                try:
                    conn.send(("results", server.results()))
                except (BrokenPipeError, OSError):
                    pass
                return
    finally:
        conn.close()


class _Shard:
    """Front-end handle on one worker, in-process or forked."""

    def __init__(self, index: int):
        self.index = index
        self.port: int | None = None
        self.server: ProtocolServer | None = None  # in-process mode
        self.process: Any = None  # process mode
        self.conn: Any = None
        self.results: list[dict[str, Any]] = []


class ShardedProtocolServer:
    """N worker servers behind one hello-routing public port.

    Accepts every :class:`ProtocolServer` keyword argument and forwards
    them to each worker unchanged, except ``journal_dir``, which is
    namespaced per shard (``<journal_dir>/shard-<i>``) so workers never
    contend for each other's journals, and ``max_sessions``, which is
    the **per-worker** ceiling (total capacity = ``shards x
    max_sessions``).

    Args:
        offers: as for :class:`ProtocolServer` (offers or mapping).
        shards: worker count; session ``sid`` is served by worker
            ``sid % shards``.
        worker_processes: fork each worker into its own process (true
            parallel crypto; POSIX only) instead of running them all
            in this process behind distinct ports.
    """

    def __init__(
        self,
        offers: Iterable[ProtocolOffer] | Mapping[str, tuple[Any, Any]],
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_processes: bool = False,
        config: SessionConfig | None = None,
        journal_dir: Any = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 128,
        **worker_kwargs: Any,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if worker_processes and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            raise RuntimeError(
                "worker_processes=True needs the fork start method "
                "(party factories are closures and do not pickle)"
            )
        if isinstance(offers, Mapping):
            offers = [
                ProtocolOffer.from_data(name, data, params, seed=name)
                for name, (data, params) in offers.items()
            ]
        self.offers = list(offers)
        self.shards = shards
        self.host = host
        self.requested_port = port
        self.worker_processes = worker_processes
        self.config = config or SessionConfig()
        self.journal_dir = journal_dir
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self.worker_kwargs = worker_kwargs
        self.routed = 0
        self.refused_unroutable = 0
        self._shards: list[_Shard] = []
        self._loop_thread: LoopThread | None = None
        self._aserver: asyncio.AbstractServer | None = None
        self._bound_port: int | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The public (front-end) port, valid after :meth:`start`."""
        if self._bound_port is None:
            raise RuntimeError("server not started")
        return self._bound_port

    def _worker_config(self, index: int) -> dict[str, Any]:
        kwargs = dict(
            host="127.0.0.1",
            port=0,
            config=self.config,
            max_frame_bytes=self.max_frame_bytes,
            **self.worker_kwargs,
        )
        if self.journal_dir is not None:
            kwargs["journal_dir"] = Path(self.journal_dir) / f"shard-{index}"
        return kwargs

    def start(self) -> "ShardedProtocolServer":
        """Start every worker, then the routing front end.

        Worker processes are forked *before* the front end's event-loop
        thread exists, so children never inherit a half-locked loop.
        """
        if self._loop_thread is not None:
            raise RuntimeError("server already started")
        for index in range(self.shards):
            shard = _Shard(index)
            if self.worker_processes:
                ctx = multiprocessing.get_context("fork")
                parent_conn, child_conn = ctx.Pipe()
                shard.process = ctx.Process(
                    target=_worker_main,
                    args=(self.offers, self._worker_config(index), child_conn),
                    daemon=True,
                    name=f"repro-shard-{index}",
                )
                shard.process.start()
                child_conn.close()
                shard.conn = parent_conn
                if not parent_conn.poll(30):
                    raise RuntimeError(f"shard {index} failed to start")
                tag, value = parent_conn.recv()
                if tag != "port":
                    raise RuntimeError(
                        f"shard {index} failed to start: {value!r}"
                    )
                shard.port = value
            else:
                shard.server = ProtocolServer(
                    self.offers, **self._worker_config(index)
                ).start()
                shard.port = shard.server.port
            self._shards.append(shard)
        self._loop_thread = LoopThread(name="repro-shard-front").start()
        self._loop_thread.run(self._start_async(), timeout=30)
        return self

    async def _start_async(self) -> None:
        self._aserver = await asyncio.start_server(
            self._route_client,
            self.host,
            self.requested_port,
            backlog=self.backlog,
        )
        self._bound_port = self._aserver.sockets[0].getsockname()[1]

    def __enter__(self) -> "ShardedProtocolServer":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Drain briefly and close on exit."""
        self.shutdown(drain_timeout_s=self.config.timeout_s)

    @property
    def draining(self) -> bool:
        """Whether a shutdown/drain has begun."""
        return self._draining.is_set()

    def install_signal_handlers(
        self, drain_timeout_s: float = 5.0, signals: tuple | None = None
    ) -> None:
        """Drain gracefully on SIGTERM (and SIGINT by default).

        Main-thread only (a Python ``signal`` restriction). The handler
        runs :meth:`shutdown` on a helper thread so the signal context
        returns immediately. Worker processes are daemonized children;
        the front end's drain is what stops them cleanly.
        """
        if signals is None:
            signals = (signal.SIGTERM, signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.shutdown,
                kwargs={"drain_timeout_s": drain_timeout_s},
                daemon=True,
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def shutdown(self, drain_timeout_s: float | None = 5.0) -> None:
        """Stop accepting, drain every worker, then stop the relay.

        The front end closes its listener first but leaves live relays
        running, so in-flight sessions keep talking to their workers
        for the whole drain window. Idempotent.
        """
        self._draining.set()
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            if self._loop_thread is not None and self._aserver is not None:
                try:
                    self._loop_thread.run(self._close_listener(), timeout=10)
                except Exception:
                    pass
            drain = drain_timeout_s if drain_timeout_s is not None else 0
            for shard in self._shards:
                if shard.server is not None:
                    shard.server.shutdown(drain_timeout_s=drain_timeout_s)
                    shard.results = shard.server.results()
                elif shard.conn is not None:
                    try:
                        shard.conn.send(("shutdown", drain))
                    except (BrokenPipeError, OSError):
                        pass
            for shard in self._shards:
                if shard.process is None:
                    continue
                try:
                    if shard.conn.poll(drain + self.config.timeout_s * 2):
                        tag, value = shard.conn.recv()
                        if tag == "results":
                            shard.results = value
                except (EOFError, OSError):
                    pass
                shard.process.join(timeout=self.config.timeout_s * 2)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=5)
                shard.conn.close()
            if self._loop_thread is not None:
                self._loop_thread.stop()
            self._closed.set()
            self._shutdown_done = True

    async def _close_listener(self) -> None:
        self._aserver.close()
        await self._aserver.wait_closed()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` has completed."""
        return self._closed.wait(timeout)

    def results(self) -> list[dict[str, Any]]:
        """Session summaries from every shard, tagged with ``"shard"``.

        Live (pre-shutdown) results are only visible for in-process
        workers; forked workers report theirs at drain time.
        """
        merged: list[dict[str, Any]] = []
        for shard in self._shards:
            rows = (
                shard.server.results()
                if shard.server is not None
                else shard.results
            )
            for row in rows:
                merged.append({**row, "shard": shard.index})
        return merged

    # ------------------------------------------------------------------
    # Routing (event-loop side)
    # ------------------------------------------------------------------
    async def _route_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One public connection: find its hello, splice to its shard."""
        endpoint = AsyncFrameEndpoint(
            reader, writer, max_frame_bytes=self.max_frame_bytes
        )
        upstream: AsyncFrameEndpoint | None = None
        try:
            routed = await self._read_routable_hello(endpoint)
            if routed is None:
                self.refused_unroutable += 1
                await endpoint.close()
                return
            buffered, session_id = routed
            shard = self._shards[session_id % self.shards]
            up_reader, up_writer = await asyncio.open_connection(
                "127.0.0.1", shard.port
            )
            upstream = AsyncFrameEndpoint(
                up_reader, up_writer, max_frame_bytes=self.max_frame_bytes
            )
            for raw in buffered:
                await upstream.send_bytes(raw)
            self.routed += 1
            await self._splice(reader, writer, up_reader, up_writer)
        except (ConnectionError, OSError, *_TIMEOUTS):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            await endpoint.close()
            if upstream is not None:
                await upstream.close()

    async def _read_routable_hello(
        self, endpoint: AsyncFrameEndpoint
    ) -> tuple[list[bytes], int] | None:
        """Buffer frames until a valid hello yields a session id.

        Mirrors the worker's own hello tolerance: garbled seals are
        buffered and passed along (the worker re-judges them), frames
        that are not even wire format close the connection, and a
        pre-hello burst beyond ``_MAX_PREHELLO_FRAMES`` is dropped as
        hostile.
        """
        deadline = time.monotonic() + self.config.timeout_s
        buffered: list[bytes] = []
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                raw = await endpoint.recv_bytes_within(remaining)
            except (*_TIMEOUTS, ConnectionError, OSError):
                return None
            buffered.append(raw)
            if len(buffered) > _MAX_PREHELLO_FRAMES:
                return None
            try:
                frame = serialization.decode(raw)
            except ValueError:
                return None
            try:
                fields = unseal(frame)
            except ValueError:
                continue
            if (
                fields[0] == "hello"
                and len(fields) == 6
                and isinstance(fields[3], int)
            ):
                return buffered, fields[3]

    async def _splice(
        self,
        down_reader: asyncio.StreamReader,
        down_writer: asyncio.StreamWriter,
        up_reader: asyncio.StreamReader,
        up_writer: asyncio.StreamWriter,
    ) -> None:
        """Dumb byte relay, both directions, until either side drops."""

        async def _pipe(
            src: asyncio.StreamReader, dst: asyncio.StreamWriter
        ) -> None:
            while True:
                chunk = await src.read(_RELAY_CHUNK)
                if not chunk:
                    return
                dst.write(chunk)
                await dst.drain()

        tasks = {
            asyncio.ensure_future(_pipe(down_reader, up_writer)),
            asyncio.ensure_future(_pipe(up_reader, down_writer)),
        }
        try:
            _done, pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            # One side dropped (or we were cancelled): tear down both
            # legs; the session layer treats it as an ordinary
            # transient and the client redials through the router.
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
