"""Supervised multi-session protocol server.

:func:`repro.net.tcp.serve_resumable_sender` hosts exactly one run on
one listener; a deployment-shaped endpoint (the ROADMAP's heavy-traffic
north star, and the long-lived multi-query servers of the encrypted
equi-join and Prism lines of work) needs the supervisor this module
provides:

* **many concurrent clients** - a :class:`ProtocolServer` accepts on
  one port and runs each session on its own worker thread, up to
  ``max_sessions`` at a time; the ``(max_sessions + 1)``-th new client
  is turned away with a typed ``busy`` frame (raised client-side as
  :class:`~repro.net.session.ServerBusyError`) instead of queueing or
  hanging;
* **reconnect routing** - the session id in every hello routes a
  reconnecting client back to the worker that owns its run, so the
  session layer's resume-from-round-log machinery works unchanged
  behind one shared port;
* **crash durability** - with a ``journal_dir``, every session is
  journaled (:mod:`repro.net.journal`) and a hello for a session this
  *process* has never seen is first looked up on disk - only its own
  journal path, via a read-only peek that can never disturb journals
  other live sessions are appending to: a server restarted after a
  crash rebuilds the run from its journal and serves the reconnect
  from the exact interrupted cursor, while an unrecoverable journal
  (corruption, replay divergence) is quarantined as ``*.corrupt`` and
  the client gets a typed ``reject`` instead of a hang;
* **supervision** - a reaper thread enforces per-session wall-clock
  deadlines and an idle timeout measured from the last frame the
  session actually moved (abandoned runs stop holding slots; busy
  runs on one long-lived connection are left alone),
  and :meth:`ProtocolServer.shutdown` / SIGTERM drains gracefully:
  new sessions are refused, in-flight rounds finish (journaled as they
  go) up to ``drain_timeout_s``, stragglers are aborted, and only then
  does the listener close.

Every protocol in the :data:`~repro.protocols.spec.PROTOCOLS` registry
is servable concurrently from one ``ProtocolServer`` with zero
protocol-specific code - the hello names the protocol, the registry
supplies the round schedule.
"""

from __future__ import annotations

import os
import queue
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..protocols.spec import get_spec
from .chaos import crash_point
from .journal import (
    CORRUPT_SUFFIX,
    JournalDir,
    JournalError,
    SessionJournal,
    peek_state,
    recover_sender_session,
)
from .session import (
    SESSION_VERSION,
    SenderSession,
    SessionAborted,
    SessionConfig,
    seal,
    unseal,
)
from .tcp import DEFAULT_MAX_FRAME_BYTES, SocketEndpoint, _listen

__all__ = [
    "ProtocolOffer",
    "SessionRecord",
    "ProtocolServer",
]


@dataclass(frozen=True)
class ProtocolOffer:
    """One protocol a server is willing to run, with S's inputs.

    ``make_sender`` must return a **fresh** party state per call (each
    session gets its own) and, when journaling is on, must be
    deterministic in its rng seed so a journaled session can be
    recovered after a process crash.
    """

    protocol: str
    params: Any
    make_sender: Callable[[], Any]

    @classmethod
    def from_data(
        cls, protocol: str, data: Any, params: Any, seed: Any = 0,
        engine: Any = None,
    ) -> "ProtocolOffer":
        """An offer whose sender factory reseeds per call.

        Every session (and every recovery of a session) sees an
        identically-seeded rng, which is exactly the determinism the
        journal's replay invariant requires.
        """
        spec = get_spec(protocol)
        return cls(
            protocol=protocol,
            params=params,
            make_sender=lambda: spec.make_sender(
                data, params, random.Random(seed), engine=engine
            ),
        )


#: Statuses under which a record holds a session slot and accepts routing.
_ACTIVE_STATUSES = ("starting", "running")


@dataclass
class SessionRecord:
    """Supervisor-side bookkeeping for one hosted session.

    A record is born ``starting`` - the id is reserved and reconnects
    queue on its inbox - while the (possibly slow) journal lookup and
    replay run outside the supervisor lock; it becomes ``running`` once
    its worker thread owns a live session.
    """

    session_id: int
    protocol: str
    session: Any = None
    inbox: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None
    status: str = "starting"  # starting | running | done | failed | expired
    result: Any = None
    error: BaseException | None = None
    started_at: float = field(default_factory=time.monotonic)
    last_activity: float = field(default_factory=time.monotonic)
    aborted: bool = False
    current_transport: Any = None

    def as_dict(self) -> dict[str, Any]:
        """Flat summary for logs and the metrics report."""
        stats = (
            self.session.stats.as_dict() if self.session is not None else {}
        )
        return {
            "session_id": self.session_id,
            "protocol": self.protocol,
            "status": self.status,
            "error": repr(self.error) if self.error is not None else None,
            **stats,
        }


class _ReplayFirstTransport:
    """Delegating transport that re-delivers one already-read frame.

    The dispatcher must read the hello itself to route by session id;
    the session layer then expects to read that same hello. This shim
    hands the buffered frame back on the first ``recv``.
    """

    def __init__(self, transport: Any, first: Any):
        self._transport = transport
        self._first: list[Any] = [first]

    def recv(self) -> Any:
        """The buffered hello first, then the live transport."""
        if self._first:
            return self._first.pop()
        return self._transport.recv()

    def send(self, message: Any) -> None:
        """Delegate to the wrapped transport."""
        self._transport.send(message)

    def settimeout(self, timeout: float | None) -> None:
        """Delegate to the wrapped transport."""
        self._transport.settimeout(timeout)

    def close(self) -> None:
        """Delegate to the wrapped transport."""
        self._transport.close()


class _ActivityTransport:
    """Delegating transport that timestamps every frame for the reaper.

    ``SessionRecord.last_activity`` would otherwise only move on
    *connection* events (hello routing, adoption), so a healthy session
    exchanging many rounds over one long-lived connection would look
    idle and get reaped mid-run. Routing each successful ``send`` /
    ``recv`` through here keeps the idle timeout measuring what it
    claims to: time since the session last moved bytes.
    """

    def __init__(self, transport: Any, record: SessionRecord):
        self._transport = transport
        self._record = record

    def recv(self) -> Any:
        """Receive, then stamp the owning record's activity clock."""
        frame = self._transport.recv()
        self._record.last_activity = time.monotonic()
        return frame

    def send(self, message: Any) -> None:
        """Send, then stamp the owning record's activity clock."""
        self._transport.send(message)
        self._record.last_activity = time.monotonic()

    def settimeout(self, timeout: float | None) -> None:
        """Delegate to the wrapped transport."""
        self._transport.settimeout(timeout)

    def close(self) -> None:
        """Delegate to the wrapped transport."""
        self._transport.close()


class ProtocolServer:
    """Accepts many concurrent protocol clients behind one port.

    Args:
        offers: the protocols this server runs - an iterable of
            :class:`ProtocolOffer` or a mapping
            ``protocol -> (data, params)`` (convenience; uses
            :meth:`ProtocolOffer.from_data` with a per-protocol seed).
        host / port: bind address (``port=0`` picks a free port).
        max_sessions: concurrent-session ceiling; further new clients
            get a typed ``busy`` frame and are closed.
        config: session-layer deadlines/retries, shared by all sessions.
        journal_dir: when set, a :class:`~repro.net.journal.JournalDir`
            (or path) under which every session is journaled and from
            which unknown session ids are recovered.
        session_deadline_s: wall-clock budget per session; exceeded
            sessions are aborted and marked ``expired``.
        idle_timeout_s: a session with no connection activity for this
            long is reaped (its slot freed) rather than held forever.
        recorder: optional
            :class:`~repro.analysis.instrumentation.MetricsRecorder`;
            every finished session's stats are folded into its report.
        chunk_size: when set, every hosted session streams chunkable
            rounds in slices of this many items (and journaled
            sessions must be recovered under the same value).
    """

    _REAP_POLL_S = 0.05

    def __init__(
        self,
        offers: Iterable[ProtocolOffer] | Mapping[str, tuple[Any, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 8,
        config: SessionConfig | None = None,
        journal_dir: Any = None,
        session_deadline_s: float | None = None,
        idle_timeout_s: float | None = None,
        recorder: Any = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 16,
        accept_poll_s: float = 0.1,
        chunk_size: int | None = None,
        busy_retry_hint_s: float = 0.5,
    ):
        if isinstance(offers, Mapping):
            offers = [
                ProtocolOffer.from_data(name, data, params, seed=name)
                for name, (data, params) in offers.items()
            ]
        self.offers: dict[str, ProtocolOffer] = {
            offer.protocol: offer for offer in offers
        }
        for name in self.offers:
            get_spec(name)  # fail fast on unregistered protocols
        self.host = host
        self.requested_port = port
        self.max_sessions = max_sessions
        self.config = config or SessionConfig()
        self.journal_dir = (
            journal_dir
            if isinstance(journal_dir, JournalDir) or journal_dir is None
            else JournalDir(journal_dir)
        )
        self.session_deadline_s = session_deadline_s
        self.idle_timeout_s = idle_timeout_s
        self.recorder = recorder
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self.accept_poll_s = accept_poll_s
        self.chunk_size = chunk_size
        self.busy_retry_hint_s = busy_retry_hint_s
        self.sessions: dict[int, SessionRecord] = {}
        self.rejected_busy = 0
        self.quarantined: list[Path] = []
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[1]

    def start(self) -> "ProtocolServer":
        """Bind, listen, and spawn the accept + reaper threads."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = _listen(
            self.host, self.requested_port, self.accept_poll_s,
            backlog=self.backlog,
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-server-reaper", daemon=True
        )
        self._reaper_thread.start()
        return self

    def __enter__(self) -> "ProtocolServer":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Drain briefly and close on exit."""
        self.shutdown(drain_timeout_s=self.config.timeout_s)

    def install_signal_handlers(
        self, drain_timeout_s: float = 5.0, signals: tuple | None = None
    ) -> None:
        """Drain gracefully on SIGTERM (and SIGINT by default).

        Main-thread only (a Python ``signal`` restriction). The handler
        runs :meth:`shutdown` on a helper thread so the signal context
        returns immediately.
        """
        if signals is None:
            signals = (signal.SIGTERM, signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.shutdown,
                kwargs={"drain_timeout_s": drain_timeout_s},
                daemon=True,
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def shutdown(self, drain_timeout_s: float | None = 5.0) -> None:
        """Refuse new sessions, drain in-flight ones, then close.

        Running sessions get up to ``drain_timeout_s`` seconds to
        finish their rounds (journaling as they go); whatever is still
        running after that is aborted. Idempotent.
        """
        self._draining.set()
        deadline = (
            time.monotonic() + drain_timeout_s
            if drain_timeout_s is not None
            else None
        )
        while True:
            with self._lock:
                running = [
                    r for r in self.sessions.values()
                    if r.status in _ACTIVE_STATUSES
                ]
            if not running:
                break
            if deadline is not None and time.monotonic() >= deadline:
                for record in running:
                    self._abort(record, "drain timeout")
                break
            time.sleep(self._REAP_POLL_S)
        self._closed.set()
        with self._lock:
            threads = [
                r.thread for r in self.sessions.values() if r.thread is not None
            ]
        for thread in threads:
            thread.join(timeout=self.config.timeout_s * 2)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` has completed."""
        return self._closed.wait(timeout)

    @property
    def draining(self) -> bool:
        """Whether a shutdown/drain has begun."""
        return self._draining.is_set()

    def results(self) -> list[dict[str, Any]]:
        """One summary dict per session ever hosted (oldest first)."""
        with self._lock:
            records = sorted(
                self.sessions.values(), key=lambda r: r.started_at
            )
            return [record.as_dict() for record in records]

    # ------------------------------------------------------------------
    # Accepting and routing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during shutdown
            threading.Thread(
                target=self._dispatch, args=(conn,), daemon=True
            ).start()

    def _read_hello(self, transport: Any) -> tuple | None:
        """One valid hello from a fresh connection, or ``None``."""
        deadline = time.monotonic() + self.config.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            transport.settimeout(max(remaining, 1e-3))
            try:
                frame = transport.recv()
            except (TimeoutError, OSError, ValueError):
                return None
            try:
                fields = unseal(frame)
            except ValueError:
                continue  # garbled: let the client retransmit
            if fields[0] == "hello" and len(fields) == 6:
                return (frame, fields)

    def _dispatch(self, conn: socket.socket) -> None:
        conn.settimeout(self.config.timeout_s)
        transport = SocketEndpoint(
            sock=conn, max_frame_bytes=self.max_frame_bytes
        )
        hello = self._read_hello(transport)
        if hello is None:
            transport.close()
            return
        raw, fields = hello
        _, version, protocol, session_id, _next_send, _next_recv = fields
        if version != SESSION_VERSION:
            self._refuse(
                transport, "reject", f"unsupported session version {version}"
            )
            return
        if protocol not in self.offers:
            self._refuse(
                transport, "reject",
                f"protocol {protocol!r} not served here",
            )
            return
        if not isinstance(session_id, int):
            self._refuse(transport, "reject", "malformed session id")
            return
        routed = _ReplayFirstTransport(transport, raw)
        with self._lock:
            record = self.sessions.get(session_id)
            if record is not None and record.status in _ACTIVE_STATUSES:
                record.last_activity = time.monotonic()
                record.inbox.put(routed)
                return
            if record is not None:
                self._refuse(
                    transport, "reject",
                    f"session {session_id} already {record.status}",
                )
                return
            if self._draining.is_set():
                self.rejected_busy += 1
                self._refuse(
                    transport, "busy", "server draining",
                    retry_after_s=self.busy_retry_hint_s,
                )
                return
            active = sum(
                1 for r in self.sessions.values()
                if r.status in _ACTIVE_STATUSES
            )
            if active >= self.max_sessions:
                self.rejected_busy += 1
                self._refuse(
                    transport, "busy",
                    f"server at capacity ({self.max_sessions} sessions)",
                    retry_after_s=self.busy_retry_hint_s,
                )
                return
            record = SessionRecord(
                session_id=session_id, protocol=protocol, status="starting"
            )
            self.sessions[session_id] = record
        # The slot is reserved and reconnects queue on the record's
        # inbox; the journal lookup and (on recovery) full cryptographic
        # replay happen outside the lock so hello routing stays live.
        record.inbox.put(routed)
        try:
            record.session = self._make_session(protocol, session_id)
        except JournalError as exc:
            self._fail_start(record, exc, quarantine=True)
            return
        except Exception as exc:
            # Whatever went wrong, the dispatch daemon must survive and
            # the queued clients must hear a reject, not a silent hang.
            self._fail_start(record, exc, quarantine=False)
            return
        record.status = "running"
        record.thread = threading.Thread(
            target=self._run_session,
            args=(record,),
            name=f"repro-session-{session_id:x}",
            daemon=True,
        )
        record.thread.start()

    def _refuse(
        self,
        transport: Any,
        tag: str,
        reason: str,
        retry_after_s: float | None = None,
    ) -> None:
        fields = [tag, SESSION_VERSION, reason]
        if retry_after_s is not None:
            # Busy frames carry the server's retry hint as a fourth
            # field, in integer milliseconds (the wire format has no
            # floats); old clients (which check for exactly 3 fields)
            # ignore the whole frame and simply retry their hello.
            fields.append(max(int(round(retry_after_s * 1000)), 0))
        try:
            transport.send(seal(*fields))
        except (OSError, ValueError):
            pass
        finally:
            transport.close()

    def _make_session(self, protocol: str, session_id: int) -> SenderSession:
        """A fresh or journal-recovered session for a reserved id.

        Only this session's own journal path is consulted - never a
        directory-wide scan, which would touch journals that other,
        currently-running sessions are appending to. The lookup itself
        is read-only (:func:`~repro.net.journal.peek_state`); the
        repairing open happens only on the path this id now owns.

        Raises:
            JournalError: the journal is unreadable or replay diverges.
        """
        offer = self.offers[protocol]
        journal = None
        if self.journal_dir is not None:
            path = self.journal_dir.path_for("sender", protocol, session_id)
            state = peek_state(path) if path.exists() else None
            if state is not None and not state.complete:
                return recover_sender_session(
                    path, offer.params, offer.make_sender,
                    config=self.config, recorder=self.recorder,
                    fsync=self.journal_dir.fsync,
                    chunk_size=self.chunk_size,
                    io=self.journal_dir.io,
                )
            if state is not None and state.complete:
                # Crash landed between the completion record and the
                # rotation: finish the rotation so this id restarts on
                # a fresh journal instead of appending after "done".
                SessionJournal(
                    path, fsync=self.journal_dir.fsync,
                    io=self.journal_dir.io,
                ).rotate()
            journal = self.journal_dir.open_session(
                "sender", protocol, session_id
            )
        return SenderSession(
            protocol,
            offer.params,
            offer.make_sender,
            config=self.config,
            recorder=self.recorder,
            journal=journal,
            chunk_size=self.chunk_size,
        )

    def _fail_start(
        self, record: SessionRecord, exc: BaseException, quarantine: bool
    ) -> None:
        """Session setup failed: free the id and reject queued clients.

        Every client queued on the reserved slot (the one that
        triggered recovery plus any reconnects that raced in) gets a
        typed reject instead of a silent hang, and the session id
        becomes retryable. With ``quarantine`` (an unrecoverable
        journal) the ``*.wal`` is set aside as ``*.corrupt``, so the
        retry starts over on a fresh journal while the bad file stays
        for forensics.
        """
        quarantined = (
            self._quarantine(record.protocol, record.session_id)
            if quarantine
            else None
        )
        with self._lock:
            self.sessions.pop(record.session_id, None)
        reason = (
            f"journal recovery for session {record.session_id} failed: {exc}"
        )
        if quarantined is not None:
            reason += f" (journal quarantined as {quarantined.name})"
        while True:
            try:
                queued = record.inbox.get_nowait()
            except queue.Empty:
                return
            self._refuse(queued, "reject", reason)

    def _quarantine(self, protocol: str, session_id: int) -> Path | None:
        """Rename an unrecoverable ``*.wal`` to ``*.corrupt``."""
        if self.journal_dir is None:
            return None
        path = self.journal_dir.path_for("sender", protocol, session_id)
        target = path.with_suffix(CORRUPT_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            return None  # already gone (or never created)
        self.quarantined.append(target)
        return target

    # ------------------------------------------------------------------
    # Session workers and the reaper
    # ------------------------------------------------------------------
    def _accept_for(self, record: SessionRecord) -> Any:
        """The blocking ``accept()`` callable one session runs under."""
        wait_s = self.config.timeout_s
        while True:
            if record.aborted:
                raise SessionAborted(
                    f"session {record.session_id} aborted by the supervisor"
                )
            try:
                transport = record.inbox.get(timeout=wait_s)
            except queue.Empty:
                raise TimeoutError(
                    f"no client (re)connected to session "
                    f"{record.session_id} in {wait_s}s"
                ) from None
            wrapped = _ActivityTransport(transport, record)
            record.current_transport = wrapped
            record.last_activity = time.monotonic()
            return wrapped

    def _run_session(self, record: SessionRecord) -> None:
        try:
            crash_point("server.session.run")
            state = record.session.run(lambda: self._accept_for(record))
        except SessionAborted as exc:
            record.status = "expired"
            record.error = exc
        except BaseException as exc:  # worker thread: never propagate
            record.status = "failed"
            record.error = exc
        else:
            record.status = "done"
            record.result = state
        finally:
            record.session.stats.finish()
            if self.recorder is not None:
                self.recorder.add_session(record.as_dict())
            journal = getattr(record.session, "journal", None)
            if journal is not None:
                journal.close()

    def _abort(self, record: SessionRecord, reason: str) -> None:
        """Mark a session aborted and unstick its blocked reads."""
        record.aborted = True
        transport = record.current_transport
        if transport is not None:
            try:
                transport.close()
            except OSError:
                pass
        # A worker blocked in inbox.get sees `aborted` on its next poll.

    def _reap_loop(self) -> None:
        while not self._closed.is_set():
            now = time.monotonic()
            with self._lock:
                running = [
                    r for r in self.sessions.values() if r.status == "running"
                ]
            for record in running:
                if (
                    self.session_deadline_s is not None
                    and now - record.started_at > self.session_deadline_s
                ):
                    self._abort(record, "session deadline exceeded")
                elif (
                    self.idle_timeout_s is not None
                    and now - record.last_activity > self.idle_timeout_s
                ):
                    self._abort(record, "idle timeout")
            time.sleep(self._REAP_POLL_S)
