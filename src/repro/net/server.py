"""Supervised multi-session protocol server.

:func:`repro.net.tcp.serve_resumable_sender` hosts exactly one run on
one listener; a deployment-shaped endpoint (the ROADMAP's heavy-traffic
north star, and the long-lived multi-query servers of the encrypted
equi-join and Prism lines of work) needs the supervisor this module
provides:

* **many concurrent clients** - a :class:`ProtocolServer` accepts on
  one port and runs each session on its own worker thread, up to
  ``max_sessions`` at a time; the ``(max_sessions + 1)``-th new client
  is turned away with a typed ``busy`` frame (raised client-side as
  :class:`~repro.net.session.ServerBusyError`) instead of queueing or
  hanging;
* **reconnect routing** - the session id in every hello routes a
  reconnecting client back to the worker that owns its run, so the
  session layer's resume-from-round-log machinery works unchanged
  behind one shared port;
* **crash durability** - with a ``journal_dir``, every session is
  journaled (:mod:`repro.net.journal`) and a hello for a session this
  *process* has never seen is first looked up on disk: a server
  restarted after a crash rebuilds the run from its journal and serves
  the reconnect from the exact interrupted cursor;
* **supervision** - a reaper thread enforces per-session wall-clock
  deadlines and an idle timeout (abandoned runs stop holding slots),
  and :meth:`ProtocolServer.shutdown` / SIGTERM drains gracefully:
  new sessions are refused, in-flight rounds finish (journaled as they
  go) up to ``drain_timeout_s``, stragglers are aborted, and only then
  does the listener close.

Every protocol in the :data:`~repro.protocols.spec.PROTOCOLS` registry
is servable concurrently from one ``ProtocolServer`` with zero
protocol-specific code - the hello names the protocol, the registry
supplies the round schedule.
"""

from __future__ import annotations

import queue
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..protocols.spec import get_spec
from .journal import JournalDir, recover_sender_session
from .session import (
    SESSION_VERSION,
    SenderSession,
    SessionAborted,
    SessionConfig,
    seal,
    unseal,
)
from .tcp import DEFAULT_MAX_FRAME_BYTES, SocketEndpoint, _listen

__all__ = [
    "ProtocolOffer",
    "SessionRecord",
    "ProtocolServer",
]


@dataclass(frozen=True)
class ProtocolOffer:
    """One protocol a server is willing to run, with S's inputs.

    ``make_sender`` must return a **fresh** party state per call (each
    session gets its own) and, when journaling is on, must be
    deterministic in its rng seed so a journaled session can be
    recovered after a process crash.
    """

    protocol: str
    params: Any
    make_sender: Callable[[], Any]

    @classmethod
    def from_data(
        cls, protocol: str, data: Any, params: Any, seed: Any = 0,
        engine: Any = None,
    ) -> "ProtocolOffer":
        """An offer whose sender factory reseeds per call.

        Every session (and every recovery of a session) sees an
        identically-seeded rng, which is exactly the determinism the
        journal's replay invariant requires.
        """
        spec = get_spec(protocol)
        return cls(
            protocol=protocol,
            params=params,
            make_sender=lambda: spec.make_sender(
                data, params, random.Random(seed), engine=engine
            ),
        )


@dataclass
class SessionRecord:
    """Supervisor-side bookkeeping for one hosted session."""

    session_id: int
    protocol: str
    session: Any
    inbox: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None
    status: str = "running"  # running | done | failed | expired
    result: Any = None
    error: BaseException | None = None
    started_at: float = field(default_factory=time.monotonic)
    last_activity: float = field(default_factory=time.monotonic)
    aborted: bool = False
    current_transport: Any = None

    def as_dict(self) -> dict[str, Any]:
        """Flat summary for logs and the metrics report."""
        return {
            "session_id": self.session_id,
            "protocol": self.protocol,
            "status": self.status,
            "error": repr(self.error) if self.error is not None else None,
            **self.session.stats.as_dict(),
        }


class _ReplayFirstTransport:
    """Delegating transport that re-delivers one already-read frame.

    The dispatcher must read the hello itself to route by session id;
    the session layer then expects to read that same hello. This shim
    hands the buffered frame back on the first ``recv``.
    """

    def __init__(self, transport: Any, first: Any):
        self._transport = transport
        self._first: list[Any] = [first]

    def recv(self) -> Any:
        """The buffered hello first, then the live transport."""
        if self._first:
            return self._first.pop()
        return self._transport.recv()

    def send(self, message: Any) -> None:
        """Delegate to the wrapped transport."""
        self._transport.send(message)

    def settimeout(self, timeout: float | None) -> None:
        """Delegate to the wrapped transport."""
        self._transport.settimeout(timeout)

    def close(self) -> None:
        """Delegate to the wrapped transport."""
        self._transport.close()


class ProtocolServer:
    """Accepts many concurrent protocol clients behind one port.

    Args:
        offers: the protocols this server runs - an iterable of
            :class:`ProtocolOffer` or a mapping
            ``protocol -> (data, params)`` (convenience; uses
            :meth:`ProtocolOffer.from_data` with a per-protocol seed).
        host / port: bind address (``port=0`` picks a free port).
        max_sessions: concurrent-session ceiling; further new clients
            get a typed ``busy`` frame and are closed.
        config: session-layer deadlines/retries, shared by all sessions.
        journal_dir: when set, a :class:`~repro.net.journal.JournalDir`
            (or path) under which every session is journaled and from
            which unknown session ids are recovered.
        session_deadline_s: wall-clock budget per session; exceeded
            sessions are aborted and marked ``expired``.
        idle_timeout_s: a session with no connection activity for this
            long is reaped (its slot freed) rather than held forever.
        recorder: optional
            :class:`~repro.analysis.instrumentation.MetricsRecorder`;
            every finished session's stats are folded into its report.
    """

    _REAP_POLL_S = 0.05

    def __init__(
        self,
        offers: Iterable[ProtocolOffer] | Mapping[str, tuple[Any, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 8,
        config: SessionConfig | None = None,
        journal_dir: Any = None,
        session_deadline_s: float | None = None,
        idle_timeout_s: float | None = None,
        recorder: Any = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 16,
        accept_poll_s: float = 0.1,
    ):
        if isinstance(offers, Mapping):
            offers = [
                ProtocolOffer.from_data(name, data, params, seed=name)
                for name, (data, params) in offers.items()
            ]
        self.offers: dict[str, ProtocolOffer] = {
            offer.protocol: offer for offer in offers
        }
        for name in self.offers:
            get_spec(name)  # fail fast on unregistered protocols
        self.host = host
        self.requested_port = port
        self.max_sessions = max_sessions
        self.config = config or SessionConfig()
        self.journal_dir = (
            journal_dir
            if isinstance(journal_dir, JournalDir) or journal_dir is None
            else JournalDir(journal_dir)
        )
        self.session_deadline_s = session_deadline_s
        self.idle_timeout_s = idle_timeout_s
        self.recorder = recorder
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self.accept_poll_s = accept_poll_s
        self.sessions: dict[int, SessionRecord] = {}
        self.rejected_busy = 0
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[1]

    def start(self) -> "ProtocolServer":
        """Bind, listen, and spawn the accept + reaper threads."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = _listen(
            self.host, self.requested_port, self.accept_poll_s,
            backlog=self.backlog,
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-server-reaper", daemon=True
        )
        self._reaper_thread.start()
        return self

    def __enter__(self) -> "ProtocolServer":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Drain briefly and close on exit."""
        self.shutdown(drain_timeout_s=self.config.timeout_s)

    def install_signal_handlers(
        self, drain_timeout_s: float = 5.0, signals: tuple | None = None
    ) -> None:
        """Drain gracefully on SIGTERM (and SIGINT by default).

        Main-thread only (a Python ``signal`` restriction). The handler
        runs :meth:`shutdown` on a helper thread so the signal context
        returns immediately.
        """
        if signals is None:
            signals = (signal.SIGTERM, signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.shutdown,
                kwargs={"drain_timeout_s": drain_timeout_s},
                daemon=True,
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def shutdown(self, drain_timeout_s: float | None = 5.0) -> None:
        """Refuse new sessions, drain in-flight ones, then close.

        Running sessions get up to ``drain_timeout_s`` seconds to
        finish their rounds (journaling as they go); whatever is still
        running after that is aborted. Idempotent.
        """
        self._draining.set()
        deadline = (
            time.monotonic() + drain_timeout_s
            if drain_timeout_s is not None
            else None
        )
        while True:
            with self._lock:
                running = [
                    r for r in self.sessions.values() if r.status == "running"
                ]
            if not running:
                break
            if deadline is not None and time.monotonic() >= deadline:
                for record in running:
                    self._abort(record, "drain timeout")
                break
            time.sleep(self._REAP_POLL_S)
        self._closed.set()
        with self._lock:
            threads = [
                r.thread for r in self.sessions.values() if r.thread is not None
            ]
        for thread in threads:
            thread.join(timeout=self.config.timeout_s * 2)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` has completed."""
        return self._closed.wait(timeout)

    @property
    def draining(self) -> bool:
        """Whether a shutdown/drain has begun."""
        return self._draining.is_set()

    def results(self) -> list[dict[str, Any]]:
        """One summary dict per session ever hosted (oldest first)."""
        with self._lock:
            records = sorted(
                self.sessions.values(), key=lambda r: r.started_at
            )
            return [record.as_dict() for record in records]

    # ------------------------------------------------------------------
    # Accepting and routing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during shutdown
            threading.Thread(
                target=self._dispatch, args=(conn,), daemon=True
            ).start()

    def _read_hello(self, transport: Any) -> tuple | None:
        """One valid hello from a fresh connection, or ``None``."""
        deadline = time.monotonic() + self.config.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            transport.settimeout(max(remaining, 1e-3))
            try:
                frame = transport.recv()
            except (TimeoutError, OSError, ValueError):
                return None
            try:
                fields = unseal(frame)
            except ValueError:
                continue  # garbled: let the client retransmit
            if fields[0] == "hello" and len(fields) == 6:
                return (frame, fields)

    def _dispatch(self, conn: socket.socket) -> None:
        conn.settimeout(self.config.timeout_s)
        transport = SocketEndpoint(
            sock=conn, max_frame_bytes=self.max_frame_bytes
        )
        hello = self._read_hello(transport)
        if hello is None:
            transport.close()
            return
        raw, fields = hello
        _, version, protocol, session_id, _next_send, _next_recv = fields
        if version != SESSION_VERSION:
            self._refuse(
                transport, "reject", f"unsupported session version {version}"
            )
            return
        if protocol not in self.offers:
            self._refuse(
                transport, "reject",
                f"protocol {protocol!r} not served here",
            )
            return
        if not isinstance(session_id, int):
            self._refuse(transport, "reject", "malformed session id")
            return
        routed = _ReplayFirstTransport(transport, raw)
        with self._lock:
            record = self.sessions.get(session_id)
            if record is not None and record.status == "running":
                record.last_activity = time.monotonic()
                record.inbox.put(routed)
                return
            if record is not None:
                self._refuse(
                    transport, "reject",
                    f"session {session_id} already {record.status}",
                )
                return
            if self._draining.is_set():
                self.rejected_busy += 1
                self._refuse(transport, "busy", "server draining")
                return
            running = sum(
                1 for r in self.sessions.values() if r.status == "running"
            )
            if running >= self.max_sessions:
                self.rejected_busy += 1
                self._refuse(
                    transport, "busy",
                    f"server at capacity ({self.max_sessions} sessions)",
                )
                return
            record = self._new_record(protocol, session_id)
            self.sessions[session_id] = record
        record.inbox.put(routed)
        record.thread = threading.Thread(
            target=self._run_session,
            args=(record,),
            name=f"repro-session-{session_id:x}",
            daemon=True,
        )
        record.thread.start()

    def _refuse(self, transport: Any, tag: str, reason: str) -> None:
        try:
            transport.send(seal(tag, SESSION_VERSION, reason))
        except (OSError, ValueError):
            pass
        finally:
            transport.close()

    def _new_record(self, protocol: str, session_id: int) -> SessionRecord:
        """A fresh or journal-recovered session for an unknown id."""
        offer = self.offers[protocol]
        if self.journal_dir is not None:
            stale = self.journal_dir.incomplete("sender", protocol)
            path = self.journal_dir.path_for("sender", protocol, session_id)
            if path in stale:
                session = recover_sender_session(
                    path, offer.params, offer.make_sender,
                    config=self.config, recorder=self.recorder,
                    fsync=self.journal_dir.fsync,
                )
                return SessionRecord(
                    session_id=session_id, protocol=protocol, session=session
                )
            journal = self.journal_dir.open_session(
                "sender", protocol, session_id
            )
        else:
            journal = None
        session = SenderSession(
            protocol,
            offer.params,
            offer.make_sender,
            config=self.config,
            recorder=self.recorder,
            journal=journal,
        )
        return SessionRecord(
            session_id=session_id, protocol=protocol, session=session
        )

    # ------------------------------------------------------------------
    # Session workers and the reaper
    # ------------------------------------------------------------------
    def _accept_for(self, record: SessionRecord) -> Any:
        """The blocking ``accept()`` callable one session runs under."""
        wait_s = self.config.timeout_s
        while True:
            if record.aborted:
                raise SessionAborted(
                    f"session {record.session_id} aborted by the supervisor"
                )
            try:
                transport = record.inbox.get(timeout=wait_s)
            except queue.Empty:
                raise TimeoutError(
                    f"no client (re)connected to session "
                    f"{record.session_id} in {wait_s}s"
                ) from None
            record.current_transport = transport
            record.last_activity = time.monotonic()
            return transport

    def _run_session(self, record: SessionRecord) -> None:
        try:
            state = record.session.run(lambda: self._accept_for(record))
        except SessionAborted as exc:
            record.status = "expired"
            record.error = exc
        except BaseException as exc:  # worker thread: never propagate
            record.status = "failed"
            record.error = exc
        else:
            record.status = "done"
            record.result = state
        finally:
            record.session.stats.finish()
            if self.recorder is not None:
                self.recorder.add_session(record.as_dict())
            journal = getattr(record.session, "journal", None)
            if journal is not None:
                journal.close()

    def _abort(self, record: SessionRecord, reason: str) -> None:
        """Mark a session aborted and unstick its blocked reads."""
        record.aborted = True
        transport = record.current_transport
        if transport is not None:
            try:
                transport.close()
            except OSError:
                pass
        # A worker blocked in inbox.get sees `aborted` on its next poll.

    def _reap_loop(self) -> None:
        while not self._closed.is_set():
            now = time.monotonic()
            with self._lock:
                running = [
                    r for r in self.sessions.values() if r.status == "running"
                ]
            for record in running:
                if (
                    self.session_deadline_s is not None
                    and now - record.started_at > self.session_deadline_s
                ):
                    self._abort(record, "session deadline exceeded")
                elif (
                    self.idle_timeout_s is not None
                    and now - record.last_activity > self.idle_timeout_s
                ):
                    self._abort(record, "idle timeout")
            time.sleep(self._REAP_POLL_S)
