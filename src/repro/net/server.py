"""Supervised multi-session protocol server on the asyncio core.

:func:`repro.net.tcp.serve_resumable_sender` hosts exactly one run on
one listener; a deployment-shaped endpoint (the ROADMAP's heavy-traffic
north star, and the long-lived multi-query servers of the encrypted
equi-join and Prism lines of work) needs the supervisor this module
provides:

* **many concurrent clients** - a :class:`ProtocolServer` accepts on
  one port with an event loop (:mod:`repro.net.aio`) that owns every
  socket: connection handling, hello routing, and all frame I/O are
  coroutines, so ten thousand idle connections cost file descriptors,
  not blocked threads. Admitted sessions - up to ``max_sessions`` at a
  time - run the synchronous, byte-exact session layer on a worker
  pool sized so every admitted session executes immediately; the
  ``(max_sessions + 1)``-th new client is turned away with a typed
  ``busy`` frame (raised client-side as
  :class:`~repro.net.session.ServerBusyError`) carrying a retry hint
  instead of queueing or hanging;
* **reconnect routing** - the session id in every hello routes a
  reconnecting client back to the record that owns its run, so the
  session layer's resume-from-round-log machinery works unchanged
  behind one shared port;
* **crash durability** - with a ``journal_dir``, every session is
  journaled (:mod:`repro.net.journal`) and a hello for a session this
  *process* has never seen is first looked up on disk - only its own
  journal path, via a read-only peek that can never disturb journals
  other live sessions are appending to: a server restarted after a
  crash rebuilds the run from its journal and serves the reconnect
  from the exact interrupted cursor, while an unrecoverable journal
  (corruption, replay divergence) is quarantined as ``*.corrupt`` and
  the client gets a typed ``reject`` instead of a hang;
* **supervision** - a reaper task on the loop enforces per-session
  wall-clock deadlines and an idle timeout measured from the last
  frame the session actually moved (abandoned runs stop holding
  slots; busy runs on one long-lived connection are left alone),
  and :meth:`ProtocolServer.shutdown` / SIGTERM drains gracefully:
  new sessions are refused, in-flight rounds finish (journaled as they
  go) up to ``drain_timeout_s``, stragglers are aborted, and only then
  do the workers join and the loop stop.

Every protocol in the :data:`~repro.protocols.spec.PROTOCOLS` registry
is servable concurrently from one ``ProtocolServer`` with zero
protocol-specific code - the hello names the protocol, the registry
supplies the round schedule. For session counts beyond one process's
capacity, :class:`repro.net.shard.ShardedProtocolServer` runs several
of these as sharded workers behind one routing front end.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import queue
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..protocols.spec import get_spec
from . import serialization
from .aio import AsyncFrameEndpoint, LoopThread, LoopTransport, _TIMEOUTS
from .chaos import crash_point
from .journal import (
    CORRUPT_SUFFIX,
    JournalDir,
    JournalError,
    SessionJournal,
    peek_state,
    recover_sender_session,
)
from .session import (
    SESSION_VERSION,
    SenderSession,
    SessionAborted,
    SessionConfig,
    seal,
    unseal,
)
from .tcp import DEFAULT_MAX_FRAME_BYTES

__all__ = [
    "ProtocolOffer",
    "SessionRecord",
    "ProtocolServer",
]


@dataclass(frozen=True)
class ProtocolOffer:
    """One protocol a server is willing to run, with S's inputs.

    ``make_sender`` must return a **fresh** party state per call (each
    session gets its own) and, when journaling is on, must be
    deterministic in its rng seed so a journaled session can be
    recovered after a process crash.
    """

    protocol: str
    params: Any
    make_sender: Callable[[], Any]

    @classmethod
    def from_data(
        cls, protocol: str, data: Any, params: Any, seed: Any = 0,
        engine: Any = None,
    ) -> "ProtocolOffer":
        """An offer whose sender factory reseeds per call.

        Every session (and every recovery of a session) sees an
        identically-seeded rng, which is exactly the determinism the
        journal's replay invariant requires.
        """
        spec = get_spec(protocol)
        return cls(
            protocol=protocol,
            params=params,
            make_sender=lambda: spec.make_sender(
                data, params, random.Random(seed), engine=engine
            ),
        )


#: Statuses under which a record holds a session slot and accepts routing.
_ACTIVE_STATUSES = ("starting", "running")


@dataclass
class SessionRecord:
    """Supervisor-side bookkeeping for one hosted session.

    A record is born ``starting`` - the id is reserved and reconnects
    queue on its inbox - while the (possibly slow) journal lookup and
    replay run on the worker pool outside the supervisor lock; it
    becomes ``running`` once a pool worker owns a live session.
    """

    session_id: int
    protocol: str
    session: Any = None
    inbox: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    future: Any = None
    status: str = "starting"  # starting | running | done | failed | expired
    result: Any = None
    error: BaseException | None = None
    started_at: float = field(default_factory=time.monotonic)
    last_activity: float = field(default_factory=time.monotonic)
    aborted: bool = False
    current_transport: Any = None

    def as_dict(self) -> dict[str, Any]:
        """Flat summary for logs and the metrics report."""
        stats = (
            self.session.stats.as_dict() if self.session is not None else {}
        )
        return {
            "session_id": self.session_id,
            "protocol": self.protocol,
            "status": self.status,
            "error": repr(self.error) if self.error is not None else None,
            **stats,
        }


class _ActivityTransport:
    """Delegating transport that timestamps every frame for the reaper.

    ``SessionRecord.last_activity`` would otherwise only move on
    *connection* events (hello routing, adoption), so a healthy session
    exchanging many rounds over one long-lived connection would look
    idle and get reaped mid-run. Routing each successful ``send`` /
    ``recv`` through here keeps the idle timeout measuring what it
    claims to: time since the session last moved bytes.
    """

    def __init__(self, transport: Any, record: SessionRecord):
        self._transport = transport
        self._record = record

    def recv(self) -> Any:
        """Receive, then stamp the owning record's activity clock."""
        frame = self._transport.recv()
        self._record.last_activity = time.monotonic()
        return frame

    def send(self, message: Any) -> None:
        """Send, then stamp the owning record's activity clock."""
        self._transport.send(message)
        self._record.last_activity = time.monotonic()

    def settimeout(self, timeout: float | None) -> None:
        """Delegate to the wrapped transport."""
        self._transport.settimeout(timeout)

    def close(self) -> None:
        """Delegate to the wrapped transport."""
        self._transport.close()


class ProtocolServer:
    """Accepts many concurrent protocol clients behind one port.

    The event loop (on its own thread) owns the listener and every
    connection; admitted sessions run the synchronous session layer on
    a worker pool of exactly ``max_sessions`` threads, reading frames
    through :class:`~repro.net.aio.LoopTransport` bridges. Wire bytes,
    journal bytes, and the refusal/recovery semantics are identical to
    the earlier thread-per-session implementation.

    Args:
        offers: the protocols this server runs - an iterable of
            :class:`ProtocolOffer` or a mapping
            ``protocol -> (data, params)`` (convenience; uses
            :meth:`ProtocolOffer.from_data` with a per-protocol seed).
        host / port: bind address (``port=0`` picks a free port).
        max_sessions: concurrent-session ceiling; further new clients
            get a typed ``busy`` frame and are closed.
        config: session-layer deadlines/retries, shared by all sessions.
        journal_dir: when set, a :class:`~repro.net.journal.JournalDir`
            (or path) under which every session is journaled and from
            which unknown session ids are recovered.
        session_deadline_s: wall-clock budget per session; exceeded
            sessions are aborted and marked ``expired``.
        idle_timeout_s: a session with no connection activity for this
            long is reaped (its slot freed) rather than held forever.
        recorder: optional
            :class:`~repro.analysis.instrumentation.MetricsRecorder`;
            every finished session's stats are folded into its report.
        chunk_size: when set, every hosted session streams chunkable
            rounds in slices of this many items (and journaled
            sessions must be recovered under the same value).
        busy_retry_hint_s: retry hint shipped in busy frames.
    """

    _REAP_POLL_S = 0.05

    def __init__(
        self,
        offers: Iterable[ProtocolOffer] | Mapping[str, tuple[Any, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 8,
        config: SessionConfig | None = None,
        journal_dir: Any = None,
        session_deadline_s: float | None = None,
        idle_timeout_s: float | None = None,
        recorder: Any = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 16,
        accept_poll_s: float = 0.1,
        chunk_size: int | None = None,
        busy_retry_hint_s: float = 0.5,
    ):
        if isinstance(offers, Mapping):
            offers = [
                ProtocolOffer.from_data(name, data, params, seed=name)
                for name, (data, params) in offers.items()
            ]
        self.offers: dict[str, ProtocolOffer] = {
            offer.protocol: offer for offer in offers
        }
        for name in self.offers:
            get_spec(name)  # fail fast on unregistered protocols
        self.host = host
        self.requested_port = port
        self.max_sessions = max_sessions
        self.config = config or SessionConfig()
        self.journal_dir = (
            journal_dir
            if isinstance(journal_dir, JournalDir) or journal_dir is None
            else JournalDir(journal_dir)
        )
        self.session_deadline_s = session_deadline_s
        self.idle_timeout_s = idle_timeout_s
        self.recorder = recorder
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self.accept_poll_s = accept_poll_s
        self.chunk_size = chunk_size
        self.busy_retry_hint_s = busy_retry_hint_s
        self.sessions: dict[int, SessionRecord] = {}
        self.rejected_busy = 0
        self.quarantined: list[Path] = []
        self._lock = threading.Lock()
        self._finished = threading.Condition(self._lock)
        self._loop_thread: LoopThread | None = None
        self._aserver: asyncio.AbstractServer | None = None
        self._bound_port: int | None = None
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._reaper_task: asyncio.Task | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._bound_port is None:
            raise RuntimeError("server not started")
        return self._bound_port

    def start(self) -> "ProtocolServer":
        """Spin up the event loop, bind, listen, start the reaper."""
        if self._loop_thread is not None:
            raise RuntimeError("server already started")
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_sessions,
            thread_name_prefix="repro-session",
        )
        self._loop_thread = LoopThread(name="repro-server-loop").start()
        self._loop_thread.run(self._start_async(), timeout=30)
        return self

    async def _start_async(self) -> None:
        self._aserver = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.requested_port,
            backlog=self.backlog,
        )
        self._bound_port = self._aserver.sockets[0].getsockname()[1]
        self._reaper_task = asyncio.get_running_loop().create_task(
            self._reap_loop()
        )

    def __enter__(self) -> "ProtocolServer":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Drain briefly and close on exit."""
        self.shutdown(drain_timeout_s=self.config.timeout_s)

    def install_signal_handlers(
        self, drain_timeout_s: float = 5.0, signals: tuple | None = None
    ) -> None:
        """Drain gracefully on SIGTERM (and SIGINT by default).

        Main-thread only (a Python ``signal`` restriction). The handler
        runs :meth:`shutdown` on a helper thread so the signal context
        returns immediately.
        """
        if signals is None:
            signals = (signal.SIGTERM, signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.shutdown,
                kwargs={"drain_timeout_s": drain_timeout_s},
                daemon=True,
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def shutdown(self, drain_timeout_s: float | None = 5.0) -> None:
        """Refuse new sessions, drain in-flight ones, then close.

        Running sessions get up to ``drain_timeout_s`` seconds to
        finish their rounds (journaling as they go); whatever is still
        running after that is aborted. The worker pool joins *before*
        the loop stops, so no session is ever left blocked on a dead
        loop. Idempotent.
        """
        self._draining.set()
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            deadline = (
                time.monotonic() + drain_timeout_s
                if drain_timeout_s is not None
                else None
            )
            while True:
                with self._lock:
                    running = [
                        r for r in self.sessions.values()
                        if r.status in _ACTIVE_STATUSES
                    ]
                if not running:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    for record in running:
                        self._abort(record, "drain timeout")
                    break
                time.sleep(self._REAP_POLL_S)
            self._closed.set()
            with self._lock:
                futures = [
                    r.future for r in self.sessions.values()
                    if r.future is not None
                ]
            for future in futures:
                try:
                    future.result(timeout=self.config.timeout_s * 2)
                except (concurrent.futures.TimeoutError, Exception):
                    pass  # outcomes live on the records, not the futures
            if self._executor is not None:
                self._executor.shutdown(wait=False)
            if self._loop_thread is not None:
                # Refusal grace: clients that raced the drain are mid
                # busy/reject exchange on the loop right now; give those
                # handlers a beat so they hear a typed refusal instead
                # of a reset (the thread-per-session server had the same
                # window, one accept poll wide).
                time.sleep(self.accept_poll_s * 2)
                try:
                    self._loop_thread.run(self._stop_async(), timeout=10)
                except (concurrent.futures.TimeoutError, RuntimeError):
                    pass
                self._loop_thread.stop()
            self._shutdown_done = True

    async def _stop_async(self) -> None:
        if self._reaper_task is not None:
            self._reaper_task.cancel()
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` has completed."""
        return self._closed.wait(timeout)

    def wait_for_sessions(
        self, count: int = 1, timeout: float | None = None
    ) -> bool:
        """Block until ``count`` sessions have reached a terminal status.

        Terminal means ``done``, ``failed`` or ``expired``. Returns
        whether the count was reached before ``timeout``. This is what
        lets a caller host "one run, then stop" on the supervised
        server without polling :meth:`results`.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._finished:
            while True:
                finished = sum(
                    1 for r in self.sessions.values()
                    if r.status not in _ACTIVE_STATUSES
                )
                if finished >= count:
                    return True
                if deadline is None:
                    self._finished.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._finished.wait(remaining):
                        return False

    @property
    def draining(self) -> bool:
        """Whether a shutdown/drain has begun."""
        return self._draining.is_set()

    def results(self) -> list[dict[str, Any]]:
        """One summary dict per session ever hosted (oldest first)."""
        with self._lock:
            records = sorted(
                self.sessions.values(), key=lambda r: r.started_at
            )
            return [record.as_dict() for record in records]

    def active_sessions(self) -> int:
        """How many sessions are currently starting or running.

        Cheap enough to poll from a heartbeat loop: a status sum under
        the lock, with none of the sorting or per-record dict building
        :meth:`results` does for its full report.
        """
        with self._lock:
            return sum(
                1 for r in self.sessions.values()
                if r.status in _ACTIVE_STATUSES
            )

    # ------------------------------------------------------------------
    # Accepting and routing (event-loop side)
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read its hello, validate, route or refuse."""
        endpoint = AsyncFrameEndpoint(
            reader, writer, max_frame_bytes=self.max_frame_bytes
        )
        try:
            hello = await self._read_hello(endpoint)
            if hello is None:
                await endpoint.close()
                return
            raw, fields = hello
            _, version, protocol, session_id, _next_send, _next_recv = fields
            if version != SESSION_VERSION:
                await self._refuse_async(
                    endpoint, "reject",
                    f"unsupported session version {version}",
                )
                return
            if protocol not in self.offers:
                await self._refuse_async(
                    endpoint, "reject",
                    f"protocol {protocol!r} not served here",
                )
                return
            if not isinstance(session_id, int):
                await self._refuse_async(
                    endpoint, "reject", "malformed session id"
                )
                return
            await self._route(endpoint, raw, protocol, session_id)
        except (ConnectionError, OSError, *_TIMEOUTS):
            await endpoint.close()
        except asyncio.CancelledError:
            await endpoint.close()
            raise

    async def _read_hello(
        self, endpoint: AsyncFrameEndpoint
    ) -> tuple[bytes, tuple] | None:
        """One valid hello from a fresh connection, or ``None``.

        Returns the hello's raw payload bytes (for replay into the
        routed session's transport) alongside its unsealed fields.
        """
        deadline = time.monotonic() + self.config.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                raw = await endpoint.recv_bytes_within(remaining)
            except (*_TIMEOUTS, ConnectionError, OSError):
                return None
            try:
                frame = serialization.decode(raw)
            except ValueError:
                return None  # not even wire format: close, as before
            try:
                fields = unseal(frame)
            except ValueError:
                continue  # garbled seal: let the client retransmit
            if fields[0] == "hello" and len(fields) == 6:
                return raw, fields

    async def _route(
        self,
        endpoint: AsyncFrameEndpoint,
        raw_hello: bytes,
        protocol: str,
        session_id: int,
    ) -> None:
        """Deliver a validated hello to its session, new or existing."""
        loop = asyncio.get_running_loop()
        with self._lock:
            record = self.sessions.get(session_id)
            if record is not None and record.status in _ACTIVE_STATUSES:
                record.last_activity = time.monotonic()
                transport = LoopTransport(
                    endpoint, loop, replay=[raw_hello],
                    timeout=self.config.timeout_s,
                )
                transport.start_pump()
                record.inbox.put(transport)
                return
            if record is not None:
                refusal = (
                    "reject",
                    f"session {session_id} already {record.status}",
                    None,
                )
            elif self._draining.is_set():
                self.rejected_busy += 1
                refusal = ("busy", "server draining", self.busy_retry_hint_s)
            else:
                active = sum(
                    1 for r in self.sessions.values()
                    if r.status in _ACTIVE_STATUSES
                )
                if active >= self.max_sessions:
                    self.rejected_busy += 1
                    refusal = (
                        "busy",
                        f"server at capacity ({self.max_sessions} sessions)",
                        self.busy_retry_hint_s,
                    )
                else:
                    refusal = None
                    record = SessionRecord(
                        session_id=session_id,
                        protocol=protocol,
                        status="starting",
                    )
                    self.sessions[session_id] = record
                    transport = LoopTransport(
                        endpoint, loop, replay=[raw_hello],
                        timeout=self.config.timeout_s,
                    )
                    transport.start_pump()
                    record.inbox.put(transport)
        if refusal is not None:
            tag, reason, hint = refusal
            await self._refuse_async(
                endpoint, tag, reason, retry_after_s=hint
            )
            return
        # The slot is reserved and reconnects queue on the record's
        # inbox; the journal lookup and (on recovery) full cryptographic
        # replay run on the worker pool so hello routing stays live.
        record.future = self._executor.submit(self._start_and_run, record)

    async def _refuse_async(
        self,
        endpoint: AsyncFrameEndpoint,
        tag: str,
        reason: str,
        retry_after_s: float | None = None,
    ) -> None:
        """Send a typed reject/busy frame and close (loop side)."""
        try:
            await endpoint.send(self._refusal_frame(tag, reason, retry_after_s))
        except (OSError, ValueError):
            pass
        finally:
            await endpoint.close()

    def _refusal_frame(
        self, tag: str, reason: str, retry_after_s: float | None
    ) -> tuple:
        fields = [tag, SESSION_VERSION, reason]
        if retry_after_s is not None:
            # Busy frames carry the server's retry hint as a fourth
            # field, in integer milliseconds (the wire format has no
            # floats); old clients (which check for exactly 3 fields)
            # ignore the whole frame and simply retry their hello.
            fields.append(max(int(round(retry_after_s * 1000)), 0))
        return seal(*fields)

    def _refuse(
        self,
        transport: Any,
        tag: str,
        reason: str,
        retry_after_s: float | None = None,
    ) -> None:
        """Send a typed reject/busy on a routed transport (worker side)."""
        try:
            transport.send(self._refusal_frame(tag, reason, retry_after_s))
        except (OSError, ValueError):
            pass
        finally:
            transport.close()

    # ------------------------------------------------------------------
    # Session workers (pool side)
    # ------------------------------------------------------------------
    def _start_and_run(self, record: SessionRecord) -> None:
        """Pool entry point: build (or recover) the session, then run it."""
        try:
            record.session = self._make_session(
                record.protocol, record.session_id
            )
        except JournalError as exc:
            self._fail_start(record, exc, quarantine=True)
            return
        except Exception as exc:
            # Whatever went wrong, the pool worker must survive and the
            # queued clients must hear a reject, not a silent hang.
            self._fail_start(record, exc, quarantine=False)
            return
        record.status = "running"
        self._run_session(record)

    def _make_session(self, protocol: str, session_id: int) -> SenderSession:
        """A fresh or journal-recovered session for a reserved id.

        Only this session's own journal path is consulted - never a
        directory-wide scan, which would touch journals that other,
        currently-running sessions are appending to. The lookup itself
        is read-only (:func:`~repro.net.journal.peek_state`); the
        repairing open happens only on the path this id now owns.

        Raises:
            JournalError: the journal is unreadable or replay diverges.
        """
        offer = self.offers[protocol]
        journal = None
        if self.journal_dir is not None:
            path = self.journal_dir.path_for("sender", protocol, session_id)
            state = peek_state(path) if path.exists() else None
            if (
                state is not None
                and not state.complete
                and (state.inbound or state.outbound)
            ):
                return recover_sender_session(
                    path, offer.params, offer.make_sender,
                    config=self.config, recorder=self.recorder,
                    fsync=self.journal_dir.fsync,
                    chunk_size=self.chunk_size,
                    io=self.journal_dir.io,
                )
            if state is not None and not state.complete:
                # Metadata-only stub: the previous process died inside
                # the handshake, before any round frame hit disk (it
                # may even have died between the ``open`` records and
                # the ``chunk_size`` meta, leaving a journal recovery
                # would wrongly quarantine). Nothing durable is lost by
                # starting this id over on a fresh journal.
                path.unlink()
                state = None
            if state is not None and state.complete:
                # Crash landed between the completion record and the
                # rotation: finish the rotation so this id restarts on
                # a fresh journal instead of appending after "done".
                SessionJournal(
                    path, fsync=self.journal_dir.fsync,
                    io=self.journal_dir.io,
                ).rotate()
            journal = self.journal_dir.open_session(
                "sender", protocol, session_id
            )
            if self.chunk_size is not None:
                # The meta record recovery checks against; the session
                # cannot write it itself (it only does so when it opens
                # the journal, and here the journal arrives pre-opened).
                journal.record_meta("chunk_size", self.chunk_size)
        return SenderSession(
            protocol,
            offer.params,
            offer.make_sender,
            config=self.config,
            recorder=self.recorder,
            journal=journal,
            chunk_size=self.chunk_size,
        )

    def _fail_start(
        self, record: SessionRecord, exc: BaseException, quarantine: bool
    ) -> None:
        """Session setup failed: free the id and reject queued clients.

        Every client queued on the reserved slot (the one that
        triggered recovery plus any reconnects that raced in) gets a
        typed reject instead of a silent hang, and the session id
        becomes retryable. With ``quarantine`` (an unrecoverable
        journal) the ``*.wal`` is set aside as ``*.corrupt``, so the
        retry starts over on a fresh journal while the bad file stays
        for forensics.
        """
        quarantined = (
            self._quarantine(record.protocol, record.session_id)
            if quarantine
            else None
        )
        with self._lock:
            self.sessions.pop(record.session_id, None)
            self._finished.notify_all()
        reason = (
            f"journal recovery for session {record.session_id} failed: {exc}"
        )
        if quarantined is not None:
            reason += f" (journal quarantined as {quarantined.name})"
        while True:
            try:
                queued = record.inbox.get_nowait()
            except queue.Empty:
                return
            self._refuse(queued, "reject", reason)

    def _quarantine(self, protocol: str, session_id: int) -> Path | None:
        """Rename an unrecoverable ``*.wal`` to ``*.corrupt``."""
        if self.journal_dir is None:
            return None
        path = self.journal_dir.path_for("sender", protocol, session_id)
        target = path.with_suffix(CORRUPT_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            return None  # already gone (or never created)
        self.quarantined.append(target)
        return target

    def _accept_for(self, record: SessionRecord) -> Any:
        """The blocking ``accept()`` callable one session runs under."""
        wait_s = self.config.timeout_s
        while True:
            if record.aborted:
                raise SessionAborted(
                    f"session {record.session_id} aborted by the supervisor"
                )
            try:
                transport = record.inbox.get(timeout=wait_s)
            except queue.Empty:
                raise TimeoutError(
                    f"no client (re)connected to session "
                    f"{record.session_id} in {wait_s}s"
                ) from None
            wrapped = _ActivityTransport(transport, record)
            record.current_transport = wrapped
            record.last_activity = time.monotonic()
            return wrapped

    def _run_session(self, record: SessionRecord) -> None:
        try:
            crash_point("server.session.run")
            state = record.session.run(lambda: self._accept_for(record))
        except SessionAborted as exc:
            record.status = "expired"
            record.error = exc
        except BaseException as exc:  # pool worker: never propagate
            record.status = "failed"
            record.error = exc
        else:
            record.status = "done"
            record.result = state
        finally:
            record.session.stats.finish()
            if self.recorder is not None:
                self.recorder.add_session(record.as_dict())
            journal = getattr(record.session, "journal", None)
            if journal is not None:
                journal.close()
            with self._finished:
                self._finished.notify_all()

    # ------------------------------------------------------------------
    # The reaper (event-loop side)
    # ------------------------------------------------------------------
    def _abort(self, record: SessionRecord, reason: str) -> None:
        """Mark a session aborted and unstick its blocked reads."""
        record.aborted = True
        transport = record.current_transport
        if transport is not None:
            try:
                transport.close()
            except OSError:
                pass
        # A worker blocked in inbox.get sees `aborted` on its next poll.

    async def _reap_loop(self) -> None:
        while not self._closed.is_set():
            now = time.monotonic()
            with self._lock:
                running = [
                    r for r in self.sessions.values() if r.status == "running"
                ]
            for record in running:
                if (
                    self.session_deadline_s is not None
                    and now - record.started_at > self.session_deadline_s
                ):
                    self._abort(record, "session deadline exceeded")
                elif (
                    self.idle_timeout_s is not None
                    and now - record.last_activity > self.idle_timeout_s
                ):
                    self._abort(record, "idle timeout")
            await asyncio.sleep(self._REAP_POLL_S)
