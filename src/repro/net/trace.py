"""Human-readable rendering of recorded protocol runs.

Turns a :class:`~repro.net.runner.ProtocolRun` (or a single
:class:`~repro.net.transcript.View`) into a text sequence diagram with
per-message payload summaries and byte counts - the tool you reach for
when explaining or debugging a protocol execution.

Example output::

    protocol: intersection (3 messages, 1.2 kB)
    R ------------------------------> S   3:Y_R       3 codewords (123 B)
    R <------------------------------ S   4a:Y_S      4 codewords (164 B)
    R <------------------------------ S   4b:pairs    3 pairs (246 B)
"""

from __future__ import annotations

from typing import Any

from .runner import ProtocolRun
from .serialization import encoded_size
from .transcript import ReceivedMessage, View

__all__ = ["summarize_payload", "render_run", "render_view"]


def summarize_payload(payload: Any) -> str:
    """One-line description of a message payload."""
    if isinstance(payload, list):
        if payload and all(isinstance(x, int) for x in payload):
            return f"{len(payload)} codewords"
        if payload and all(isinstance(x, tuple) for x in payload):
            width = len(payload[0])
            kind = {2: "pairs", 3: "triples"}.get(width, f"{width}-tuples")
            return f"{len(payload)} {kind}"
        return f"list of {len(payload)}"
    if isinstance(payload, tuple):
        inner = ", ".join(summarize_payload(item) for item in payload)
        return f"({inner})"
    if isinstance(payload, int):
        return f"integer ({payload.bit_length()} bits)"
    if isinstance(payload, bytes):
        return f"{len(payload)} bytes"
    if isinstance(payload, str):
        return f"string ({len(payload)} chars)"
    return type(payload).__name__


def _format_size(n_bytes: int) -> str:
    if n_bytes >= 1024:
        return f"{n_bytes / 1024:.1f} kB"
    return f"{n_bytes} B"


def render_view(view: View, arrow: str = "->") -> list[str]:
    """Render one party's received messages as lines."""
    lines = []
    for message in view.received:
        size = encoded_size(message.payload)
        lines.append(
            f"  {arrow} {view.party}   {message.step:<12s} "
            f"{summarize_payload(message.payload)} ({_format_size(size)})"
        )
    return lines


def render_run(run: ProtocolRun) -> str:
    """Render a two-party run as a text sequence diagram.

    Messages are interleaved in the order the steps were recorded
    (step labels are the paper's numbering, which sorts correctly
    within each protocol).
    """
    tagged: list[tuple[str, ReceivedMessage]] = []
    tagged.extend(("S", m) for m in run.s_view.received)
    tagged.extend(("R", m) for m in run.r_view.received)
    tagged.sort(key=lambda pair: pair[1].step)

    header = (
        f"protocol: {run.protocol} "
        f"({len(tagged)} messages, {_format_size(run.total_bytes)} total)"
    )
    lines = [header]
    for receiver, message in tagged:
        size = encoded_size(message.payload)
        if receiver == "S":
            arrow = "R ------------------------------> S"
        else:
            arrow = "R <------------------------------ S"
        lines.append(
            f"{arrow}   {message.step:<12s} "
            f"{summarize_payload(message.payload)} ({_format_size(size)})"
        )
    lines.append(
        f"traffic: R->S {_format_size(run.bytes_r_to_s)}, "
        f"S->R {_format_size(run.bytes_s_to_r)}"
    )
    return "\n".join(lines)
