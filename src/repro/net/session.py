"""Fault-tolerant protocol sessions over the framed transports.

The paper's Figure 1 delegates transport to "standard libraries or
packages for secure communication" and its Section 6 cost model
assumes a clean T1 link. This module supplies what a deployment needs
on top of that idealized channel:

* **checksummed frames** - every session frame carries a CRC32 seal
  over its encoded fields, so corruption is detected rather than
  decrypted into garbage;
* **sequence numbers + stop-and-wait retransmission** - each data
  frame is acknowledged; a lost or garbled frame is retransmitted
  after a configurable deadline with exponential backoff and jitter
  (:class:`RetryPolicy`);
* **a versioned handshake** extending the ``PublicParams`` exchange of
  :mod:`repro.net.tcp` with a protocol name, session id and both
  parties' sequence cursors;
* **resumable runs** - because every protocol is declared as a round
  schedule (:mod:`repro.protocols.spec`) interpreted by the generic
  party machines of :mod:`repro.protocols.parties`, a dropped
  connection resumes by replaying cached round outputs from the last
  acknowledged round instead of restarting the run. Rounds are
  computed once and their outputs logged, so a replay re-ships
  identical bytes (idempotence).

The protocols are strictly alternating, so stop-and-wait loses no
throughput; a data frame arriving while a sender waits for its ack is
an *implicit* ack (the peer can only have progressed past our frame).

Wire frames (every frame sealed with a trailing CRC32 of the encoded
preceding fields):

    ("hello",   version, protocol, session_id, next_send, next_recv, crc)
    ("welcome", version, protocol, session_id, params_wire, next_recv, crc)
    ("reject",  version, reason, crc)
    ("busy",    version, reason, crc)   # server at capacity or draining
    ("msg",     seq, payload_bytes, crc)
    ("ack",     seq, crc)
    ("nak",     seq, crc)           # seq -1: "last frame was garbled"
    ("fin",     session_id, crc)

Sessions optionally journal their round logs to disk
(:mod:`repro.net.journal`): pass ``journal=`` a
:class:`~repro.net.journal.SessionJournal` (or a
:class:`~repro.net.journal.JournalDir`, adopted lazily once the
session id is known) and every handshake fact and round payload is
made durable before the session acts on it, so a killed *process* can
be rebuilt to its exact resume cursor by
:func:`repro.net.journal.recover_sender_session` /
:func:`~repro.net.journal.recover_receiver_session`.

With ``chunk_size`` set, chunkable rounds travel as a sequence of
``("chunk", ...)`` data frames closed by a ``("chunk-end", n)`` frame
(:mod:`repro.net.serialization`), each individually sequenced,
acknowledged and journaled - so the resume cursor becomes
``(round, chunk)``-granular: a reconnect or a recovered process
restarts mid-round at the first chunk the peer lacks, and a round is
durable only once its closing frame is journaled. Chunk production is
double-buffered (:func:`repro.net.streaming.prefetch`): the crypto for
chunk ``k+1`` overlaps the acknowledged send of chunk ``k``.
"""

from __future__ import annotations

import random
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from . import serialization
from .channel import ChannelClosed
from .chaos import crash_point
from .streaming import TimedIterator, prefetch

__all__ = [
    "SESSION_VERSION",
    "SessionError",
    "HandshakeError",
    "ServerBusyError",
    "WorkerLost",
    "SessionAborted",
    "RetryPolicy",
    "ClientRetryPolicy",
    "SessionConfig",
    "SessionStats",
    "SessionEndpoint",
    "SenderSession",
    "ReceiverSession",
    "busy_backoff_s",
    "refusal_retry_hint_s",
    "seal",
    "unseal",
]

SESSION_VERSION = 1

#: Transport-level events a reconnect can recover from.
_TRANSIENT = (ConnectionError, TimeoutError, OSError, ChannelClosed)


class SessionError(Exception):
    """A session-layer failure (retries exhausted, protocol violation)."""


class HandshakeError(SessionError):
    """A non-retryable handshake failure (version/protocol mismatch)."""


class ServerBusyError(HandshakeError):
    """The server refused a new session: at capacity or draining.

    Raised client-side on receipt of a typed ``busy`` frame, so a
    rejected client fails fast instead of hanging in reconnect loops.
    ``retry_after_s`` carries the server's optional retry hint (the
    busy frame's fourth field), ``None`` when the server sent none.
    """

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class WorkerLost(SessionError):
    """The server lost the worker that owned this session mid-run.

    Raised client-side on receipt of a typed ``worker-lost`` frame -
    the sharded front end's translation of a worker crash (the busy
    wire shape under a different tag). Unlike :class:`HandshakeError`
    it is *retryable*: the supervisor respawns the worker against the
    same journal directory, so a reconnect resumes the session where
    it stopped. ``retry_after_s`` carries the front end's respawn
    hint, ``None`` when the frame had none.
    """

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SessionAborted(SessionError):
    """The session was administratively aborted (deadline, idle reaper,
    or a drain timeout) and must not be retried on this server."""


def seal(*fields: Any) -> tuple:
    """A session frame: the fields plus a CRC32 over their encoding."""
    return (*fields, zlib.crc32(serialization.encode(list(fields))))


def unseal(frame: Any) -> tuple:
    """Validate a sealed frame; return its fields.

    Raises:
        ValueError: when the frame is not a sealed tuple or its
            checksum does not match (i.e. it was corrupted in flight).
    """
    if not isinstance(frame, tuple) or len(frame) < 2:
        raise ValueError(f"malformed session frame: {type(frame).__name__}")
    *fields, crc = frame
    if not isinstance(crc, int):
        raise ValueError("malformed session frame: non-integer seal")
    try:
        expected = zlib.crc32(serialization.encode(list(fields)))
    except TypeError as exc:
        raise ValueError(f"malformed session frame: {exc}") from exc
    if crc != expected:
        raise ValueError("session frame failed its checksum")
    if not fields or not isinstance(fields[0], str):
        raise ValueError("malformed session frame: missing tag")
    return tuple(fields)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for retransmits and reconnects."""

    max_attempts: int = 5
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.base_delay_s * self.multiplier ** attempt, self.max_delay_s
        )
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


def busy_backoff_s(
    retry_after_s: float | None,
    rng: random.Random,
    *,
    fallback_s: float = 0.5,
    jitter: float = 0.5,
) -> float:
    """How long a busy-refused client should sleep before redialing.

    The server's ``retry_after_s`` hint (or ``fallback_s`` when the
    busy frame carried none) is stretched by up to ``jitter`` of
    itself: ``base * (1 + jitter * rng.random())``. Jitter is *added*,
    never subtracted - retrying before the server's own hint elapses
    would land inside the very window it said it was busy for - and it
    de-synchronizes the herd of clients a draining or saturated server
    just refused in one burst, so they do not all redial in lockstep.
    """
    base = max(retry_after_s if retry_after_s is not None else fallback_s, 0.0)
    return base * (1.0 + jitter * rng.random())


def refusal_retry_hint_s(fields: tuple) -> float | None:
    """The retry hint of a busy-shaped refusal frame, in seconds.

    Busy and worker-lost frames optionally carry the server's hint as
    a fourth field in integer milliseconds (the wire format has no
    floats). Returns ``None`` for a three-field frame or a malformed
    hint, mirroring how old clients simply ignore the extra field.
    """
    hint_ms = fields[3] if len(fields) == 4 else None
    if (
        isinstance(hint_ms, int)
        and not isinstance(hint_ms, bool)
        and hint_ms >= 0
    ):
        return hint_ms / 1000.0
    return None


@dataclass(frozen=True)
class SessionConfig:
    """Deadlines and retry limits for one session."""

    timeout_s: float = 5.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_reconnects: int = 8
    fin_grace_s: float = 0.25


@dataclass(frozen=True)
class ClientRetryPolicy:
    """One client-side answer to every typed refusal a server can send.

    Where :class:`RetryPolicy` paces *frame* retransmits inside a live
    connection, this policy governs the whole client run: how many
    times to redial, how long each attempt may block, the total wall
    budget across attempts, and which typed failures are worth
    retrying at all. It subsumes the older ad-hoc ``retry_busy``
    counter: a busy refusal and a ``worker-lost`` notice both become
    "sleep (honoring the server's hint), then redial", bounded by the
    same attempt and deadline budgets.

    Attributes:
        max_attempts: total dial attempts (also the derived session
            config's ``max_reconnects``); the first attempt counts.
        attempt_timeout_s: per-attempt frame deadline (the derived
            session config's ``timeout_s``).
        total_deadline_s: wall budget across all attempts and backoff
            sleeps; ``None`` means unbounded.
        base_delay_s / multiplier / max_delay_s / jitter: the jittered
            exponential backoff between attempts.
        retry_busy: whether a typed busy refusal is retried.
        retry_worker_lost: whether a typed worker-lost notice is
            retried (reconnect-and-resume lands on the respawned
            worker holding the same journal).
    """

    max_attempts: int = 8
    attempt_timeout_s: float = 5.0
    total_deadline_s: float | None = None
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    retry_busy: bool = True
    retry_worker_lost: bool = True

    #: ``parse`` key → (field name, converter). Module-level constants
    #: would do, but keeping it on the class documents the spec format
    #: next to the fields it maps onto.
    _PARSE_KEYS = {
        "attempts": ("max_attempts", int),
        "timeout": ("attempt_timeout_s", float),
        "deadline": ("total_deadline_s", float),
        "base": ("base_delay_s", float),
        "multiplier": ("multiplier", float),
        "max-delay": ("max_delay_s", float),
        "jitter": ("jitter", float),
        "busy": ("retry_busy", None),
        "worker-lost": ("retry_worker_lost", None),
    }

    @classmethod
    def parse(cls, spec: str) -> "ClientRetryPolicy":
        """Build a policy from a ``key=value,key=value`` CLI spec.

        Keys: ``attempts``, ``timeout``, ``deadline``, ``base``,
        ``multiplier``, ``max-delay``, ``jitter`` (numbers) and
        ``busy``, ``worker-lost`` (``yes``/``no``). Unknown keys and
        unparsable values raise ``ValueError``.
        """
        kwargs: dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"retry-policy item {part!r} is not key=value")
            try:
                field_name, conv = cls._PARSE_KEYS[key]
            except KeyError:
                raise ValueError(
                    f"unknown retry-policy key {key!r} "
                    f"(expected one of {sorted(cls._PARSE_KEYS)})"
                ) from None
            if conv is None:
                lowered = value.strip().lower()
                if lowered not in ("yes", "no", "true", "false", "1", "0"):
                    raise ValueError(
                        f"retry-policy {key}= wants yes/no, got {value!r}"
                    )
                kwargs[field_name] = lowered in ("yes", "true", "1")
            else:
                try:
                    kwargs[field_name] = conv(value)
                except ValueError:
                    raise ValueError(
                        f"retry-policy {key}= wants a number, got {value!r}"
                    ) from None
        return cls(**kwargs)

    def retryable(self, exc: BaseException) -> bool:
        """Whether this typed failure is worth another attempt."""
        if isinstance(exc, ServerBusyError):
            return self.retry_busy
        if isinstance(exc, WorkerLost):
            return self.retry_worker_lost
        return False

    def backoff_s(
        self,
        attempt: int,
        rng: random.Random,
        hint_s: float | None = None,
    ) -> float:
        """Sleep before retry ``attempt`` (0-based), honoring hints.

        With a server hint the sleep never lands *before* the hint
        (that would redial inside the very window the server declared
        itself unavailable for) and jitter stretches it upward to
        de-synchronize a refused herd. Without one it is the ordinary
        jittered exponential.
        """
        raw = min(self.base_delay_s * self.multiplier ** attempt,
                  self.max_delay_s)
        if hint_s is not None:
            return max(raw, hint_s) * (1.0 + self.jitter * rng.random())
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw

    def session_config(self, **overrides: Any) -> SessionConfig:
        """The :class:`SessionConfig` this policy implies.

        The per-attempt timeout becomes the frame deadline and
        ``max_attempts`` bounds the session's reconnect loop, so the
        in-session reconnect behavior and the out-of-session redial
        behavior answer to the same knobs.
        """
        kwargs: dict[str, Any] = dict(
            timeout_s=self.attempt_timeout_s,
            retry=RetryPolicy(
                base_delay_s=self.base_delay_s,
                multiplier=self.multiplier,
                max_delay_s=self.max_delay_s,
                jitter=self.jitter,
            ),
            max_reconnects=self.max_attempts,
        )
        kwargs.update(overrides)
        return SessionConfig(**kwargs)


@dataclass
class SessionStats:
    """Observability counters, ``ProtocolRun``-style, for one session."""

    protocol: str = ""
    frames_sent: int = 0
    frames_received: int = 0
    retransmits: int = 0
    implicit_acks: int = 0
    duplicates_discarded: int = 0
    checksum_failures: int = 0
    malformed_frames: int = 0
    naks_sent: int = 0
    reconnects: int = 0
    worker_lost: int = 0
    replayed_frames: int = 0
    chunks_sent: int = 0
    chunks_received: int = 0
    rounds_computed: int = 0
    rounds_resumed: int = 0
    rounds_recovered: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: float | None = None

    def finish(self) -> None:
        """Freeze the elapsed-time clock."""
        self.finished_at = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.perf_counter()
        )
        return end - self.started_at

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping for JSON benchmark records."""
        return {
            "protocol": self.protocol,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "retransmits": self.retransmits,
            "implicit_acks": self.implicit_acks,
            "duplicates_discarded": self.duplicates_discarded,
            "checksum_failures": self.checksum_failures,
            "malformed_frames": self.malformed_frames,
            "naks_sent": self.naks_sent,
            "reconnects": self.reconnects,
            "worker_lost": self.worker_lost,
            "replayed_frames": self.replayed_frames,
            "chunks_sent": self.chunks_sent,
            "chunks_received": self.chunks_received,
            "rounds_computed": self.rounds_computed,
            "rounds_resumed": self.rounds_resumed,
            "rounds_recovered": self.rounds_recovered,
            "elapsed_s": self.elapsed_s,
        }


class SessionEndpoint:
    """Reliable, checksummed stop-and-wait messaging on one connection.

    Wraps any framed transport (``send``/``recv``/optional
    ``settimeout``). Sequence cursors can be seeded from a session log
    so a reconnected endpoint continues where the last one died.
    """

    def __init__(
        self,
        transport: Any,
        config: SessionConfig,
        stats: SessionStats,
        rng: random.Random,
        send_seq: int = 0,
        recv_seq: int = 0,
    ):
        self.transport = transport
        self.config = config
        self.stats = stats
        self.rng = rng
        self.send_seq = send_seq
        self.recv_seq = recv_seq
        self.fin_seen = False
        #: Server hook: re-send the welcome when a retransmitted hello
        #: arrives (the client missed our first welcome).
        self.on_hello: Callable[[], None] | None = None
        self._inbox: deque[tuple] = deque()

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _read_frame(self, timeout: float) -> tuple:
        """One unsealed frame, or raise the transport's failure."""
        settimeout = getattr(self.transport, "settimeout", None)
        if settimeout is not None:
            settimeout(max(timeout, 1e-3))
        return unseal(self.transport.recv())

    def _send_control(self, *fields: Any) -> None:
        self.transport.send(seal(*fields))

    def _raise_worker_lost(self, frame: tuple) -> None:
        """A routed front end lost our worker: fail typed, retryable."""
        self.stats.worker_lost += 1
        raise WorkerLost(
            f"server lost the session's worker: {frame[2]!r}",
            retry_after_s=refusal_retry_hint_s(frame),
        )

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any) -> None:
        """Ship one data frame reliably; advances the send cursor."""
        seq = self.send_seq
        self._transmit_until_acked(seq, payload)
        self.send_seq = seq + 1

    def _transmit_until_acked(self, seq: int, payload: Any) -> None:
        wire = serialization.encode(payload)
        retry = self.config.retry
        for attempt in range(retry.max_attempts):
            if attempt:
                self.stats.retransmits += 1
                time.sleep(retry.delay_s(attempt - 1, self.rng))
            self.transport.send(seal("msg", seq, wire))
            self.stats.frames_sent += 1
            if self._wait_ack(seq):
                return
        raise SessionError(
            f"frame {seq} unacknowledged after {retry.max_attempts} attempts"
        )

    def _wait_ack(self, seq: int) -> bool:
        deadline = time.monotonic() + self.config.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                frame = self._read_frame(remaining)
            except (TimeoutError, ChannelClosed):
                return False
            except ValueError:
                self.stats.checksum_failures += 1
                continue
            tag = frame[0]
            if tag == "ack" and len(frame) == 2:
                if frame[1] == seq:
                    return True
                continue  # stale ack from a replayed frame
            if tag == "nak" and len(frame) == 2:
                if frame[1] in (seq, -1):
                    return False  # peer asked for a retransmit
                continue
            if tag == "msg":
                # The peer only sends data after receiving everything
                # we sent: buffer the frame and treat it as an ack.
                self._inbox.append(frame)
                self.stats.implicit_acks += 1
                return True
            if tag == "fin":
                self.fin_seen = True
                return True  # a finished peer has everything
            if tag == "worker-lost" and len(frame) in (3, 4):
                self._raise_worker_lost(frame)
            if tag == "hello" and self.on_hello is not None:
                self.on_hello()
            continue  # unknown tag: ignore

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def recv(self) -> Any:
        """One in-order data payload; acks, de-dups and naks en route."""
        config = self.config
        deadline = (
            time.monotonic() + config.timeout_s * config.retry.max_attempts
        )
        while True:
            if self._inbox:
                frame = self._inbox.popleft()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SessionError(
                        f"timed out waiting for frame {self.recv_seq}"
                    )
                try:
                    frame = self._read_frame(
                        min(remaining, config.timeout_s)
                    )
                except (TimeoutError, ChannelClosed):
                    continue
                except ValueError:
                    # Can't attribute a sequence number to a garbled
                    # frame; nak "whatever you last sent".
                    self.stats.checksum_failures += 1
                    self.stats.naks_sent += 1
                    self._send_control("nak", -1)
                    continue
            tag = frame[0]
            if tag == "fin":
                self.fin_seen = True
                continue
            if tag == "worker-lost" and len(frame) in (3, 4):
                self._raise_worker_lost(frame)
            if tag == "hello" and self.on_hello is not None:
                self.on_hello()
                continue
            if tag != "msg" or len(frame) != 3:
                continue  # stray ack/nak
            _, seq, wire = frame
            if not isinstance(seq, int) or not isinstance(wire, bytes):
                self.stats.malformed_frames += 1
                continue
            if seq == self.recv_seq:
                self._send_control("ack", seq)
                self.recv_seq += 1
                self.stats.frames_received += 1
                try:
                    return serialization.decode(wire)
                except ValueError as exc:
                    raise SessionError(
                        f"frame {seq} passed its checksum but failed to "
                        f"decode: {exc}"
                    ) from exc
            if seq < self.recv_seq:
                self.stats.duplicates_discarded += 1
                self._send_control("ack", seq)  # our earlier ack was lost
                continue
            raise SessionError(
                f"out-of-order frame {seq} (expected {self.recv_seq})"
            )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def fin(self, session_id: int) -> None:
        """Best-effort goodbye so the peer can stop waiting for acks."""
        try:
            self._send_control("fin", session_id)
        except _TRANSIENT:
            pass

    def fin_wait(self, session_id: int) -> bool:
        """Send a fin and wait for the peer's fin echo.

        The final data ack and the fin itself can both be lost; a peer
        that never hears either keeps retransmitting into a vanished
        client and must eventually give up. So the finishing side
        lingers here: it re-sends the fin with backoff, re-acks any
        retransmitted data frame it sees meanwhile, and leaves once the
        peer echoes the fin (or closes, or the retry budget is spent).
        Returns whether the echo arrived.
        """
        retry = self.config.retry
        for attempt in range(retry.max_attempts):
            if attempt:
                time.sleep(retry.delay_s(attempt - 1, self.rng))
            try:
                self._send_control("fin", session_id)
            except _TRANSIENT:
                return False
            deadline = time.monotonic() + self.config.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # resend the fin
                try:
                    frame = self._read_frame(remaining)
                except TimeoutError:
                    break
                except _TRANSIENT:
                    return False  # peer already hung up: it is done
                except ValueError:
                    continue
                if frame[0] == "fin":
                    self.fin_seen = True
                    return True
                if frame[0] == "msg" and len(frame) == 3:
                    seq = frame[1]
                    if isinstance(seq, int) and seq < self.recv_seq:
                        self.stats.duplicates_discarded += 1
                        try:
                            self._send_control("ack", seq)
                        except _TRANSIENT:
                            return False
        return False

    def await_fin(self, grace_s: float) -> bool:
        """Absorb frames until a fin arrives or the grace period ends.

        Re-acks duplicates meanwhile so a peer whose final ack was lost
        can still complete. Returns whether a fin was seen.
        """
        deadline = time.monotonic() + grace_s
        while not self.fin_seen:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                frame = self._read_frame(remaining)
            except _TRANSIENT:
                break
            except ValueError:
                continue
            if frame[0] == "fin":
                self.fin_seen = True
            elif frame[0] == "msg" and len(frame) == 3:
                seq = frame[1]
                if isinstance(seq, int) and seq < self.recv_seq:
                    self.stats.duplicates_discarded += 1
                    try:
                        self._send_control("ack", seq)
                    except _TRANSIENT:
                        break
        return self.fin_seen


def _close_quietly(transport: Any) -> None:
    close = getattr(transport, "close", None)
    if close is not None:
        try:
            close()
        except OSError:
            pass


def _split_journal(journal: Any) -> tuple[Any, Any]:
    """Normalize a ``journal=`` argument to ``(open journal, lazy dir)``.

    Accepts ``None``, an open :class:`~repro.net.journal.SessionJournal`
    (recovery and the supervised server pass one), or a
    :class:`~repro.net.journal.JournalDir` to open a per-session file
    from once the session id is known.
    """
    if journal is None:
        return None, None
    from .journal import JournalDir, SessionJournal

    if isinstance(journal, JournalDir):
        return None, journal
    if isinstance(journal, SessionJournal):
        return journal, None
    raise TypeError(
        f"journal= takes a SessionJournal or JournalDir, "
        f"not {type(journal).__name__}"
    )


class _RoundLog:
    """Frame-granular round log shared by both session roles.

    Frames (whole-round payloads, or chunk/chunk-end frames when
    ``chunk_size`` streams a round) live in the flat ``_inbound`` /
    ``_outbound`` lists; ``_in_rounds`` / ``_out_rounds`` hold the
    cumulative frame count at each completed round boundary. That is
    what makes the resume cursor chunk-granular: a reconnect or a
    recovered process restarts mid-round at the first frame the peer
    lacks, and a round is only *complete* once its closing frame is
    logged. With ``chunk_size=None`` every round is exactly one frame
    and the log degenerates to the original round-granular one.
    """

    #: Legacy receiver semantics: count a resumed round per replayed
    #: frame. The sender instead counts one resume per reconnect.
    _resumed_per_replay = False

    def _append_outbound(self, frame: Any) -> None:
        """Cache and journal one outgoing frame before it can be sent."""
        self._outbound.append(frame)
        if self.journal is not None:
            self.journal.record_outbound(
                len(self._outbound) - 1, serialization.encode(frame)
            )

    def _rotate_quietly(self) -> None:
        """Rotate the completed journal; tolerate a failed rename.

        The completion record is already durable, so a rotation failure
        loses nothing: the ``*.wal`` still classifies as complete and
        the next directory scan (or server hello) rotates it. The
        failure stays visible in the journal's ``rotate_failures``.
        """
        from .journal import JournalError

        try:
            self.journal.rotate()
        except JournalError:
            pass

    def _ship(self, endpoint: SessionEndpoint, bound: int) -> None:
        """Send, in order, every cached frame below ``bound`` the peer
        has not acknowledged."""
        while endpoint.send_seq < bound:
            seq = endpoint.send_seq
            if seq in self._attempted_sends:
                self.stats.replayed_frames += 1
                if self._resumed_per_replay:
                    self.stats.rounds_resumed += 1
            self._attempted_sends.add(seq)
            frame = self._outbound[seq]
            if serialization.is_chunk_frame(frame):
                self.stats.chunks_sent += 1
            crash_point("session.ship.frame")
            endpoint.send(frame)

    def _produce_round(
        self, endpoint: SessionEndpoint, machine: Any, rnd: Any, index: int
    ) -> None:
        """Compute (if new), journal and ship outbound round ``index``."""
        if index >= len(self._out_rounds):
            if (
                self.chunk_size is not None
                and rnd.chunkable
                and rnd.chunk_step is not None
            ):
                self._produce_streaming(endpoint, machine, rnd)
            else:
                self._produce_whole(machine, rnd)
            self._out_rounds.append(len(self._outbound))
            self._pending_frames = None
            self.stats.rounds_computed += 1
        self._ship(endpoint, self._out_rounds[index])

    def _produce_whole(self, machine: Any, rnd: Any) -> None:
        """Compute a full round, then journal all its frames.

        Used for unchunked rounds and for chunked rounds without an
        incremental ``chunk_step`` - whose ``step`` may consume rng, so
        it must run exactly once per process. ``_pending_frames`` keeps
        the computed frames across an in-process retry of the journal
        appends (a failed append must not recompute the round).
        """
        if self._pending_frames is None:
            if self.chunk_size is not None and rnd.chunkable:
                payloads = list(machine.produce_chunks(rnd, self.chunk_size))
                frames: list = [
                    serialization.chunk_frame(i, p)
                    for i, p in enumerate(payloads)
                ]
                frames.append(serialization.chunk_end_frame(len(payloads)))
            else:
                frames = [machine.produce(rnd).to_wire()]
            self._pending_frames = frames
        base = self._out_rounds[-1] if self._out_rounds else 0
        for frame in self._pending_frames[len(self._outbound) - base :]:
            self._append_outbound(frame)

    def _produce_streaming(
        self, endpoint: SessionEndpoint, machine: Any, rnd: Any
    ) -> None:
        """Stream a round: journal and ship it chunk by chunk.

        The chunk producer is rng-free and deterministic, so an
        in-process retry recomputes the stream and skips the frames
        already journaled. Production runs ahead on the prefetch
        thread, overlapping chunk ``k+1``'s crypto with chunk ``k``'s
        acknowledged send; the recorder (if any) gets the round's
        produce/send/wall split for the pipeline-overlap report.
        """
        base = self._out_rounds[-1] if self._out_rounds else 0
        already = len(self._outbound) - base
        wall_start = time.perf_counter()
        send_s = 0.0
        timed = TimedIterator(machine.produce_chunks(rnd, self.chunk_size))
        source = prefetch(timed)
        count = 0
        try:
            for payload in source:
                if count >= already:
                    self._append_outbound(
                        serialization.chunk_frame(count, payload)
                    )
                    begin = time.perf_counter()
                    self._ship(endpoint, len(self._outbound))
                    send_s += time.perf_counter() - begin
                count += 1
        finally:
            source.close()
        if already <= count:
            self._append_outbound(serialization.chunk_end_frame(count))
        if self.recorder is not None:
            self.recorder.add_pipeline(
                f"{machine.role}.{rnd.name}",
                produce_s=timed.elapsed_s,
                send_s=send_s,
                wall_s=time.perf_counter() - wall_start,
                chunks=count,
            )

    def _recv_round(
        self, endpoint: SessionEndpoint, machine: Any, rnd: Any, index: int
    ) -> None:
        """Receive (if incomplete) and consume inbound round ``index``.

        Frames a recovered process already journaled are folded first,
        so receiving continues mid-round at the first missing chunk;
        every new frame is journaled before the round can complete.
        """
        if index < len(self._in_rounds):
            return
        start = self._in_rounds[-1] if self._in_rounds else 0
        while True:
            status, payload, _used = serialization.fold_chunk_frames(
                self._inbound[start:]
            )
            if status != "partial":
                break
            with machine.wait(rnd):
                frame = endpoint.recv()
            self._inbound.append(frame)
            if serialization.is_chunk_frame(frame):
                self.stats.chunks_received += 1
            if self.journal is not None:
                self.journal.record_inbound(
                    len(self._inbound) - 1, serialization.encode(frame)
                )
            crash_point("session.recv.frame")
        if status == "single":
            machine.consume(rnd, payload)
        else:
            machine.consume_chunks(rnd, payload)
        self._in_rounds.append(len(self._inbound))


class SenderSession(_RoundLog):
    """Party S's resumable run: accept, hand-shake, serve, survive.

    The round log (inbound payloads received, outbound payloads
    computed) lives here, *outside* any single connection, which is
    what makes a mid-run disconnect recoverable: a reconnecting client
    announces its receive cursor and the session replays exactly the
    cached frames it is missing. The rounds themselves come from the
    protocol's registered spec (:mod:`repro.protocols.spec`), walked by
    a :class:`~repro.protocols.parties.SenderMachine` that persists
    across reconnects.
    """

    def __init__(
        self,
        protocol: str,
        params: Any,
        make_sender: Callable[[], Any],
        config: SessionConfig | None = None,
        rng: random.Random | None = None,
        recorder: Any = None,
        journal: Any = None,
        chunk_size: int | None = None,
    ):
        from ..protocols.spec import get_spec

        self.protocol = protocol
        self.spec = get_spec(protocol)
        self.params = params
        self.config = config or SessionConfig()
        self.rng = rng or random.Random(0)
        self.stats = SessionStats(protocol=protocol)
        self.recorder = recorder
        self.chunk_size = chunk_size
        self._make_sender = make_sender
        self._machine: Any = None
        self._session_id: int | None = None
        self._inbound: list[Any] = []
        self._outbound: list[Any] = []
        self._in_rounds: list[int] = []
        self._out_rounds: list[int] = []
        self._pending_frames: list[Any] | None = None
        self._attempted_sends: set[int] = set()
        self._complete = False
        self.journal, self._journal_dir = _split_journal(journal)

    def _attach_journal(self) -> None:
        """Adopt a per-session journal once the session id is known.

        Only relevant when constructed with a
        :class:`~repro.net.journal.JournalDir`: the sender learns its
        session id from the first hello, so the journal file (named by
        that id) cannot exist before the handshake.
        """
        if self.journal is not None or self._journal_dir is None:
            return
        from .journal import JournalError

        journal = self._journal_dir.open_session(
            "sender", self.protocol, self._session_id
        )
        if any(r[0] in ("in", "out", "done") for r in journal.records):
            raise JournalError(
                f"{journal.path}: a previous run already journaled rounds "
                "for this session - recover it instead of restarting it"
            )
        if self.chunk_size is not None:
            journal.record_meta("chunk_size", self.chunk_size)
        self.journal = journal

    def _ensure_machine(self) -> Any:
        if self._machine is None:
            from ..protocols.parties import SenderMachine

            self._machine = SenderMachine.from_factory(
                self.spec, self._make_sender, self.recorder
            )
        return self._machine

    def run(self, accept: Callable[[], Any]) -> Any:
        """Serve the run to completion; returns the sender party state.

        ``accept()`` must block until the next client connection and
        return a framed transport for it (raising ``TimeoutError`` when
        none arrives within its own deadline).
        """
        failures = 0
        while True:
            transport = None
            try:
                transport = accept()
                endpoint, client_next_recv = self._handshake(transport)
                result = self._script(endpoint, client_next_recv)
                self.stats.finish()
                return result
            except (HandshakeError, SessionAborted):
                raise
            except (SessionError, ValueError, *_TRANSIENT) as exc:
                if self._complete:
                    self.stats.finish()
                    return self._machine.state
                failures += 1
                self.stats.reconnects += 1
                if failures > self.config.max_reconnects:
                    raise SessionError(
                        f"sender session gave up after {failures} failed "
                        f"connections: {exc}"
                    ) from exc
            finally:
                if transport is not None:
                    _close_quietly(transport)

    def _read_hello(self, transport: Any) -> tuple:
        """Wait for a valid hello, absorbing garbled or stray frames."""
        config = self.config
        deadline = (
            time.monotonic() + config.timeout_s * config.retry.max_attempts
        )
        settimeout = getattr(transport, "settimeout", None)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SessionError("no valid hello before the deadline")
            if settimeout is not None:
                settimeout(max(min(remaining, config.timeout_s), 1e-3))
            try:
                fields = unseal(transport.recv())
            except TimeoutError:
                continue
            except ValueError:
                self.stats.checksum_failures += 1
                continue
            if fields[0] == "hello" and len(fields) == 6:
                return fields
            # Stray frame from the previous connection's tail: ignore.

    def _handshake(self, transport: Any) -> tuple[SessionEndpoint, int]:
        fields = self._read_hello(transport)
        _, version, protocol, session_id, _next_send, next_recv = fields
        if version != SESSION_VERSION:
            self._reject(transport, f"unsupported session version {version}")
            raise HandshakeError(
                f"client speaks session version {version}, "
                f"this server speaks {SESSION_VERSION}"
            )
        if protocol != self.protocol:
            self._reject(transport, f"protocol mismatch: serving {self.protocol}")
            raise HandshakeError(
                f"client asked for {protocol!r}, serving {self.protocol!r}"
            )
        if self._session_id is None:
            self._session_id = session_id
            self._attach_journal()
        elif session_id != self._session_id:
            self._reject(transport, "unknown session id")
            raise SessionError(f"unknown session id {session_id}")
        if not isinstance(next_recv, int) or not 0 <= next_recv <= len(
            self._outbound
        ):
            raise SessionError(f"implausible client cursor {next_recv!r}")
        welcome = seal(
            "welcome",
            SESSION_VERSION,
            self.protocol,
            self._session_id,
            tuple(self.params.to_wire()),
            len(self._inbound),
        )
        transport.send(welcome)
        endpoint = SessionEndpoint(
            transport,
            self.config,
            self.stats,
            self.rng,
            send_seq=next_recv,
            recv_seq=len(self._inbound),
        )
        # A lost welcome comes back as a retransmitted hello: answer
        # with the same welcome instead of tearing the connection down.
        endpoint.on_hello = lambda: transport.send(welcome)
        return endpoint, next_recv

    def _reject(self, transport: Any, reason: str) -> None:
        try:
            transport.send(seal("reject", SESSION_VERSION, reason))
        except _TRANSIENT:
            pass

    def _script(self, endpoint: SessionEndpoint, client_next_recv: int) -> Any:
        machine = self._ensure_machine()
        if client_next_recv < len(self._outbound):
            # A reconnected client served from the cached frame log.
            self.stats.rounds_resumed += 1
        received = produced = 0
        for rnd in self.spec.rounds:
            if rnd.source == "R":
                self._recv_round(endpoint, machine, rnd, received)
                received += 1
            else:
                self._produce_round(endpoint, machine, rnd, produced)
                produced += 1
        self._complete = True
        if self.journal is not None:
            if not self.journal.complete:
                self.journal.record_complete()
            self._rotate_quietly()
        if endpoint.await_fin(self.config.fin_grace_s):
            # Echo the fin so the lingering client can leave promptly.
            endpoint.fin(self._session_id)
        return machine.state


class ReceiverSession(_RoundLog):
    """Party R's resumable run: connect, hand-shake, drive, reconnect.

    Like :class:`SenderSession`, R walks the protocol's registered
    round schedule with a persistent
    :class:`~repro.protocols.parties.ReceiverMachine` and caches every
    round payload, so a reconnect resumes mid-schedule instead of
    restarting the run.
    """

    def __init__(
        self,
        protocol: str,
        make_receiver: Callable[[Any], Any],
        config: SessionConfig | None = None,
        rng: random.Random | None = None,
        session_id: int | None = None,
        recorder: Any = None,
        journal: Any = None,
        chunk_size: int | None = None,
    ):
        from ..protocols.spec import get_spec

        self.protocol = protocol
        self.spec = get_spec(protocol)
        self.config = config or SessionConfig()
        self.rng = rng or random.Random()
        self.stats = SessionStats(protocol=protocol)
        self.recorder = recorder
        self.chunk_size = chunk_size
        self.session_id = (
            session_id if session_id is not None else self.rng.getrandbits(63)
        )
        self._make_receiver = make_receiver
        self._machine: Any = None
        self._params_wire: tuple | None = None
        self._inbound: list[Any] = []
        self._outbound: list[Any] = []
        self._in_rounds: list[int] = []
        self._out_rounds: list[int] = []
        self._pending_frames: list[Any] | None = None
        self._attempted_sends: set[int] = set()
        self.journal, journal_dir = _split_journal(journal)
        if journal_dir is not None:
            # R picks its session id up front, so the per-session file
            # can be adopted immediately (unlike the sender's lazy path).
            from .journal import JournalError

            opened = journal_dir.open_session(
                "receiver", self.protocol, self.session_id
            )
            if any(r[0] in ("in", "out", "done") for r in opened.records):
                raise JournalError(
                    f"{opened.path}: a previous run already journaled "
                    "rounds for this session - recover it instead"
                )
            if self.chunk_size is not None:
                opened.record_meta("chunk_size", self.chunk_size)
            self.journal = opened

    def _ensure_machine(self) -> Any:
        if self._machine is None:
            from ..protocols.parties import ReceiverMachine

            self._machine = ReceiverMachine.from_factory(
                self.spec,
                lambda: self._make_receiver(self._params_wire),
                self.recorder,
            )
        return self._machine

    def run(self, connect: Callable[[], Any]) -> Any:
        """Drive the run to completion; returns the protocol answer.

        ``connect()`` must dial the server and return a framed
        transport; it is re-invoked after every transient failure, up
        to ``config.max_reconnects`` times.
        """
        failures = 0
        while True:
            transport = None
            try:
                transport = connect()
                endpoint = self._handshake(transport)
                answer = self._script(endpoint)
                endpoint.fin_wait(self.session_id)
                self.stats.finish()
                return answer
            except (HandshakeError, SessionAborted):
                raise
            except (SessionError, ValueError, *_TRANSIENT) as exc:
                failures += 1
                self.stats.reconnects += 1
                if failures > self.config.max_reconnects:
                    raise SessionError(
                        f"receiver session gave up after {failures} failed "
                        f"connections: {exc}"
                    ) from exc
                delay = self.config.retry.delay_s(failures - 1, self.rng)
                hint = getattr(exc, "retry_after_s", None)
                if hint is not None:
                    # A worker-lost notice names its respawn window;
                    # redialing earlier just burns a reconnect.
                    delay = max(delay, busy_backoff_s(hint, self.rng))
                time.sleep(delay)
            finally:
                if transport is not None:
                    _close_quietly(transport)

    def _await_welcome(self, transport: Any, hello: tuple) -> tuple:
        """Send the hello; retransmit it until a welcome (or reject)."""
        config = self.config
        settimeout = getattr(transport, "settimeout", None)
        for attempt in range(config.retry.max_attempts):
            if attempt:
                self.stats.retransmits += 1
            transport.send(hello)
            deadline = time.monotonic() + config.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # resend the hello
                if settimeout is not None:
                    settimeout(max(remaining, 1e-3))
                try:
                    fields = unseal(transport.recv())
                except TimeoutError:
                    break
                except ValueError:
                    self.stats.checksum_failures += 1
                    continue
                if fields[0] == "busy" and len(fields) in (3, 4):
                    # Optional 4th field: retry hint in integer ms.
                    raise ServerBusyError(
                        f"server refused the session: {fields[2]!r}",
                        retry_after_s=refusal_retry_hint_s(fields),
                    )
                if fields[0] == "worker-lost" and len(fields) in (3, 4):
                    # The shard front end answered for a dead worker:
                    # retryable - the supervisor is respawning it.
                    self.stats.worker_lost += 1
                    raise WorkerLost(
                        f"server lost the session's worker: {fields[2]!r}",
                        retry_after_s=refusal_retry_hint_s(fields),
                    )
                if fields[0] == "reject" and len(fields) == 3:
                    raise HandshakeError(
                        f"server rejected session: {fields[2]!r}"
                    )
                if fields[0] == "welcome" and len(fields) == 6:
                    return fields
                # Stray ack/data from the previous connection: ignore.
        raise SessionError(
            f"no welcome after {config.retry.max_attempts} hellos"
        )

    def _handshake(self, transport: Any) -> SessionEndpoint:
        next_recv = len(self._inbound)
        hello = seal(
            "hello",
            SESSION_VERSION,
            self.protocol,
            self.session_id,
            len(self._attempted_sends),
            next_recv,
        )
        fields = self._await_welcome(transport, hello)
        _, version, protocol, session_id, params_wire, server_next_recv = fields
        if version != SESSION_VERSION:
            raise HandshakeError(
                f"server speaks session version {version}, "
                f"this client speaks {SESSION_VERSION}"
            )
        if protocol != self.protocol:
            raise HandshakeError(
                f"server runs {protocol!r}, wanted {self.protocol!r}"
            )
        if session_id != self.session_id:
            raise SessionError(f"server answered for session {session_id}")
        if self._params_wire is None:
            self._params_wire = tuple(params_wire)
            if self.journal is not None:
                self.journal.record_meta("params", self._params_wire)
        elif tuple(params_wire) != self._params_wire:
            raise HandshakeError(
                "server changed public parameters across a resume"
            )
        if not isinstance(server_next_recv, int) or not (
            0 <= server_next_recv <= len(self._outbound)
        ):
            raise SessionError(
                f"implausible server cursor {server_next_recv!r}"
            )
        return SessionEndpoint(
            transport,
            self.config,
            self.stats,
            self.rng,
            send_seq=server_next_recv,
            recv_seq=next_recv,
        )

    #: Legacy stat semantics: R counts a resumed round per replayed frame.
    _resumed_per_replay = True

    def _script(self, endpoint: SessionEndpoint) -> Any:
        machine = self._ensure_machine()
        machine.ensure_state()
        sent = received = 0
        for rnd in self.spec.rounds:
            if rnd.source == "R":
                self._produce_round(endpoint, machine, rnd, sent)
                sent += 1
            else:
                self._recv_round(endpoint, machine, rnd, received)
                received += 1
        answer = machine.finish()
        if self.journal is not None:
            if not self.journal.complete:
                self.journal.record_complete()
            self._rotate_quietly()
        return answer
