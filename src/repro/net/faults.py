"""Deterministic fault injection for the framed transports.

The paper's cost model assumes an idealized, lossless channel; a
deployment does not get one. :class:`FaultyEndpoint` wraps any framed
endpoint - the in-memory :class:`~repro.net.channel.Endpoint` or the
TCP :class:`~repro.net.tcp.SocketEndpoint` - and injects *seeded,
reproducible* faults on the send path:

* **drop** - the frame silently never reaches the peer;
* **corrupt** - one leaf of the message (preferring payload bytes) is
  damaged before transmission, so checksums must catch it;
* **delay** - delivery is stalled by a configurable sleep;
* **disconnect** - the connection dies mid-frame (for sockets, half a
  frame is written first, so the peer observes a truncated read).

Every injected fault increments a per-class counter in
:class:`FaultStats`, which is how the chaos tests and the resilience
benchmark observe what actually happened. ``FaultPlan.max_faults``
caps the total injections so tests can script *exactly N* faults and
stay deterministic regardless of how many retries follow.
"""

from __future__ import annotations

import random
import struct
import time
from dataclasses import dataclass
from typing import Any, Callable

from . import serialization

__all__ = [
    "FaultPlan",
    "FaultStats",
    "FaultyEndpoint",
    "FaultInjector",
    "corrupt_message",
    "faulty_duplex_pair",
]

_LEN = struct.Struct(">I")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault probabilities for one direction of a connection.

    Rates are cumulative-exclusive per send (a single uniform draw
    decides: disconnect, else drop, else corrupt, else delay, else
    deliver cleanly), so their sum must stay at or below 1.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.01
    disconnect_rate: float = 0.0
    max_faults: int | None = None
    #: Deliver this many sends cleanly before faults arm - lets a test
    #: place a disconnect exactly mid-run (after a round completed).
    skip: int = 0

    def __post_init__(self) -> None:
        total = (
            self.drop_rate + self.corrupt_rate + self.delay_rate
            + self.disconnect_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates sum to {total}, must be in [0, 1]")


@dataclass
class FaultStats:
    """Per-fault-class counters (observability for tests and benches)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    disconnects: int = 0

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return self.dropped + self.corrupted + self.delayed + self.disconnects

    def as_dict(self) -> dict[str, int]:
        """Flat mapping for JSON benchmark records."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "disconnects": self.disconnects,
        }


def corrupt_message(message: Any, rng: random.Random) -> Any:
    """Damage exactly one leaf of a message, preferring payload bytes.

    Bytes leaves get one bit-flipped byte; int leaves one flipped bit;
    string leaves one swapped character. Messages with no mutable leaf
    become an unrecognizable marker frame.
    """
    paths: list[tuple[tuple[int, ...], Any]] = []

    def collect(obj: Any, path: tuple[int, ...]) -> None:
        if isinstance(obj, (list, tuple)):
            for i, item in enumerate(obj):
                collect(item, path + (i,))
        elif isinstance(obj, bytes) and obj:
            paths.append((path, obj))
        elif isinstance(obj, str) and obj:
            paths.append((path, obj))
        elif isinstance(obj, int) and not isinstance(obj, bool):
            paths.append((path, obj))

    collect(message, ())
    if not paths:
        return ("?garbled?",)
    byte_paths = [p for p in paths if isinstance(p[1], bytes)]
    pool = byte_paths or paths
    path, leaf = pool[rng.randrange(len(pool))]

    if isinstance(leaf, bytes):
        i = rng.randrange(len(leaf))
        damaged: Any = leaf[:i] + bytes([leaf[i] ^ (1 << rng.randrange(8))]) + leaf[i + 1:]
    elif isinstance(leaf, str):
        i = rng.randrange(len(leaf))
        damaged = leaf[:i] + chr((ord(leaf[i]) + 1) % 0x110000 or 1) + leaf[i + 1:]
    else:
        damaged = leaf ^ (1 << rng.randrange(max(leaf.bit_length(), 8)))

    def rebuild(obj: Any, path: tuple[int, ...]) -> Any:
        if not path:
            return damaged
        items = [
            rebuild(item, path[1:]) if i == path[0] else item
            for i, item in enumerate(obj)
        ]
        return items if isinstance(obj, list) else tuple(items)

    return rebuild(message, path)


class FaultyEndpoint:
    """Wrap a framed endpoint, injecting seeded faults on ``send``.

    Works over both transports: for a :class:`~repro.net.tcp.SocketEndpoint`
    a *disconnect* writes half a frame before killing the socket (the
    peer sees a truncated read); for the in-memory endpoint it closes
    the outbound channel. Receive and byte accounting pass through.
    """

    def __init__(
        self,
        transport: Any,
        plan: FaultPlan,
        stats: FaultStats | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        self.transport = transport
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self.rng = rng if rng is not None else random.Random(plan.seed)
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Fault decisions
    # ------------------------------------------------------------------
    def _decide(self) -> str:
        plan = self.plan
        if self.stats.sent <= plan.skip:
            return "deliver"
        if plan.max_faults is not None and self.stats.injected >= plan.max_faults:
            return "deliver"
        r = self.rng.random()
        edge = plan.disconnect_rate
        if r < edge:
            return "disconnect"
        edge += plan.drop_rate
        if r < edge:
            return "drop"
        edge += plan.corrupt_rate
        if r < edge:
            return "corrupt"
        edge += plan.delay_rate
        if r < edge:
            return "delay"
        return "deliver"

    # ------------------------------------------------------------------
    # Endpoint interface
    # ------------------------------------------------------------------
    def send(self, message: Any) -> None:
        """Ship one message, or do something worse to it."""
        self.stats.sent += 1
        fate = self._decide()
        if fate == "disconnect":
            self.stats.disconnects += 1
            self._disconnect(message)
        if fate == "drop":
            self.stats.dropped += 1
            return
        if fate == "corrupt":
            self.stats.corrupted += 1
            message = corrupt_message(message, self.rng)
        elif fate == "delay":
            self.stats.delayed += 1
            self._sleep(self.plan.delay_s)
        self.transport.send(message)
        self.stats.delivered += 1

    def _disconnect(self, message: Any) -> None:
        sock = getattr(self.transport, "sock", None)
        if sock is not None:
            # Mid-frame cut: ship a truncated frame so the peer's
            # _read_exact observes a half-delivered message.
            wire = serialization.encode(message)
            frame = _LEN.pack(len(wire)) + wire
            try:
                sock.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
        close = getattr(self.transport, "close", None)
        if close is not None:
            try:
                close()
            except OSError:
                pass
        raise ConnectionError("fault injection: connection dropped mid-frame")

    def recv(self) -> Any:
        """Receive from the wrapped transport (faults are send-side)."""
        return self.transport.recv()

    def close(self) -> None:
        """Close the wrapped transport."""
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()

    def settimeout(self, timeout: float | None) -> None:
        """Forward deadline configuration when the transport has one."""
        settimeout = getattr(self.transport, "settimeout", None)
        if settimeout is not None:
            settimeout(timeout)

    @property
    def bytes_sent(self) -> int:
        return getattr(self.transport, "bytes_sent", 0)

    @property
    def bytes_received(self) -> int:
        return getattr(self.transport, "bytes_received", 0)


class FaultInjector:
    """One seeded fault stream spanning every connection of a run.

    Constructing a fresh :class:`FaultyEndpoint` per connection would
    restart the fault RNG at the seed - after a fault-induced
    reconnect, the replacement connection would replay the *identical*
    fault sequence and die the identical death, forever. The injector
    owns the RNG and the counters; pass it as the ``endpoint_wrapper``
    of the resumable TCP helpers so faults continue across reconnects
    while the whole run stays reproducible from one seed.
    """

    def __init__(
        self,
        plan: FaultPlan,
        stats: FaultStats | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self.rng = random.Random(plan.seed)
        self._sleep = sleep

    def wrap(self, transport: Any) -> FaultyEndpoint:
        """A faulty wrapper sharing this injector's RNG and counters."""
        return FaultyEndpoint(
            transport, self.plan, self.stats, sleep=self._sleep, rng=self.rng
        )

    __call__ = wrap


def faulty_duplex_pair(
    plan_a: FaultPlan,
    plan_b: FaultPlan | None = None,
) -> tuple[FaultyEndpoint, FaultyEndpoint]:
    """An in-memory duplex pair with fault injection on both sends."""
    from .channel import duplex_pair

    a, b = duplex_pair()
    return (
        FaultyEndpoint(a, plan_a),
        FaultyEndpoint(b, plan_b if plan_b is not None else plan_a),
    )
