"""Asyncio transport core: the event loop owns sockets and framing.

The session layer (:mod:`repro.net.session`) is deliberately
synchronous - it is the byte-exact engine of record behind the golden
transcripts, the chaos schedules and the journal replay invariant.
What does not scale is giving every session its *own* blocking socket
reader: thread-per-session I/O hits the thread ceiling long before the
protocol does. This module splits the two concerns:

* **one event loop owns every socket** - :class:`AsyncFrameEndpoint`
  does the length-prefixed framing of :mod:`repro.net.tcp`
  (``u32 big-endian length || serialization payload``, same
  ``max_frame_bytes`` bound, same :class:`~repro.net.tcp.FrameTooLarge`
  teardown semantics) as coroutines on that loop;
* **sessions stay synchronous** - :class:`LoopTransport` bridges a
  loop-owned connection to the blocking ``send``/``recv``/
  ``settimeout``/``close`` transport protocol the session layer
  expects. A per-connection pump task moves raw frame payloads from
  the loop into a thread-safe queue; encoding and decoding run on the
  *calling* thread, so the loop never burns CPU on wire codec work and
  a frame that fails to decode stays a per-frame ``ValueError`` (the
  session naks it and continues) instead of killing the connection;
* **crypto runs in executors** - :class:`AsyncReceiverSession` is an
  async-native client for party R that offloads every machine step
  (hashing, modexp batches - optionally via a
  :class:`~repro.crypto.engine.CryptoEngine` pool) through
  ``run_in_executor``, so thousands of client sessions can share one
  loop and a small thread pool. Its wire behaviour mirrors
  :class:`~repro.net.session.ReceiverSession` frame for frame:
  CRC-sealed hello/welcome, stop-and-wait data frames with implicit
  acks, naks for garbled frames, chunked rounds, and a fin exchange.

:class:`LoopThread` hosts one loop on a dedicated daemon thread with a
thread-safe ``run``/``submit`` surface; the supervised server
(:mod:`repro.net.server`) and the shard router (:mod:`repro.net.shard`)
both build on it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import random
import threading
import time
from collections import deque
from typing import Any, Awaitable, Callable

from . import serialization
from .session import (
    SESSION_VERSION,
    HandshakeError,
    ServerBusyError,
    SessionAborted,
    SessionConfig,
    SessionError,
    SessionStats,
    WorkerLost,
    busy_backoff_s,
    refusal_retry_hint_s,
    seal,
    unseal,
)
from .tcp import _LEN, DEFAULT_MAX_FRAME_BYTES, FrameTooLarge

__all__ = [
    "AsyncFrameEndpoint",
    "AsyncReceiverSession",
    "AsyncSessionEndpoint",
    "LoopThread",
    "LoopTransport",
    "connect_receiver_async",
    "open_endpoint",
]

#: ``asyncio.wait_for`` raises ``asyncio.TimeoutError``, which is the
#: builtin ``TimeoutError`` only from 3.11 on; catch both for 3.10.
_TIMEOUTS = (TimeoutError, asyncio.TimeoutError)

#: Transport-level events an async reconnect can recover from
#: (the session layer's ``_TRANSIENT`` plus asyncio's EOF signal).
_ATRANSIENT = (ConnectionError, OSError, EOFError, *_TIMEOUTS)


class AsyncFrameEndpoint:
    """Framed, serialized messaging on an asyncio stream pair.

    The exact wire format of :class:`~repro.net.tcp.SocketEndpoint` -
    the two are interchangeable peers on the same connection - with the
    same byte counters and the same :class:`~repro.net.tcp.FrameTooLarge`
    bound on hostile length prefixes.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.reader = reader
        self.writer = writer
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self._recv_task: asyncio.Task | None = None

    async def send_bytes(self, payload: bytes) -> None:
        """Frame and ship one already-encoded payload."""
        frame = _LEN.pack(len(payload)) + payload
        self.writer.write(frame)
        await self.writer.drain()
        self.bytes_sent += len(frame)
        self.messages_sent += 1

    async def send(self, message: Any) -> None:
        """Serialize and ship one framed message."""
        await self.send_bytes(serialization.encode(message))

    async def recv_bytes(self) -> bytes:
        """Read one frame; return its raw (still-encoded) payload.

        Raises:
            FrameTooLarge: the length prefix exceeds
                ``max_frame_bytes`` (corrupt header or hostile peer).
            ConnectionError: the peer closed the stream mid-frame.
        """
        try:
            header = await self.reader.readexactly(_LEN.size)
            (length,) = _LEN.unpack(header)
            if length > self.max_frame_bytes:
                raise FrameTooLarge(
                    f"frame declares {length} bytes, limit is "
                    f"{self.max_frame_bytes} (corrupt length prefix?)"
                )
            payload = await self.reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError(
                "peer closed the connection mid-frame"
            ) from exc
        self.bytes_received += _LEN.size + length
        return payload

    async def recv(self) -> Any:
        """Read and deserialize one framed message."""
        return serialization.decode(await self.recv_bytes())

    async def recv_bytes_within(self, timeout: float) -> bytes:
        """One frame's raw payload within ``timeout`` seconds.

        Unlike ``wait_for(recv_bytes(), ...)``, a timeout here does
        *not* cancel the in-flight read - cancelling between a frame's
        header and payload would desynchronize the stream forever. The
        read stays pending and the next call resumes it; only
        :meth:`close` abandons it.
        """
        if self._recv_task is None:
            self._recv_task = asyncio.ensure_future(self.recv_bytes())
        done, _pending = await asyncio.wait(
            {self._recv_task}, timeout=max(timeout, 1e-3)
        )
        if not done:
            raise asyncio.TimeoutError(f"no frame within {timeout}s")
        task, self._recv_task = self._recv_task, None
        return task.result()

    async def recv_within(self, timeout: float) -> Any:
        """One decoded frame within ``timeout`` seconds."""
        return serialization.decode(await self.recv_bytes_within(timeout))

    async def close(self) -> None:
        """Close the underlying stream, tolerating a dead peer."""
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
            self._recv_task = None
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def open_endpoint(
    host: str,
    port: int,
    timeout: float | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> AsyncFrameEndpoint:
    """Dial ``host:port`` and wrap the stream in a framed endpoint."""
    connect = asyncio.open_connection(host, port)
    if timeout is not None:
        reader, writer = await asyncio.wait_for(connect, timeout)
    else:
        reader, writer = await connect
    return AsyncFrameEndpoint(reader, writer, max_frame_bytes=max_frame_bytes)


class LoopThread:
    """One asyncio event loop on a dedicated daemon thread.

    The loop owns sockets; other threads talk to it through
    :meth:`submit` / :meth:`run`. Stopping cancels every task still on
    the loop, so abandoned connection handlers cannot outlive it.
    """

    def __init__(self, name: str = "repro-aio"):
        self.name = name
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The running loop (valid after :meth:`start`)."""
        if self._loop is None:
            raise RuntimeError("loop thread not started")
        return self._loop

    def start(self) -> "LoopThread":
        """Create the loop and run it forever on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("loop thread already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=_run, name=self.name,
                                        daemon=True)
        self._thread.start()
        ready.wait(timeout=10)
        return self

    def submit(self, coro: Awaitable[Any]) -> concurrent.futures.Future:
        """Schedule a coroutine on the loop; return its future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro: Awaitable[Any], timeout: float | None = None) -> Any:
        """Run a coroutine on the loop and block for its result."""
        return self.submit(coro).result(timeout)

    def stop(self) -> None:
        """Cancel every pending task, stop the loop, join the thread."""
        if self._thread is None or self._loop is None:
            return

        async def _cancel_all() -> None:
            tasks = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        try:
            self.submit(_cancel_all()).result(timeout=5)
        except (concurrent.futures.TimeoutError, RuntimeError):
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._thread.is_alive():
            self._loop.close()
        self._thread = None
        self._loop = None


class LoopTransport:
    """Blocking transport facade over a loop-owned connection.

    The piece that lets the synchronous session layer run unchanged on
    the asyncio core: a pump task on the loop reads raw frame payloads
    into a thread-safe queue, and the worker thread's ``recv`` decodes
    them at its own pace. The split keeps the failure taxonomy intact:

    * connection-level failures (EOF mid-frame, a
      :class:`~repro.net.tcp.FrameTooLarge` prefix) arrive through the
      queue as *sticky* fatal errors - every subsequent ``recv`` raises
      them, exactly like a dead socket;
    * a payload that fails to decode raises ``ValueError`` from
      ``recv`` only - the session naks it and keeps the connection.

    ``replay`` seeds the queue with raw payloads already read off the
    stream (the routed hello), replacing the old replay-shim transport.
    """

    def __init__(
        self,
        endpoint: AsyncFrameEndpoint,
        loop: asyncio.AbstractEventLoop,
        replay: list[bytes] = (),
        timeout: float | None = None,
    ):
        self._endpoint = endpoint
        self._loop = loop
        self._timeout = timeout
        self._queue: queue.Queue[tuple[str, Any]] = queue.Queue()
        for raw in replay:
            self._queue.put(("frame", raw))
        self._pump_task: asyncio.Task | None = None
        self._closed = threading.Event()

    def start_pump(self) -> None:
        """Begin reading frames onto the queue (loop thread only)."""
        self._pump_task = self._loop.create_task(self._pump())

    async def _pump(self) -> None:
        try:
            while True:
                raw = await self._endpoint.recv_bytes()
                self._queue.put(("frame", raw))
        except asyncio.CancelledError:
            self._queue.put(
                ("fatal", ConnectionError("connection closed by the server"))
            )
            raise
        except BaseException as exc:
            self._queue.put(("fatal", exc))

    # -- the blocking transport protocol the session layer speaks -----
    def recv(self) -> Any:
        """One decoded frame, or the connection's (sticky) failure."""
        try:
            kind, value = self._queue.get(timeout=self._timeout)
        except queue.Empty:
            raise TimeoutError(
                f"no frame within {self._timeout}s"
            ) from None
        if kind == "fatal":
            self._queue.put(("fatal", value))  # keep the failure sticky
            raise value
        return serialization.decode(value)

    def send(self, message: Any) -> None:
        """Encode on this thread; ship through the loop."""
        payload = serialization.encode(message)
        future = asyncio.run_coroutine_threadsafe(
            self._endpoint.send_bytes(payload), self._loop
        )
        try:
            future.result(self._timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TimeoutError(
                f"send did not complete within {self._timeout}s"
            ) from None

    def settimeout(self, timeout: float | None) -> None:
        """Deadline for subsequent operations (None = block)."""
        self._timeout = timeout

    def close(self) -> None:
        """Tear the connection down; unstick any blocked reader."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(("fatal", ConnectionError("connection closed")))
        asyncio.run_coroutine_threadsafe(self._aclose(), self._loop)

    async def _aclose(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
        await self._endpoint.close()


class AsyncSessionEndpoint:
    """Stop-and-wait session messaging as coroutines on one connection.

    The async twin of :class:`~repro.net.session.SessionEndpoint`: the
    same sealed frames, the same ack/nak/implicit-ack rules, the same
    cursors - so a peer cannot tell which implementation it talks to.
    """

    def __init__(
        self,
        endpoint: AsyncFrameEndpoint,
        config: SessionConfig,
        stats: SessionStats,
        rng: random.Random,
        send_seq: int = 0,
        recv_seq: int = 0,
    ):
        self.endpoint = endpoint
        self.config = config
        self.stats = stats
        self.rng = rng
        self.send_seq = send_seq
        self.recv_seq = recv_seq
        self.fin_seen = False
        self._inbox: deque[tuple] = deque()

    async def _read_frame(self, timeout: float) -> tuple:
        """One unsealed frame within ``timeout`` seconds."""
        return unseal(await self.endpoint.recv_within(timeout))

    async def _send_control(self, *fields: Any) -> None:
        await self.endpoint.send(seal(*fields))

    def _raise_worker_lost(self, frame: tuple) -> None:
        """A routed front end lost our worker: fail typed, retryable."""
        self.stats.worker_lost += 1
        raise WorkerLost(
            f"server lost the session's worker: {frame[2]!r}",
            retry_after_s=refusal_retry_hint_s(frame),
        )

    async def send(self, payload: Any) -> None:
        """Ship one data frame reliably; advances the send cursor."""
        seq = self.send_seq
        await self._transmit_until_acked(seq, payload)
        self.send_seq = seq + 1

    async def _transmit_until_acked(self, seq: int, payload: Any) -> None:
        wire = serialization.encode(payload)
        retry = self.config.retry
        for attempt in range(retry.max_attempts):
            if attempt:
                self.stats.retransmits += 1
                await asyncio.sleep(retry.delay_s(attempt - 1, self.rng))
            await self.endpoint.send(seal("msg", seq, wire))
            self.stats.frames_sent += 1
            if await self._wait_ack(seq):
                return
        raise SessionError(
            f"frame {seq} unacknowledged after {retry.max_attempts} attempts"
        )

    async def _wait_ack(self, seq: int) -> bool:
        deadline = time.monotonic() + self.config.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                frame = await self._read_frame(remaining)
            except _TIMEOUTS:
                return False
            except ValueError:
                self.stats.checksum_failures += 1
                continue
            tag = frame[0]
            if tag == "ack" and len(frame) == 2:
                if frame[1] == seq:
                    return True
                continue  # stale ack from a replayed frame
            if tag == "nak" and len(frame) == 2:
                if frame[1] in (seq, -1):
                    return False  # peer asked for a retransmit
                continue
            if tag == "msg":
                # The peer only sends data after receiving everything
                # we sent: buffer the frame and treat it as an ack.
                self._inbox.append(frame)
                self.stats.implicit_acks += 1
                return True
            if tag == "fin":
                self.fin_seen = True
                return True  # a finished peer has everything
            if tag == "worker-lost" and len(frame) in (3, 4):
                self._raise_worker_lost(frame)
            continue  # hello/welcome replays, unknown tags: ignore

    async def recv(self) -> Any:
        """One in-order data payload; acks, de-dups and naks en route."""
        config = self.config
        deadline = (
            time.monotonic() + config.timeout_s * config.retry.max_attempts
        )
        while True:
            if self._inbox:
                frame = self._inbox.popleft()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SessionError(
                        f"timed out waiting for frame {self.recv_seq}"
                    )
                try:
                    frame = await self._read_frame(
                        min(remaining, config.timeout_s)
                    )
                except _TIMEOUTS:
                    continue
                except ValueError:
                    self.stats.checksum_failures += 1
                    self.stats.naks_sent += 1
                    await self._send_control("nak", -1)
                    continue
            tag = frame[0]
            if tag == "fin":
                self.fin_seen = True
                continue
            if tag == "worker-lost" and len(frame) in (3, 4):
                self._raise_worker_lost(frame)
            if tag != "msg" or len(frame) != 3:
                continue  # stray ack/nak/welcome
            _, seq, wire = frame
            if not isinstance(seq, int) or not isinstance(wire, bytes):
                self.stats.malformed_frames += 1
                continue
            if seq == self.recv_seq:
                await self._send_control("ack", seq)
                self.recv_seq += 1
                self.stats.frames_received += 1
                try:
                    return serialization.decode(wire)
                except ValueError as exc:
                    raise SessionError(
                        f"frame {seq} passed its checksum but failed to "
                        f"decode: {exc}"
                    ) from exc
            if seq < self.recv_seq:
                self.stats.duplicates_discarded += 1
                await self._send_control("ack", seq)
                continue
            raise SessionError(
                f"out-of-order frame {seq} (expected {self.recv_seq})"
            )

    async def fin_wait(self, session_id: int) -> bool:
        """Send a fin and linger for the peer's echo (see the sync
        twin for why the linger matters); returns whether it arrived."""
        retry = self.config.retry
        for attempt in range(retry.max_attempts):
            if attempt:
                await asyncio.sleep(retry.delay_s(attempt - 1, self.rng))
            try:
                await self._send_control("fin", session_id)
            except _ATRANSIENT:
                return False
            deadline = time.monotonic() + self.config.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # resend the fin
                try:
                    frame = await self._read_frame(remaining)
                except _TIMEOUTS:
                    break
                except _ATRANSIENT:
                    return False  # peer already hung up: it is done
                except ValueError:
                    continue
                if frame[0] == "fin":
                    self.fin_seen = True
                    return True
                if frame[0] == "msg" and len(frame) == 3:
                    seq = frame[1]
                    if isinstance(seq, int) and seq < self.recv_seq:
                        self.stats.duplicates_discarded += 1
                        try:
                            await self._send_control("ack", seq)
                        except _ATRANSIENT:
                            return False
        return False


class AsyncReceiverSession:
    """Party R's resumable run as a coroutine: dial, drive, reconnect.

    Wire-compatible with any session-layer sender - the supervised
    server, the shard router, or a plain
    :func:`~repro.net.tcp.serve_resumable_sender`. All machine work
    (state construction, round crypto, chunk production) runs through
    ``run_in_executor`` on ``executor``, so one event loop can drive
    thousands of these concurrently while a small thread pool does the
    math. Round payloads are cached exactly like the sync session's
    round log, so a reconnect replays only the frames the server lacks.
    """

    def __init__(
        self,
        protocol: str,
        make_receiver: Callable[[Any], Any],
        config: SessionConfig | None = None,
        rng: random.Random | None = None,
        session_id: int | None = None,
        chunk_size: int | None = None,
        executor: Any = None,
    ):
        from ..protocols.spec import get_spec

        self.protocol = protocol
        self.spec = get_spec(protocol)
        self.config = config or SessionConfig()
        self.rng = rng or random.Random()
        self.stats = SessionStats(protocol=protocol)
        self.chunk_size = chunk_size
        self.session_id = (
            session_id if session_id is not None else self.rng.getrandbits(63)
        )
        self._executor = executor
        self._make_receiver = make_receiver
        self._machine: Any = None
        self._params_wire: tuple | None = None
        self._inbound: list[Any] = []
        self._outbound: list[Any] = []
        self._in_rounds: list[int] = []
        self._out_rounds: list[int] = []

    async def _call(self, fn: Callable, *args: Any) -> Any:
        """Run blocking machine work off the loop."""
        loop = asyncio.get_running_loop()
        if args:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args)
            )
        return await loop.run_in_executor(self._executor, fn)

    async def run(self, host: str, port: int) -> Any:
        """Drive the run to completion; returns the protocol answer."""
        failures = 0
        while True:
            endpoint = None
            try:
                endpoint = await open_endpoint(
                    host, port, timeout=self.config.timeout_s
                )
                session = await self._handshake(endpoint)
                answer = await self._script(session)
                await session.fin_wait(self.session_id)
                self.stats.finish()
                return answer
            except (HandshakeError, SessionAborted):
                raise
            except (SessionError, ValueError, *_ATRANSIENT) as exc:
                failures += 1
                self.stats.reconnects += 1
                if failures > self.config.max_reconnects:
                    raise SessionError(
                        f"receiver session gave up after {failures} failed "
                        f"connections: {exc}"
                    ) from exc
                delay = self.config.retry.delay_s(failures - 1, self.rng)
                hint = getattr(exc, "retry_after_s", None)
                if hint is not None:
                    # A worker-lost notice names its respawn window;
                    # redialing earlier just burns a reconnect.
                    delay = max(delay, busy_backoff_s(hint, self.rng))
                await asyncio.sleep(delay)
            finally:
                if endpoint is not None:
                    await endpoint.close()

    async def _await_welcome(
        self, endpoint: AsyncFrameEndpoint, hello: tuple
    ) -> tuple:
        """Send the hello; retransmit it until a welcome (or refusal)."""
        config = self.config
        for attempt in range(config.retry.max_attempts):
            if attempt:
                self.stats.retransmits += 1
            await endpoint.send(hello)
            deadline = time.monotonic() + config.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # resend the hello
                try:
                    fields = unseal(await endpoint.recv_within(remaining))
                except _TIMEOUTS:
                    break
                except ValueError:
                    self.stats.checksum_failures += 1
                    continue
                if fields[0] == "busy" and len(fields) in (3, 4):
                    # Optional 4th field: retry hint in integer ms.
                    raise ServerBusyError(
                        f"server refused the session: {fields[2]!r}",
                        retry_after_s=refusal_retry_hint_s(fields),
                    )
                if fields[0] == "worker-lost" and len(fields) in (3, 4):
                    # The shard front end answered for a dead worker:
                    # retryable - the supervisor is respawning it.
                    self.stats.worker_lost += 1
                    raise WorkerLost(
                        f"server lost the session's worker: {fields[2]!r}",
                        retry_after_s=refusal_retry_hint_s(fields),
                    )
                if fields[0] == "reject" and len(fields) == 3:
                    raise HandshakeError(
                        f"server rejected session: {fields[2]!r}"
                    )
                if fields[0] == "welcome" and len(fields) == 6:
                    return fields
                # Stray ack/data from the previous connection: ignore.
        raise SessionError(
            f"no welcome after {config.retry.max_attempts} hellos"
        )

    async def _handshake(
        self, endpoint: AsyncFrameEndpoint
    ) -> AsyncSessionEndpoint:
        next_recv = len(self._inbound)
        hello = seal(
            "hello",
            SESSION_VERSION,
            self.protocol,
            self.session_id,
            len(self._outbound),
            next_recv,
        )
        fields = await self._await_welcome(endpoint, hello)
        _, version, protocol, session_id, params_wire, server_next_recv = (
            fields
        )
        if version != SESSION_VERSION:
            raise HandshakeError(
                f"server speaks session version {version}, "
                f"this client speaks {SESSION_VERSION}"
            )
        if protocol != self.protocol:
            raise HandshakeError(
                f"server runs {protocol!r}, wanted {self.protocol!r}"
            )
        if session_id != self.session_id:
            raise SessionError(f"server answered for session {session_id}")
        if self._params_wire is None:
            self._params_wire = tuple(params_wire)
        elif tuple(params_wire) != self._params_wire:
            raise HandshakeError(
                "server changed public parameters across a resume"
            )
        if not isinstance(server_next_recv, int) or not (
            0 <= server_next_recv <= len(self._outbound)
        ):
            raise SessionError(
                f"implausible server cursor {server_next_recv!r}"
            )
        return AsyncSessionEndpoint(
            endpoint,
            self.config,
            self.stats,
            self.rng,
            send_seq=server_next_recv,
            recv_seq=next_recv,
        )

    async def _ensure_machine(self) -> Any:
        if self._machine is None:
            from ..protocols.parties import ReceiverMachine

            machine = ReceiverMachine.from_factory(
                self.spec, lambda: self._make_receiver(self._params_wire),
                None,
            )
            await self._call(machine.ensure_state)
            self._machine = machine
        return self._machine

    async def _script(self, session: AsyncSessionEndpoint) -> Any:
        machine = await self._ensure_machine()
        if session.send_seq < len(self._outbound):
            self.stats.rounds_resumed += 1
        sent = received = 0
        for rnd in self.spec.rounds:
            if rnd.source == "R":
                await self._produce_round(session, machine, rnd, sent)
                sent += 1
            else:
                await self._recv_round(session, machine, rnd, received)
                received += 1
        answer = await self._call(machine.finish)
        return answer

    async def _ship(self, session: AsyncSessionEndpoint, bound: int) -> None:
        """Ship every cached frame below ``bound`` the server lacks."""
        while session.send_seq < bound:
            frame = self._outbound[session.send_seq]
            if serialization.is_chunk_frame(frame):
                self.stats.chunks_sent += 1
            await session.send(frame)

    async def _produce_round(
        self,
        session: AsyncSessionEndpoint,
        machine: Any,
        rnd: Any,
        index: int,
    ) -> None:
        """Compute (if new) and ship outbound round ``index``."""
        if index >= len(self._out_rounds):
            if (
                self.chunk_size is not None
                and rnd.chunkable
                and rnd.chunk_step is not None
            ):
                await self._produce_streaming(session, machine, rnd)
            else:
                await self._produce_whole(machine, rnd)
            self._out_rounds.append(len(self._outbound))
            self.stats.rounds_computed += 1
        await self._ship(session, self._out_rounds[index])

    async def _produce_whole(self, machine: Any, rnd: Any) -> None:
        """Compute a full round's frames in one executor call."""

        def compute() -> list:
            if self.chunk_size is not None and rnd.chunkable:
                payloads = list(
                    machine.produce_chunks(rnd, self.chunk_size)
                )
                frames: list = [
                    serialization.chunk_frame(i, p)
                    for i, p in enumerate(payloads)
                ]
                frames.append(serialization.chunk_end_frame(len(payloads)))
                return frames
            return [machine.produce(rnd).to_wire()]

        self._outbound.extend(await self._call(compute))

    async def _produce_streaming(
        self, session: AsyncSessionEndpoint, machine: Any, rnd: Any
    ) -> None:
        """Stream a round: the async producer-task double buffer.

        :func:`~repro.net.streaming.aprefetch` drives the (rng-free,
        deterministic) chunk producer one step ahead in the executor,
        so chunk ``k+1``'s crypto overlaps chunk ``k``'s acknowledged
        send. A reconnect mid-round recomputes the stream and skips the
        frames already cached - the same idempotence contract the sync
        session's streaming path relies on.
        """
        from .streaming import aprefetch

        base = self._out_rounds[-1] if self._out_rounds else 0
        already = len(self._outbound) - base
        count = 0
        async for payload in aprefetch(
            machine.produce_chunks(rnd, self.chunk_size),
            executor=self._executor,
        ):
            if count >= already:
                self._outbound.append(
                    serialization.chunk_frame(count, payload)
                )
                await self._ship(session, len(self._outbound))
            count += 1
        if already <= count:
            self._outbound.append(serialization.chunk_end_frame(count))

    async def _recv_round(
        self,
        session: AsyncSessionEndpoint,
        machine: Any,
        rnd: Any,
        index: int,
    ) -> None:
        """Receive (if incomplete) and consume inbound round ``index``."""
        if index < len(self._in_rounds):
            return
        start = self._in_rounds[-1] if self._in_rounds else 0
        while True:
            status, payload, _used = serialization.fold_chunk_frames(
                self._inbound[start:]
            )
            if status != "partial":
                break
            frame = await session.recv()
            self._inbound.append(frame)
            if serialization.is_chunk_frame(frame):
                self.stats.chunks_received += 1
        if status == "single":
            await self._call(machine.consume, rnd, payload)
        else:
            await self._call(machine.consume_chunks, rnd, payload)
        self._in_rounds.append(len(self._inbound))


async def connect_receiver_async(
    protocol: str,
    data: Any,
    rng: random.Random,
    host: str,
    port: int,
    config: SessionConfig | None = None,
    chunk_size: int | None = None,
    engine: Any = None,
    executor: Any = None,
) -> tuple[Any, SessionStats]:
    """Run party R under the session layer as a coroutine.

    The async counterpart of
    :func:`~repro.net.tcp.connect_resumable_receiver` (sans journal):
    returns ``(answer, session stats)``. The rng draw order matches the
    sync driver - the session seed is consumed first - so a given seed
    produces the same session id and party randomness either way.
    """
    from ..protocols.parties import PublicParams
    from ..protocols.spec import get_spec

    config = config or SessionConfig()
    spec = get_spec(protocol)
    session_rng = random.Random(rng.getrandbits(64))
    make_receiver = lambda wire: spec.make_receiver(  # noqa: E731
        data, PublicParams.from_wire(tuple(wire)), rng, engine=engine
    )
    session = AsyncReceiverSession(
        protocol,
        make_receiver,
        config=config,
        rng=session_rng,
        chunk_size=chunk_size,
        executor=executor,
    )
    answer = await session.run(host, port)
    return answer, session.stats
