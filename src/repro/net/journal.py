"""Crash-durable session journal: a write-ahead log for protocol runs.

The resumable sessions of :mod:`repro.net.session` survive *connection*
failures because their round logs live outside any single connection -
but those logs live only in memory, so a dying **process** still loses
the whole run. This module puts the round log on disk:

* every session event (handshake parameters, each inbound round
  payload received, each outbound round payload computed, the
  completion marker) is appended to a per-session journal file as a
  length-prefixed, CRC32-sealed record, ``flush``-ed and (by default)
  ``fsync``-ed before the session acts on it;
* on restart, :func:`recover_sender_session` /
  :func:`recover_receiver_session` rebuild a
  :class:`~repro.net.session.SenderSession` /
  :class:`~repro.net.session.ReceiverSession` to its exact resume
  cursor by replaying the journal through a fresh party machine - the
  process picks the run back up from disk instead of restarting the
  protocol;
* a journal whose tail was torn by the crash (a half-written record)
  is truncated back to the last intact record on open, so recovery
  never trips over its own corpse;
* a completed journal is **rotated** - atomically renamed from
  ``*.wal`` to ``*.done`` via ``os.replace`` - so a directory scan
  (:meth:`JournalDir.incomplete`) finds exactly the runs that still
  need recovering.

Replay determinism is the load-bearing invariant: a party state is a
pure function of ``(data, params, rng seed)``, so a recovered machine
fed the journaled inbound payloads recomputes byte-identical outbound
payloads. Recovery *checks* this - each replayed outbound round is
compared against the journaled bytes and a mismatch (wrong seed,
changed data) raises :class:`JournalError` instead of silently
shipping frames the peer has never seen.

On-disk format (all integers big-endian)::

    magic   "RPJL" || u16 version
    record  u32 len(payload) || payload || u32 crc32(payload)

where each payload is :mod:`repro.net.serialization` bytes for one of::

    ("open", version, role, protocol)
    ("meta", key, value)              # "session_id", "params", "chunk_size"
    ("in",  index, wire_bytes)        # inbound frame payload, encoded
    ("out", index, wire_bytes)        # outbound frame payload, encoded
    ("done",)
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from . import serialization
from .chaos import crash_point
from .diskfaults import JournalIO

__all__ = [
    "JOURNAL_VERSION",
    "JOURNAL_MAGIC",
    "JournalError",
    "SessionJournal",
    "JournalDir",
    "JournalState",
    "peek_state",
    "replay_state",
    "recover_sender_session",
    "recover_receiver_session",
]

JOURNAL_VERSION = 1

#: File prologue: four ASCII bytes plus the format version.
JOURNAL_MAGIC = b"RPJL" + struct.pack(">H", JOURNAL_VERSION)

_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")

#: Suffix of a live (possibly incomplete) journal.
WAL_SUFFIX = ".wal"
#: Suffix a completed journal is atomically rotated to.
DONE_SUFFIX = ".done"
#: Suffix an unrecoverable journal is quarantined to (kept for forensics).
CORRUPT_SUFFIX = ".corrupt"


class JournalError(Exception):
    """A journal is unreadable, inconsistent, or diverges on replay.

    Deliberately *not* an :class:`OSError`: the session layer retries
    transient OS errors, but a journal failure is fail-stop - it must
    escape every retry loop and reach the supervisor.
    """


#: The default I/O seam: real ``os`` calls, shared and stateless.
_REAL_IO = JournalIO()


class SessionJournal:
    """One session's append-only, CRC-sealed, fsync'd record log.

    Opening an existing file scans and validates every record,
    truncating a torn tail (a record cut short by a crash, or one whose
    checksum fails) back to the last intact byte; the dropped length is
    reported in :attr:`truncated_bytes`. Appends go through
    ``write + flush + fsync`` (fsync skippable via ``fsync=False`` for
    benchmarks) so a record returned from :meth:`append` survives the
    process.

    Every disk touch goes through an injectable I/O seam (``io``, a
    :class:`~repro.net.diskfaults.JournalIO`; defaults to the real
    ``os`` calls). The journal is **fail-stop**: any write or fsync
    failure poisons it - per the fsyncgate rule a failed fsync leaves
    the page cache state unknowable, so the handle is closed, never
    reused, and every later operation raises :class:`JournalError`.
    Failure counts surface in :meth:`io_stats`.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = True,
        io: JournalIO | None = None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.records: list[tuple] = []
        self.truncated_bytes = 0
        self.appends = 0
        self.poisoned: str | None = None
        self.write_failures = 0
        self.fsync_failures = 0
        self.dir_fsync_failures = 0
        self.rotate_failures = 0
        self._io = io if io is not None else _REAL_IO
        self._file: Any = None
        self._load()

    # ------------------------------------------------------------------
    # Open / scan / torn-tail truncation
    # ------------------------------------------------------------------
    def _load(self) -> None:
        exists = self.path.exists()
        if not exists:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._file = self._io.open_append(self.path)
                self._io.write(self._file, JOURNAL_MAGIC)
                self._flush()
            except OSError as exc:
                self.write_failures += 1
                self._poison("create", exc)
            self._dir_barrier()
            return
        data = self.path.read_bytes()
        if len(data) < len(JOURNAL_MAGIC):
            if JOURNAL_MAGIC.startswith(data):
                # Crash mid-creation: nothing was journaled yet.
                try:
                    self.path.write_bytes(JOURNAL_MAGIC)
                    self._file = self._io.open_append(self.path)
                    self._flush()
                except OSError as exc:
                    self.write_failures += 1
                    self._poison("repair", exc)
                return
            raise JournalError(f"{self.path} is not a session journal")
        self.records, good_end = self._scan_bytes(data, self.path)
        if good_end < len(data):
            self.truncated_bytes = len(data) - good_end
            try:
                self._io.truncate(self.path, good_end)
            except OSError as exc:
                self.write_failures += 1
                self._poison("truncate", exc)
        try:
            self._file = self._io.open_append(self.path)
        except OSError as exc:
            self.write_failures += 1
            self._poison("open", exc)

    @staticmethod
    def _scan_bytes(data: bytes, path: Path) -> tuple[list[tuple], int]:
        """Read-only record scan of whole-file bytes.

        Returns ``(intact records, offset just past the last one)``;
        anything after that offset is a torn tail. Never touches the
        file - callers that own the journal truncate, callers that
        merely inspect it (:func:`peek_state`) must not.

        Raises:
            JournalError: on a foreign or future header.
        """
        if data[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
            if JOURNAL_MAGIC.startswith(data):
                # Crash mid-creation: nothing was journaled yet.
                return [], len(data)
            raise JournalError(
                f"{path} has a foreign or future journal header"
            )
        records: list[tuple] = []
        offset = good_end = len(JOURNAL_MAGIC)
        while offset < len(data):
            record, end = SessionJournal._scan_one(data, offset)
            if record is None:
                break  # torn tail: keep everything before it
            records.append(record)
            good_end = offset = end
        return records, good_end

    @staticmethod
    def _scan_one(data: bytes, offset: int) -> tuple[tuple | None, int]:
        """Parse one record at ``offset``; ``(None, offset)`` if torn."""
        if offset + _LEN.size > len(data):
            return None, offset
        (length,) = _LEN.unpack_from(data, offset)
        body_start = offset + _LEN.size
        crc_start = body_start + length
        end = crc_start + _CRC.size
        if end > len(data):
            return None, offset
        payload = data[body_start:crc_start]
        (crc,) = _CRC.unpack_from(data, crc_start)
        if zlib.crc32(payload) != crc:
            return None, offset
        try:
            record = serialization.decode(payload)
        except ValueError:
            return None, offset
        if not isinstance(record, tuple) or not record or not isinstance(
            record[0], str
        ):
            return None, offset
        return record, end

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _poison(self, op: str, exc: OSError) -> None:
        """Fail-stop: close and never reuse the handle, raise typed.

        After a failed write the file offset is unknowable; after a
        failed fsync the page cache is (fsyncgate) - either way no
        later append through this handle can be trusted, so the
        journal refuses all further writes until reopened (which
        re-scans and truncates whatever half-record made it to disk).
        """
        self.poisoned = f"{op}: {exc}"
        fh, self._file = self._file, None
        if fh is not None:
            try:
                fh.close()
            except OSError:
                pass
        raise JournalError(
            f"{self.path}: {op} failed; journal is fail-stop ({exc})"
        ) from exc

    def _dir_barrier(self, path: Path | None = None) -> None:
        """Directory durability barrier; failures counted, not fatal.

        A failed directory fsync means the file's *name* may not
        survive a power cut - but the data a successful ``append``
        fsync'd is intact, so this is recorded
        (:attr:`dir_fsync_failures`, surfaced by :meth:`io_stats`)
        rather than poisoning the journal.
        """
        try:
            self._io.fsync_dir(path if path is not None else self.path.parent)
        except OSError:
            self.dir_fsync_failures += 1

    def _flush(self) -> None:
        self._io.flush(self._file)
        if self.fsync:
            self._io.fsync(self._file)

    def append(self, record: tuple) -> None:
        """Seal, write, and make one record durable before returning.

        Raises:
            JournalError: if the journal is closed or poisoned, or if
                the write/fsync fails - in which case the journal
                poisons itself (fail-stop) before raising.
        """
        if self.poisoned is not None:
            raise JournalError(
                f"{self.path}: fail-stop after {self.poisoned}"
            )
        if self._file is None:
            raise JournalError(f"{self.path} is closed")
        payload = serialization.encode(record)
        crash_point("journal.append.pre")
        try:
            self._io.write(
                self._file,
                _LEN.pack(len(payload)) + payload
                + _CRC.pack(zlib.crc32(payload)),
            )
        except OSError as exc:
            self.write_failures += 1
            self._poison("write", exc)
        try:
            self._flush()
        except OSError as exc:
            self.fsync_failures += 1
            self._poison("fsync", exc)
        self.records.append(record)
        self.appends += 1
        crash_point("journal.append.post")

    def record_open(self, role: str, protocol: str) -> None:
        """The first record: which role and protocol this journal logs."""
        self.append(("open", JOURNAL_VERSION, role, protocol))

    def record_meta(self, key: str, value: Any) -> None:
        """A handshake fact (``"session_id"``, ``"params"``)."""
        self.append(("meta", key, value))

    def record_inbound(self, index: int, data: bytes) -> None:
        """Round payload ``index`` received from the peer (encoded)."""
        self.append(("in", index, data))

    def record_outbound(self, index: int, data: bytes) -> None:
        """Round payload ``index`` computed for the peer (encoded)."""
        self.append(("out", index, data))

    def record_complete(self) -> None:
        """The run finished; recovery of this journal is a no-op."""
        self.append(("done",))

    @property
    def complete(self) -> bool:
        """Whether a completion marker has been journaled."""
        return any(r and r[0] == "done" for r in self.records)

    def io_stats(self) -> dict[str, Any]:
        """Lifetime I/O and failure counters for this journal.

        Every swallowed-or-poisoned failure shows up here - directory
        fsync failures are the only class that is counted without
        raising, everything else also fail-stopped the journal.
        """
        return {
            "appends": self.appends,
            "truncated_bytes": self.truncated_bytes,
            "write_failures": self.write_failures,
            "fsync_failures": self.fsync_failures,
            "dir_fsync_failures": self.dir_fsync_failures,
            "rotate_failures": self.rotate_failures,
            "poisoned": self.poisoned,
        }

    # ------------------------------------------------------------------
    # Teardown / rotation
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the underlying file (idempotent, no-raise).

        Teardown must be safe from ``finally`` blocks, so a flush or
        fsync failure here does not raise: it is counted, the handle is
        closed and the journal marked poisoned - the next *operation*
        raises. Every record a prior :meth:`append` returned for was
        already durable, so nothing acknowledged is at risk.
        """
        if self._file is None:
            return
        fh, self._file = self._file, None
        try:
            self._io.flush(fh)
            if self.fsync:
                self._io.fsync(fh)
        except OSError as exc:
            self.fsync_failures += 1
            if self.poisoned is None:
                self.poisoned = f"close: {exc}"
        finally:
            try:
                fh.close()
            except OSError:
                pass

    def rotate(self) -> Path:
        """Atomically rename a completed ``*.wal`` to ``*.done``.

        ``os.replace`` is atomic on POSIX, so a crash leaves either the
        live journal or the rotated one - never a half state. A failed
        rename raises :class:`JournalError` but leaves the ``*.wal``
        byte-identical, so :func:`peek_state` still classifies it as a
        completed run and a later scan can rotate it. Returns the
        rotated path; idempotent on an already-rotated journal.
        """
        self.close()
        if self.poisoned is not None:
            self.rotate_failures += 1
            raise JournalError(
                f"{self.path}: refusing to rotate a poisoned journal "
                f"({self.poisoned})"
            )
        if self.path.suffix == DONE_SUFFIX:
            return self.path
        target = self.path.with_suffix(DONE_SUFFIX)
        crash_point("journal.rotate.pre")
        try:
            self._io.replace(self.path, target)
        except OSError as exc:
            self.rotate_failures += 1
            raise JournalError(
                f"{self.path}: rotation rename failed ({exc}); the "
                "completed journal is intact and still classifies as "
                "complete"
            ) from exc
        self._dir_barrier(target.parent)
        self.path = target
        crash_point("journal.rotate.post")
        return target


class JournalDir:
    """A directory of per-session journals, one file per session.

    File names are ``{role}-{protocol}-{session_id:016x}.wal`` while a
    run is live and ``.done`` once rotated, so recovery is a glob, not
    a database.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = True,
        io: JournalIO | None = None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.io = io
        self.path.mkdir(parents=True, exist_ok=True)

    def path_for(self, role: str, protocol: str, session_id: int) -> Path:
        """The live journal path for one ``(role, protocol, session)``."""
        return self.path / f"{role}-{protocol}-{session_id:016x}{WAL_SUFFIX}"

    def open_session(
        self, role: str, protocol: str, session_id: int
    ) -> SessionJournal:
        """Open (or create) the journal for one session.

        A fresh journal gets its ``open`` and ``session_id`` records
        written immediately; an existing one is returned as-is (use
        :func:`recover_sender_session` / :func:`recover_receiver_session`
        to resume it).
        """
        journal = SessionJournal(
            self.path_for(role, protocol, session_id),
            fsync=self.fsync,
            io=self.io,
        )
        if not journal.records:
            journal.record_open(role, protocol)
            journal.record_meta("session_id", session_id)
        return journal

    def incomplete(
        self, role: str | None = None, protocol: str | None = None
    ) -> list[Path]:
        """Live (un-rotated) journal paths, oldest first.

        Filters by role and/or protocol when given. A ``*.wal`` whose
        journaled run already completed (crash between the completion
        record and the rotation) is excluded - recovering it would be
        a no-op.

        The scan is **strictly read-only** (:func:`peek_state`): it
        never repairs a torn tail, so it is safe to run while other
        threads or processes are appending to journals in the same
        directory - a half-flushed append just makes that journal look
        one record shorter.
        """
        prefix = f"{role}-" if role else ""
        if role and protocol:
            prefix = f"{role}-{protocol}-"
        out = []
        for path in sorted(
            self.path.glob(f"*{WAL_SUFFIX}"), key=lambda p: p.stat().st_mtime
        ):
            if prefix and not path.name.startswith(prefix):
                continue
            try:
                state = peek_state(path)
            except JournalError:
                continue  # unreadable: leave it for forensics
            if state is None or state.complete:
                continue
            if protocol and state.protocol != protocol:
                continue
            out.append(path)
        return out


@dataclass
class JournalState:
    """The parsed, validated content of one session journal.

    ``inbound``/``outbound`` hold *frames*: whole-round payloads for a
    run journaled without chunking, individual chunk / chunk-end frames
    for one journaled with ``chunk_size`` set (recorded in the
    ``chunk_size`` meta record). A round is durable only once its
    closing frame made it to disk.
    """

    role: str
    protocol: str
    session_id: int | None = None
    params_wire: tuple | None = None
    chunk_size: int | None = None
    inbound: list[bytes] = field(default_factory=list)
    outbound: list[bytes] = field(default_factory=list)
    complete: bool = False


def peek_state(path: str | Path) -> JournalState | None:
    """Read-only parse of one journal file on disk.

    Unlike opening a :class:`SessionJournal` (which truncates a torn
    tail and takes an append handle - a *repair*, only safe for the
    journal's owner), this reads bytes and nothing else, so it can be
    run against a journal another process - or another thread of this
    process - is actively appending to. A torn or half-flushed tail is
    simply ignored: the returned state reflects every intact record
    before it. Returns ``None`` for a journal with no intact records
    yet (crash mid-creation) - nothing to recover or resume.

    Raises:
        JournalError: unreadable file, foreign header, or records that
            fail :func:`replay_state` validation.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"{path}: unreadable ({exc})") from exc
    records, _good_end = SessionJournal._scan_bytes(data, path)
    if not records:
        return None
    return _fold_state(records, path)


def replay_state(journal: SessionJournal) -> JournalState:
    """Validate a journal's records and fold them into a state.

    Raises:
        JournalError: on an empty journal, a missing/foreign ``open``
            record, out-of-order round indices, or records after the
            completion marker - all signs the file is not a journal
            this code wrote.
    """
    if not journal.records:
        raise JournalError(f"{journal.path}: empty journal")
    return _fold_state(journal.records, journal.path)


def _fold_state(records: list[tuple], path: Path) -> JournalState:
    """Fold already-scanned records into a validated state."""
    head = records[0]
    if head[0] != "open" or len(head) != 4:
        raise JournalError(f"{path}: missing open record")
    _, version, role, protocol = head
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: journal version {version!r}, "
            f"this code reads {JOURNAL_VERSION}"
        )
    if role not in ("sender", "receiver") or not isinstance(protocol, str):
        raise JournalError(f"{path}: malformed open record")
    state = JournalState(role=role, protocol=protocol)
    for record in records[1:]:
        tag = record[0]
        if state.complete:
            raise JournalError(f"{path}: records after completion")
        if tag == "meta" and len(record) == 3:
            key, value = record[1], record[2]
            if key == "session_id":
                state.session_id = value
            elif key == "params":
                state.params_wire = tuple(value)
            elif key == "chunk_size":
                if not isinstance(value, int) or value < 1:
                    raise JournalError(
                        f"{path}: malformed chunk_size record {value!r}"
                    )
                state.chunk_size = value
        elif tag in ("in", "out") and len(record) == 3:
            index, data = record[1], record[2]
            cache = state.inbound if tag == "in" else state.outbound
            if index != len(cache) or not isinstance(data, bytes):
                raise JournalError(
                    f"{path}: {tag} record {index!r} out of order "
                    f"(expected {len(cache)})"
                )
            cache.append(data)
        elif tag == "done" and len(record) == 1:
            state.complete = True
        else:
            raise JournalError(f"{path}: unknown record {tag!r}")
    return state


def _round_frames(machine: Any, rnd: Any, chunk_size: int | None) -> list:
    """The full frame sequence one outbound round puts on the wire.

    Mirrors the session layer's frame construction exactly: one
    whole-round payload frame, or - when ``chunk_size`` chunks this
    round - its chunk frames closed by a chunk-end frame.
    """
    if chunk_size is not None and rnd.chunkable:
        payloads = list(machine.produce_chunks(rnd, chunk_size))
        frames = [
            serialization.chunk_frame(i, p) for i, p in enumerate(payloads)
        ]
        frames.append(serialization.chunk_end_frame(len(payloads)))
        return frames
    return [machine.produce(rnd).to_wire()]


def _replay_machine(
    machine: Any,
    spec: Any,
    emits: str,
    in_frames: list,
    out_bytes: list,
    path: Path,
    chunk_size: int | None = None,
    journal: SessionJournal | None = None,
) -> tuple[list[int], list[int]]:
    """Walk the round schedule feeding journaled frames to a machine.

    ``emits`` is the role letter (``"S"``/``"R"``) of the rounds this
    party produces; ``in_frames`` holds the decoded inbound frames and
    ``out_bytes`` the encoded outbound ones, exactly as journaled.
    Every outbound round with at least one journaled frame is
    recomputed in full and compared byte-for-byte against the journal -
    the recovery invariant - so a divergent rng seed, changed input or
    different ``chunk_size`` raises :class:`JournalError` instead of
    resuming into a forked run. A round whose tail frames were lost to
    the crash is completed from the recomputation: the missing frames
    are appended to ``out_bytes`` (and to ``journal``, when given) so
    the journal again covers whole rounds. An inbound round cut short
    mid-chunk stays unconsumed - the live session resumes receiving it
    at the first missing frame.

    Returns ``(in_bounds, out_bounds)``: the cumulative frame count at
    each fully restored round boundary, i.e. the session's resume
    cursor at chunk granularity.
    """
    machine.ensure_state()
    in_pos = out_pos = 0
    in_bounds: list[int] = []
    out_bounds: list[int] = []
    stalled_inbound = False
    for rnd in spec.rounds:
        try:
            if rnd.source == emits:
                if out_pos >= len(out_bytes):
                    break
                frames = _round_frames(machine, rnd, chunk_size)
                for offset, frame in enumerate(frames):
                    encoded = serialization.encode(frame)
                    pos = out_pos + offset
                    if pos < len(out_bytes):
                        if out_bytes[pos] != encoded:
                            raise JournalError(
                                f"{path}: replay of round {rnd.name!r} "
                                "diverges from the journal (different rng "
                                "seed, input data, or chunk size?)"
                            )
                    else:
                        out_bytes.append(encoded)
                        if journal is not None:
                            journal.record_outbound(pos, encoded)
                out_pos += len(frames)
                out_bounds.append(out_pos)
            else:
                if in_pos >= len(in_frames):
                    break
                status, payload, used = serialization.fold_chunk_frames(
                    in_frames[in_pos:]
                )
                if status == "partial":
                    # The crash cut this round short mid-chunk: its
                    # frames stay buffered, the round stays pending.
                    stalled_inbound = True
                    in_pos = len(in_frames)
                    break
                if status == "single":
                    machine.consume(rnd, payload)
                else:
                    machine.consume_chunks(rnd, payload)
                in_pos += used
                in_bounds.append(in_pos)
        except JournalError:
            raise
        except Exception as exc:
            # Corrupt-but-CRC-valid payloads surface here as whatever
            # the machine throws; recovery's contract is JournalError.
            raise JournalError(
                f"{path}: journaled round {rnd.name!r} does not replay "
                f"({exc!r})"
            ) from exc
    if in_pos < len(in_frames) or (
        out_pos < len(out_bytes) and not stalled_inbound
    ):
        raise JournalError(
            f"{path}: journal holds more frames than the "
            f"{spec.name!r} schedule admits at this cursor"
        )
    if out_pos < len(out_bytes):
        raise JournalError(
            f"{path}: outbound frames journaled for a round whose "
            "inbound predecessor never completed - not a journal this "
            "code wrote"
        )
    return in_bounds, out_bounds


def _open(
    journal: SessionJournal | str | Path,
    fsync: bool,
    io: JournalIO | None = None,
) -> SessionJournal:
    if isinstance(journal, SessionJournal):
        return journal
    return SessionJournal(journal, fsync=fsync, io=io)


def _decode_all(payloads: Iterable[bytes], path: Path) -> list[Any]:
    """Decode journaled wire payloads; JournalError on garbage.

    A record can pass its CRC (it was written whole) yet hold bytes
    that are not a serialized round - e.g. a foreign tool wrote the
    file. That must surface as :class:`JournalError`, recovery's one
    failure type, not leak :class:`ValueError` to callers.
    """
    out = []
    for index, payload in enumerate(payloads):
        try:
            out.append(serialization.decode(payload))
        except ValueError as exc:
            raise JournalError(
                f"{path}: journaled round payload {index} does not "
                f"decode ({exc})"
            ) from exc
    return out


def recover_sender_session(
    journal: SessionJournal | str | Path,
    params: Any,
    make_sender: Callable[[], Any],
    config: Any = None,
    rng: Any = None,
    recorder: Any = None,
    fsync: bool = True,
    chunk_size: int | None = None,
    io: JournalIO | None = None,
) -> Any:
    """Rebuild a :class:`~repro.net.session.SenderSession` from disk.

    ``make_sender`` must be the same deterministic factory (same data,
    same params, same rng seed) the crashed process used, and
    ``chunk_size`` must match the journaled run's - replay verifies
    both byte-for-byte. The returned session holds the open journal and
    resumes appending to it; hand it to the usual ``run(accept)`` loop
    and the reconnecting client is served from the exact
    ``(round, chunk)`` cursor the crash interrupted.
    """
    from .session import SenderSession

    journal = _open(journal, fsync, io)
    state = replay_state(journal)
    if state.role != "sender":
        raise JournalError(f"{journal.path}: not a sender journal")
    if state.chunk_size != chunk_size:
        raise JournalError(
            f"{journal.path}: journaled with chunk_size="
            f"{state.chunk_size}, recovering with chunk_size={chunk_size}"
        )
    session = SenderSession(
        state.protocol,
        params,
        make_sender,
        config=config,
        rng=rng,
        recorder=recorder,
        journal=journal,
        chunk_size=chunk_size,
    )
    journaled_sends = len(state.outbound)
    session._session_id = state.session_id
    session._inbound = _decode_all(state.inbound, journal.path)
    session._complete = state.complete
    machine = session._ensure_machine()
    in_bounds, out_bounds = _replay_machine(
        machine, session.spec, "S",
        session._inbound, state.outbound, journal.path,
        chunk_size=chunk_size, journal=journal,
    )
    # state.outbound now covers whole rounds (the replay re-journaled
    # any tail frames the crash cut off).
    session._outbound = _decode_all(state.outbound, journal.path)
    session._attempted_sends = set(range(journaled_sends))
    session._in_rounds = in_bounds
    session._out_rounds = out_bounds
    session.stats.rounds_recovered = len(in_bounds) + len(out_bounds)
    return session


def recover_receiver_session(
    journal: SessionJournal | str | Path,
    make_receiver: Callable[[Any], Any],
    config: Any = None,
    rng: Any = None,
    recorder: Any = None,
    fsync: bool = True,
    chunk_size: int | None = None,
    io: JournalIO | None = None,
) -> Any:
    """Rebuild a :class:`~repro.net.session.ReceiverSession` from disk.

    The journal supplies the session id (so the reconnect routes to
    the same server-side session) and the public parameters from the
    original welcome; ``make_receiver`` is the usual params-taking
    factory and must be seed-deterministic, and ``chunk_size`` must
    match the journaled run's - replay verifies both.
    """
    from .session import ReceiverSession

    journal = _open(journal, fsync, io)
    state = replay_state(journal)
    if state.role != "receiver":
        raise JournalError(f"{journal.path}: not a receiver journal")
    if state.session_id is None:
        raise JournalError(f"{journal.path}: no session id journaled")
    if state.chunk_size != chunk_size:
        raise JournalError(
            f"{journal.path}: journaled with chunk_size="
            f"{state.chunk_size}, recovering with chunk_size={chunk_size}"
        )
    session = ReceiverSession(
        state.protocol,
        make_receiver,
        config=config,
        rng=rng,
        session_id=state.session_id,
        recorder=recorder,
        journal=journal,
        chunk_size=chunk_size,
    )
    journaled_sends = len(state.outbound)
    session._params_wire = state.params_wire
    session._inbound = _decode_all(state.inbound, journal.path)
    if state.params_wire is None:
        if state.inbound or state.outbound:
            raise JournalError(
                f"{journal.path}: round payloads journaled before the "
                "public parameters - not a journal this code wrote"
            )
        session._outbound = []
    else:
        machine = session._ensure_machine()
        in_bounds, out_bounds = _replay_machine(
            machine, session.spec, "R",
            session._inbound, state.outbound, journal.path,
            chunk_size=chunk_size, journal=journal,
        )
        session._outbound = _decode_all(state.outbound, journal.path)
        session._in_rounds = in_bounds
        session._out_rounds = out_bounds
        session.stats.rounds_recovered = len(in_bounds) + len(out_bounds)
    session._attempted_sends = set(range(journaled_sends))
    return session
