"""On-disk encrypted-catalog cache for repeated queries.

A party's expensive per-query work — hashing its values and raising
each hash to its secret exponent — depends only on (value set, cipher
key, public params).  This module persists that state so a process
restart resumes a query series without redoing the O(|V|) modexp
setup: each entry stores the party's cipher key(s) and, per value, the
hash and its encryption(s), keyed by ``(table digest, key fingerprint,
protocol)``.

The file format mirrors the session journal's discipline
(:mod:`repro.net.journal`): a magic + version header, then CRC-sealed
length-prefixed records, every byte written through the
:class:`~repro.net.diskfaults.JournalIO` seam so seeded disk faults
are injectable, fsync'd before an entry is advertised as durable, and
torn tails truncated on open.  Mutations append ``add``/``del`` delta
records and then atomically re-key the file (``os.replace`` +
directory fsync) to the digest of the new table, so lookups always key
on the *current* table contents and a crash between append and rename
leaves the old entry intact.

Security note (cache-key hygiene, detailed in ``docs/PROTOCOLS.md``):
entries contain the party's **raw secret keys** — that is what makes
cached ciphertexts reusable.  The cache directory is created with mode
``0o700`` and must remain private to the party; sharing it is
equivalent to publishing the keys.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Mapping

from ..crypto.commutative import key_fingerprint
from ..protocols.parties import PartyCache, PublicParams
from .diskfaults import JournalIO
from .serialization import decode, encode

__all__ = [
    "CATALOG_MAGIC",
    "CATALOG_VERSION",
    "CatalogCacheError",
    "CacheEntry",
    "CatalogCache",
    "table_digest",
]

CATALOG_VERSION = 1
CATALOG_MAGIC = b"RPCC" + struct.pack(">H", CATALOG_VERSION)

_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")


class CatalogCacheError(Exception):
    """A cache entry is unreadable or inconsistent (corruption, key
    mismatch, params mismatch).  Callers treat this as a miss."""


def table_digest(data: Any) -> str:
    """A canonical hex digest of a party's table contents.

    Accepts the same shapes the party factories do: a mapping (ext
    payloads / amounts) digests as sorted ``(value, payload)`` pairs, a
    plain iterable as its sorted occurrence list (multiplicities kept,
    so multiset tables digest distinctly).  Uses the wire encoding for
    canonicalization, so equal tables digest equally across processes.
    """
    import hashlib

    if isinstance(data, Mapping):
        items = sorted(data.items(), key=lambda kv: repr(kv[0]))
        payload = ("map", [list(kv) for kv in items])
    else:
        payload = ("seq", sorted(data, key=repr))
    return hashlib.sha256(encode(payload)).hexdigest()


@dataclass
class CacheEntry:
    """One decoded cache entry: keys plus per-value crypto state."""

    digest: str
    protocol: str
    params: PublicParams
    keys: tuple
    entries: dict[Hashable, tuple]
    path: Path

    @property
    def fingerprint(self) -> str:
        """The key fingerprint the entry is keyed under."""
        return key_fingerprint(self.keys, self.params.p)

    def party_cache(self) -> PartyCache:
        """The entry as a :class:`PartyCache` ready for injection."""
        return PartyCache(keys=self.keys, entries=dict(self.entries))


def _record(payload: Any) -> bytes:
    """One CRC-sealed record: ``u32 len || payload || u32 crc32``."""
    raw = encode(payload)
    return _LEN.pack(len(raw)) + raw + _CRC.pack(zlib.crc32(raw))


def _scan_records(data: bytes) -> tuple[list[Any], int]:
    """Decode records after the magic; returns (records, good_end).

    Stops at the first torn or corrupt tail — everything before it is
    intact (CRC-verified), mirroring the journal's recovery scan.
    """
    records: list[Any] = []
    offset = good_end = len(CATALOG_MAGIC)
    while offset < len(data):
        if offset + _LEN.size > len(data):
            break
        (length,) = _LEN.unpack_from(data, offset)
        end = offset + _LEN.size + length + _CRC.size
        if end > len(data):
            break
        raw = data[offset + _LEN.size : offset + _LEN.size + length]
        (crc,) = _CRC.unpack_from(data, offset + _LEN.size + length)
        if zlib.crc32(raw) != crc:
            break
        records.append(decode(raw))
        offset = good_end = end
    return records, good_end


class CatalogCache:
    """Directory of persisted encrypted-catalog entries.

    One file per ``(table digest, key fingerprint, protocol)``; the
    digest and protocol name the file, the fingerprint is verified
    against the stored keys on load.  All I/O goes through the
    injected :class:`JournalIO`, so the disk-fault harness can attack
    every write, fsync and rename.
    """

    def __init__(
        self,
        root: str | Path,
        io: JournalIO | None = None,
        fsync: bool = True,
    ):
        self.root = Path(root)
        self.io = io or JournalIO()
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True, mode=0o700)

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def path_for(self, digest: str, protocol: str) -> Path:
        """The entry file for a table digest + protocol."""
        return self.root / f"{digest[:32]}.{protocol}.cat"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def lookup(self, digest: str, protocol: str) -> CacheEntry | None:
        """Load the entry for ``(digest, protocol)``; ``None`` on miss.

        Corrupt headers raise :class:`CatalogCacheError`; a torn tail
        (crash mid-append) is truncated away and the intact prefix
        served, matching the journal's recovery semantics.
        """
        path = self.path_for(digest, protocol)
        if not path.exists():
            return None
        entry = self._load(path)
        if entry.digest != digest or entry.protocol != protocol:
            raise CatalogCacheError(
                f"cache entry {path.name} header names "
                f"({entry.digest[:12]}…, {entry.protocol}), expected "
                f"({digest[:12]}…, {protocol})"
            )
        return entry

    def _load(self, path: Path) -> CacheEntry:
        data = path.read_bytes()
        if data[: len(CATALOG_MAGIC)] != CATALOG_MAGIC:
            raise CatalogCacheError(f"{path.name}: bad catalog-cache magic")
        records, good_end = _scan_records(data)
        if good_end < len(data):
            # Torn tail from a crash mid-append: repair like the
            # journal does, keeping the verified prefix.
            self.io.truncate(path, good_end)
        if not records:
            raise CatalogCacheError(f"{path.name}: no intact header record")
        header = records[0]
        if not (isinstance(header, tuple) and header[0] == "header"):
            raise CatalogCacheError(f"{path.name}: first record not a header")
        _, digest, protocol, params_wire, keys, fingerprint = header
        params = PublicParams.from_wire(params_wire)
        if key_fingerprint(keys, params.p) != fingerprint:
            raise CatalogCacheError(
                f"{path.name}: key fingerprint mismatch (corrupt or foreign keys)"
            )
        entries: dict[Hashable, tuple] = {}
        for record in records[1:]:
            kind = record[0]
            if kind == "add":
                _, value, hash_, ys = record
                entries[value] = (hash_, tuple(ys))
            elif kind == "del":
                entries.pop(record[1], None)
            else:
                raise CatalogCacheError(
                    f"{path.name}: unknown record kind {kind!r}"
                )
        return CacheEntry(
            digest=digest,
            protocol=protocol,
            params=params,
            keys=tuple(keys),
            entries=entries,
            path=path,
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def store(
        self,
        digest: str,
        protocol: str,
        params: PublicParams,
        keys: tuple,
        entries: Mapping[Hashable, tuple],
    ) -> CacheEntry:
        """Durably write a fresh entry (atomic: tmp + rename + dir fsync)."""
        path = self.path_for(digest, protocol)
        fingerprint = key_fingerprint(keys, params.p)
        tmp = path.with_suffix(path.suffix + ".tmp")
        fh = self.io.open_append(tmp)
        try:
            if fh.tell() > 0:  # leftover tmp from an earlier crash
                fh.close()
                tmp.unlink()
                fh = self.io.open_append(tmp)
            self.io.write(fh, CATALOG_MAGIC)
            self.io.write(
                fh,
                _record(
                    (
                        "header",
                        digest,
                        protocol,
                        params.to_wire(),
                        tuple(int(k) for k in keys),
                        fingerprint,
                    )
                ),
            )
            for value in sorted(entries, key=repr):
                hash_, ys = entries[value]
                self.io.write(
                    fh,
                    _record(
                        ("add", value, int(hash_), tuple(int(y) for y in ys))
                    ),
                )
            self.io.flush(fh)
            if self.fsync:
                self.io.fsync(fh)
        finally:
            fh.close()
        self.io.replace(tmp, path)
        if self.fsync:
            self.io.fsync_dir(self.root)
        return CacheEntry(
            digest=digest,
            protocol=protocol,
            params=params,
            keys=tuple(keys),
            entries={v: (h, tuple(ys)) for v, (h, ys) in entries.items()},
            path=path,
        )

    def append_delta(
        self,
        entry: CacheEntry,
        new_digest: str,
        adds: Mapping[Hashable, tuple],
        dels: Any = (),
    ) -> CacheEntry:
        """Append delta records to an entry and re-key it to the table's
        new digest.

        The appends are fsync'd before the rename, so a crash leaves
        either the fully-updated entry under the new name or the old
        entry (possibly with a torn tail, repaired on next load) under
        the old one — never a renamed-but-unwritten entry.
        """
        fh = self.io.open_append(entry.path)
        try:
            for value in sorted(adds, key=repr):
                hash_, ys = adds[value]
                self.io.write(
                    fh,
                    _record(
                        ("add", value, int(hash_), tuple(int(y) for y in ys))
                    ),
                )
            for value in dels:
                self.io.write(fh, _record(("del", value)))
            self.io.flush(fh)
            if self.fsync:
                self.io.fsync(fh)
        finally:
            fh.close()
        new_path = self.path_for(new_digest, entry.protocol)
        # The header still names the original digest; rewrite the file
        # under the new key so lookups stay consistent.  Rewriting via
        # store() also compacts away superseded add/del churn.
        for value in dels:
            entry.entries.pop(value, None)
        entry.entries.update(
            {v: (h, tuple(ys)) for v, (h, ys) in adds.items()}
        )
        updated = self.store(
            new_digest,
            entry.protocol,
            entry.params,
            entry.keys,
            entry.entries,
        )
        if new_path != entry.path and entry.path.exists():
            os.unlink(entry.path)
            if self.fsync:
                self.io.fsync_dir(self.root)
        return updated
