"""Communication substrate: wire format, accounted channels, views and
protocol runners (the "Secure Communication" box of Figure 1)."""

from .channel import (
    Channel,
    ChannelClosed,
    Endpoint,
    LinkModel,
    T1_LINE,
    duplex_pair,
)
from .runner import ProtocolRun, ThreePartyRun
from .serialization import decode, encode, encoded_size
from .tcp import SocketEndpoint
from .transcript import ReceivedMessage, View

__all__ = [
    "Channel",
    "ChannelClosed",
    "Endpoint",
    "LinkModel",
    "T1_LINE",
    "duplex_pair",
    "ProtocolRun",
    "ThreePartyRun",
    "encode",
    "decode",
    "encoded_size",
    "SocketEndpoint",
    "View",
    "ReceivedMessage",
]
