"""Communication substrate: wire format, accounted channels, views,
protocol runners (the "Secure Communication" box of Figure 1), and the
fault-tolerant session layer the paper's idealized channel leaves out."""

from .channel import (
    Channel,
    ChannelClosed,
    Endpoint,
    LinkModel,
    T1_LINE,
    duplex_pair,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultyEndpoint,
    faulty_duplex_pair,
)
from .journal import (
    JournalDir,
    JournalError,
    SessionJournal,
    peek_state,
    recover_receiver_session,
    recover_sender_session,
)
from .runner import ProtocolRun, ThreePartyRun
from .serialization import decode, encode, encoded_size
from .server import ProtocolOffer, ProtocolServer
from .session import (
    SESSION_VERSION,
    HandshakeError,
    ReceiverSession,
    RetryPolicy,
    SenderSession,
    ServerBusyError,
    SessionAborted,
    SessionConfig,
    SessionEndpoint,
    SessionError,
    SessionStats,
)
from .tcp import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLarge,
    SocketEndpoint,
    connect,
    connect_resumable_receiver,
    serve,
    serve_resumable_sender,
)
from .transcript import ReceivedMessage, View

__all__ = [
    "Channel",
    "ChannelClosed",
    "Endpoint",
    "LinkModel",
    "T1_LINE",
    "duplex_pair",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyEndpoint",
    "faulty_duplex_pair",
    "ProtocolRun",
    "ThreePartyRun",
    "encode",
    "decode",
    "encoded_size",
    "JournalDir",
    "JournalError",
    "SessionJournal",
    "peek_state",
    "recover_sender_session",
    "recover_receiver_session",
    "ProtocolOffer",
    "ProtocolServer",
    "SESSION_VERSION",
    "HandshakeError",
    "ReceiverSession",
    "RetryPolicy",
    "SenderSession",
    "ServerBusyError",
    "SessionAborted",
    "SessionConfig",
    "SessionEndpoint",
    "SessionError",
    "SessionStats",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLarge",
    "SocketEndpoint",
    "serve",
    "connect",
    "serve_resumable_sender",
    "connect_resumable_receiver",
    "View",
    "ReceivedMessage",
]
