"""Two- and three-party protocol orchestration.

Protocols are written as plain Python driver functions that move typed
messages between party objects through :class:`~repro.net.channel.Channel`
instances, so every bit a party learns crosses an accounted wire and is
recorded in its :class:`~repro.net.transcript.View`.

:class:`ProtocolRun` bundles the channels and exposes the statistics
the benchmarks need (bytes per direction, paper-accounting codeword
counts, modelled transfer times).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .channel import Endpoint, LinkModel, T1_LINE, duplex_pair
from .transcript import View

__all__ = ["ProtocolRun", "ThreePartyRun", "run_spec"]


def run_spec(spec: Any, receiver: Any, sender: Any, run: "ProtocolRun") -> Any:
    """Drive one spec-described protocol over a run's in-memory channels.

    Interprets the spec's round schedule: each round's producing
    machine computes its typed message, every message *part* crosses
    the accounted wire separately under its historical transcript
    label, and the consuming machine reassembles the round from what
    actually arrived. Returns the receiver's answer.

    ``spec`` / ``receiver`` / ``sender`` are duck-typed (a
    :class:`~repro.protocols.spec.ProtocolSpec` and the two machines
    from :mod:`repro.protocols.parties`) so this module stays free of
    protocol-layer imports.
    """
    for rnd in spec.rounds:
        if rnd.source == "R":
            producer, consumer, ship = receiver, sender, run.to_s
        else:
            producer, consumer, ship = sender, receiver, run.to_r
        message = producer.produce(rnd)
        received = [
            ship(label, part)
            for label, part in zip(rnd.parts, message.to_parts())
        ]
        consumer.consume_parts(rnd, received)
    answer = receiver.finish()
    run.finish()
    return answer


@dataclass
class ProtocolRun:
    """Execution context for one two-party protocol run.

    Creates a duplex R<->S connection and the per-party views; the
    protocol driver sends every message through :meth:`to_s` /
    :meth:`to_r` so the run's statistics are byte-exact.
    """

    protocol: str
    r_endpoint: Endpoint = field(init=False)
    s_endpoint: Endpoint = field(init=False)
    r_view: View = field(init=False)
    s_view: View = field(init=False)
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: float | None = None

    def __post_init__(self) -> None:
        self.r_endpoint, self.s_endpoint = duplex_pair("R", "S")
        self.r_view = View(party="R", protocol=self.protocol)
        self.s_view = View(party="S", protocol=self.protocol)

    # ------------------------------------------------------------------
    # Message movement (R -> S and S -> R)
    # ------------------------------------------------------------------
    def to_s(self, step: str, payload: Any) -> Any:
        """Ship ``payload`` from R to S; returns what S received."""
        self.r_endpoint.send(payload)
        return self.s_view.record(step, self.s_endpoint.recv())

    def to_r(self, step: str, payload: Any) -> Any:
        """Ship ``payload`` from S to R; returns what R received."""
        self.s_endpoint.send(payload)
        return self.r_view.record(step, self.r_endpoint.recv())

    def finish(self) -> None:
        """Freeze the run's elapsed-time clock."""
        self.finished_at = time.perf_counter()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        return end - self.started_at

    @property
    def bytes_r_to_s(self) -> int:
        return self.r_endpoint.outbound.bytes_sent

    @property
    def bytes_s_to_r(self) -> int:
        return self.s_endpoint.outbound.bytes_sent

    @property
    def total_bytes(self) -> int:
        return self.bytes_r_to_s + self.bytes_s_to_r

    @property
    def total_bits(self) -> int:
        return 8 * self.total_bytes

    def transfer_time(self, link: LinkModel = T1_LINE) -> float:
        """Modelled time to move this run's traffic over ``link``."""
        messages = (
            self.r_endpoint.outbound.messages_sent
            + self.s_endpoint.outbound.messages_sent
        )
        return link.transfer_time(self.total_bits, messages)


@dataclass
class ThreePartyRun:
    """R, S and a researcher T (the medical application's recipient).

    The modified intersection-size protocol of Section 6.2.2 sends the
    doubly encrypted sets to ``T`` instead of back to R and S.
    """

    protocol: str
    r_to_s: ProtocolRun = field(init=False)
    t_view: View = field(init=False)
    r_to_t: Endpoint = field(init=False)
    s_to_t: Endpoint = field(init=False)
    _t_from_r: Endpoint = field(init=False)
    _t_from_s: Endpoint = field(init=False)

    def __post_init__(self) -> None:
        self.r_to_s = ProtocolRun(protocol=self.protocol)
        self.t_view = View(party="T", protocol=self.protocol)
        self.r_to_t, self._t_from_r = duplex_pair("R", "T")
        self.s_to_t, self._t_from_s = duplex_pair("S", "T")

    def r_sends_t(self, step: str, payload: Any) -> Any:
        """Ship ``payload`` from R to the researcher T."""
        self.r_to_t.send(payload)
        return self.t_view.record(step, self._t_from_r.recv())

    def s_sends_t(self, step: str, payload: Any) -> Any:
        """Ship ``payload`` from S to the researcher T."""
        self.s_to_t.send(payload)
        return self.t_view.record(step, self._t_from_s.recv())

    @property
    def total_bytes(self) -> int:
        return (
            self.r_to_s.total_bytes
            + self.r_to_t.outbound.bytes_sent
            + self.s_to_t.outbound.bytes_sent
        )

    @property
    def total_bits(self) -> int:
        return 8 * self.total_bytes
