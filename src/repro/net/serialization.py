"""Deterministic wire format for protocol messages.

Every message the protocols exchange is built from big integers, byte
strings, strings, booleans, ``None`` and (possibly nested) sequences.
The encoding is a compact, length-prefixed tagged format; its only
purpose is byte-exact communication accounting (Section 6's analysis is
in bits on the wire), so there is no versioning or compression.

Big integers are encoded with a 4-byte length prefix followed by
big-endian magnitude - i.e. a ``k``-bit group element costs
``ceil(k/8) + 5`` bytes. The cost-model benchmarks use the *paper's*
accounting (exactly ``k`` bits per codeword); the channel reports both.

Chunked rounds: a streamed round is shipped as a sequence of
``("chunk", index, payload)`` frames closed by a ``("chunk-end",
count)`` frame, built and recognized by the helpers below. No protocol
round payload is a tuple whose first element is one of those tag
strings, so receivers can tell a chunked round from a whole-round
frame by inspection - the legacy single-frame wire format needs no
version bump.
"""

from __future__ import annotations

import struct
from typing import Any

__all__ = [
    "encode",
    "decode",
    "encoded_size",
    "CHUNK_TAG",
    "CHUNK_END_TAG",
    "chunk_frame",
    "chunk_end_frame",
    "is_chunk_frame",
    "is_chunk_end",
    "fold_chunk_frames",
]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_NEG_INT = b"J"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"


def encode(obj: Any) -> bytes:
    """Serialize a message object to bytes."""
    if obj is None:
        return _TAG_NONE
    if obj is True:
        return _TAG_TRUE
    if obj is False:
        return _TAG_FALSE
    if isinstance(obj, int):
        tag = _TAG_INT if obj >= 0 else _TAG_NEG_INT
        magnitude = abs(obj)
        body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        return tag + struct.pack(">I", len(body)) + body
    if isinstance(obj, bytes):
        return _TAG_BYTES + struct.pack(">I", len(obj)) + obj
    if isinstance(obj, str):
        body = obj.encode("utf-8")
        return _TAG_STR + struct.pack(">I", len(body)) + body
    if isinstance(obj, (list, tuple)):
        tag = _TAG_LIST if isinstance(obj, list) else _TAG_TUPLE
        parts = [encode(item) for item in obj]
        payload = b"".join(parts)
        return tag + struct.pack(">I", len(obj)) + payload
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def encoded_size(obj: Any) -> int:
    """Number of bytes :func:`encode` would produce."""
    return len(encode(obj))


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`.

    Raises:
        ValueError: on any malformed input (unknown tag, truncated
            frame, bad UTF-8, trailing bytes) - a hostile or corrupted
            wire never raises anything else.
    """
    try:
        obj, offset = _decode_at(data, 0)
    except ValueError:
        raise
    except (struct.error, UnicodeDecodeError, IndexError, RecursionError) as exc:
        raise ValueError(f"malformed wire data: {exc}") from exc
    if offset > len(data):
        raise ValueError("truncated wire data")
    if offset != len(data):
        raise ValueError(f"trailing bytes after message ({len(data) - offset})")
    return obj


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT, _TAG_NEG_INT):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        value = int.from_bytes(data[offset : offset + length], "big")
        offset += length
        return (value if tag == _TAG_INT else -value), offset
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        return data[offset : offset + length], offset + length
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    raise ValueError(f"unknown wire tag {tag!r} at offset {offset - 1}")


# ----------------------------------------------------------------------
# Chunked round framing
# ----------------------------------------------------------------------
#: Frame tag of one chunk of a streamed round.
CHUNK_TAG = "chunk"
#: Frame tag closing a streamed round (carries the chunk count).
CHUNK_END_TAG = "chunk-end"


def chunk_frame(index: int, payload: Any) -> tuple:
    """Wrap one chunk payload as the ``index``-th frame of its round."""
    return (CHUNK_TAG, index, payload)


def chunk_end_frame(count: int) -> tuple:
    """The terminal frame of a chunked round (total chunk count)."""
    return (CHUNK_END_TAG, count)


def is_chunk_frame(obj: Any) -> bool:
    """Whether a decoded frame is a ``("chunk", index, payload)`` triple."""
    return (
        isinstance(obj, tuple)
        and len(obj) == 3
        and obj[0] == CHUNK_TAG
        and isinstance(obj[1], int)
    )


def is_chunk_end(obj: Any) -> bool:
    """Whether a decoded frame is a ``("chunk-end", count)`` pair."""
    return (
        isinstance(obj, tuple)
        and len(obj) == 2
        and obj[0] == CHUNK_END_TAG
        and isinstance(obj[1], int)
    )


def fold_chunk_frames(frames: list) -> tuple[str, Any, int]:
    """Classify a round's frame prefix.

    ``frames`` is the (possibly still growing) list of data frames
    belonging to one round, in arrival order. Returns
    ``(status, payload, used)``:

    * ``("single", wire, 1)`` - a legacy whole-round frame;
    * ``("chunked", payloads, n)`` - a complete chunk sequence whose
      ``chunk-end`` closed after ``n`` frames; ``payloads`` are the
      chunk payloads in order;
    * ``("partial", None, 0)`` - a chunk sequence still missing its
      ``chunk-end`` (or no frames yet): keep receiving.

    Raises:
        ValueError: out-of-order chunk indices, a count mismatch in the
            ``chunk-end``, or a whole-round frame mixed into a chunk
            sequence - framing violations no retransmit can repair.
    """
    if not frames:
        return ("partial", None, 0)
    first = frames[0]
    if not is_chunk_frame(first) and not is_chunk_end(first):
        return ("single", first, 1)
    payloads = []
    for position, frame in enumerate(frames):
        if is_chunk_end(frame):
            if frame[1] != len(payloads):
                raise ValueError(
                    f"chunk-end declares {frame[1]} chunks, got {len(payloads)}"
                )
            return ("chunked", payloads, position + 1)
        if not is_chunk_frame(frame):
            raise ValueError(
                "whole-round frame interleaved with a chunk sequence"
            )
        if frame[1] != len(payloads):
            raise ValueError(
                f"chunk index {frame[1]} out of order (expected {len(payloads)})"
            )
        payloads.append(frame[2])
    return ("partial", None, 0)
