"""In-memory channels with byte-exact communication accounting.

The paper's Figure 1 assumes "standard libraries or packages for secure
communication"; what the evaluation actually needs from the transport
is (a) reliable in-order delivery between the two parties and (b) an
exact count of bits on the wire, so Section 6's communication analysis
can be checked against a real run. :class:`Channel` provides both, and
:class:`LinkModel` turns byte counts into transfer times for a
configurable link (default: the paper's T1 line, 1.544 Mbit/s).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from . import serialization

__all__ = ["LinkModel", "T1_LINE", "ChannelClosed", "Channel", "Endpoint", "duplex_pair"]


@dataclass(frozen=True)
class LinkModel:
    """A simple bandwidth/latency link model.

    Attributes:
        bandwidth_bps: usable bandwidth in bits per second.
        latency_s: one-way latency added per message.
    """

    bandwidth_bps: float = 1.544e6
    latency_s: float = 0.0

    def transfer_time(self, bits: float, messages: int = 1) -> float:
        """Seconds to push ``bits`` over the link in ``messages`` sends."""
        return bits / self.bandwidth_bps + messages * self.latency_s


#: The T1 line assumed throughout Section 6 (1.544 Mbit/s ~ 5 Gbit/hour).
T1_LINE = LinkModel(bandwidth_bps=1.544e6)


class ChannelClosed(Exception):
    """Raised when receiving from an empty, closed channel."""


@dataclass
class Channel:
    """Unidirectional FIFO message channel with byte accounting.

    Messages are serialized on send - both to count wire bytes exactly
    and to guarantee the receiving party only sees data that actually
    crossed the wire (no shared mutable state between parties).
    """

    name: str = "channel"
    bytes_sent: int = 0
    messages_sent: int = 0
    _queue: deque[bytes] = field(default_factory=deque, repr=False)
    _closed: bool = field(default=False, repr=False)

    def send(self, message: Any) -> None:
        """Serialize and enqueue one message."""
        if self._closed:
            raise ChannelClosed(f"{self.name}: send on closed channel")
        wire = serialization.encode(message)
        self.bytes_sent += len(wire)
        self.messages_sent += 1
        self._queue.append(wire)

    def recv(self) -> Any:
        """Dequeue and deserialize one message."""
        if not self._queue:
            raise ChannelClosed(f"{self.name}: receive on empty channel")
        return serialization.decode(self._queue.popleft())

    def close(self) -> None:
        """Refuse further sends (pending messages stay receivable)."""
        self._closed = True

    @property
    def bits_sent(self) -> int:
        """Wire traffic in bits."""
        return 8 * self.bytes_sent

    @property
    def pending(self) -> int:
        """Messages enqueued but not yet received."""
        return len(self._queue)


@dataclass
class Endpoint:
    """One party's view of a duplex connection."""

    outbound: Channel
    inbound: Channel

    def send(self, message: Any) -> None:
        """Send on the outbound channel."""
        self.outbound.send(message)

    def recv(self) -> Any:
        """Receive from the inbound channel."""
        return self.inbound.recv()

    @property
    def bytes_sent(self) -> int:
        return self.outbound.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self.inbound.bytes_sent

    @property
    def total_bytes(self) -> int:
        """Bytes crossing the wire in either direction."""
        return self.outbound.bytes_sent + self.inbound.bytes_sent


def duplex_pair(a_name: str = "R", b_name: str = "S") -> tuple[Endpoint, Endpoint]:
    """Two connected endpoints (``a -> b`` and ``b -> a`` channels)."""
    a_to_b = Channel(name=f"{a_name}->{b_name}")
    b_to_a = Channel(name=f"{b_name}->{a_name}")
    return (
        Endpoint(outbound=a_to_b, inbound=b_to_a),
        Endpoint(outbound=b_to_a, inbound=a_to_b),
    )
