"""Recorded protocol views, for the executable security audit.

The security proofs (Statements 2, 4, 6) argue that each party's *view*
- everything it receives plus its own randomness - can be simulated
from only the information it is allowed to learn. To make that argument
testable we record views during real protocol runs and compare them
structurally against the output of the proof's simulators
(:mod:`repro.protocols.simulators`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["ReceivedMessage", "View"]


@dataclass(frozen=True)
class ReceivedMessage:
    """One message as seen by the receiving party."""

    step: str
    payload: Any

    def signature(self) -> Any:
        """Structural signature: shape and sizes, not element values.

        Two views with the same signature carry the same *amount and
        layout* of information; whether the values themselves leak
        anything is what the simulator comparison checks.
        """
        return (self.step, _shape(self.payload))


def _shape(payload: Any) -> Any:
    if isinstance(payload, (list, tuple)):
        kind = "list" if isinstance(payload, list) else "tuple"
        inner = [_shape(item) for item in payload]
        # Collapse homogeneous sequences to (kind, length, element shape).
        if inner and all(s == inner[0] for s in inner):
            return (kind, len(inner), inner[0])
        return (kind, len(inner), tuple(inner))
    if isinstance(payload, bool):
        return "bool"
    if isinstance(payload, int):
        return "int"
    if isinstance(payload, bytes):
        return ("bytes", len(payload))
    if isinstance(payload, str):
        return "str"
    return type(payload).__name__


@dataclass
class View:
    """A party's complete view of one protocol execution."""

    party: str
    protocol: str
    received: list[ReceivedMessage] = field(default_factory=list)
    notes: dict[str, Any] = field(default_factory=dict)

    def record(self, step: str, payload: Any) -> Any:
        """Record one received message; returns the payload unchanged."""
        self.received.append(ReceivedMessage(step=step, payload=payload))
        return payload

    def signature(self) -> tuple:
        """Structural signature of the whole view."""
        return tuple(message.signature() for message in self.received)

    def payloads(self, step: str | None = None) -> Iterator[Any]:
        """All recorded payloads, optionally filtered by step label."""
        for message in self.received:
            if step is None or message.step == step:
                yield message.payload

    def flat_integers(self) -> list[int]:
        """Every integer anywhere in the view (for leak scanning)."""
        out: list[int] = []

        def walk(node: Any) -> None:
            if isinstance(node, bool):
                return
            if isinstance(node, int):
                out.append(node)
            elif isinstance(node, (list, tuple)):
                for item in node:
                    walk(item)

        for message in self.received:
            walk(message.payload)
        return out
