"""Deterministic disk-fault injection for the session journal.

:mod:`repro.net.faults` attacks the wire; this module attacks the
disk. The journal layer (:mod:`repro.net.journal`) performs every file
operation through a tiny I/O seam - :class:`JournalIO` - whose default
implementation is the real ``os`` calls with zero added overhead.
:class:`FaultyJournalIO` is the seeded drop-in that injects the
classic storage failure modes at that seam:

* **fsync error** - ``fsync`` raises ``EIO``. Per the fsyncgate rule
  the caller must treat the handle as poisoned: after a failed fsync
  the page cache state is unknowable, so the journal goes fail-stop.
* **torn write** - an append is cut at a seeded byte offset mid-record
  and then raises ``EIO``, modelling a crash (or a lying disk) that
  persists only a prefix of the record.
* **ENOSPC** - the append fails before a single byte lands.
* **rename error** - ``os.replace`` during ``.wal`` → ``.done``
  rotation fails, leaving the completed journal un-rotated.
* **directory fsync error** - the durability barrier after a create
  or rename fails; counted, surfaced in journal stats.

Every injection increments a per-class counter in
:class:`DiskFaultStats`, mirroring :class:`~repro.net.faults.FaultStats`,
so chaos tests can assert a fault actually fired. One
:class:`FaultyJournalIO` owns one RNG stream for a whole run: shared
across a :class:`~repro.net.journal.JournalDir` it keeps injecting in
sequence across crash-restart cycles, so the entire schedule stays
reproducible from a single seed.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO

__all__ = [
    "DiskFaultPlan",
    "DiskFaultStats",
    "JournalIO",
    "FaultyJournalIO",
    "FaultyFile",
]


class JournalIO:
    """The journal's file-operation seam: real ``os`` calls by default.

    :class:`~repro.net.journal.SessionJournal` routes every disk touch
    through one of these methods, so swapping in a
    :class:`FaultyJournalIO` subjects the journal to seeded storage
    faults without monkeypatching. Each method maps one-to-one onto
    the underlying OS call and raises plain :class:`OSError` on
    failure - policy (fail-stop, poisoning, counting) lives in the
    journal, not here.
    """

    def open_append(self, path: Path) -> BinaryIO:
        """Open ``path`` for binary append."""
        return open(path, "ab")

    def write(self, fh: BinaryIO, data: bytes) -> None:
        """Write ``data`` to an open handle."""
        fh.write(data)

    def flush(self, fh: BinaryIO) -> None:
        """Flush userspace buffers to the kernel."""
        fh.flush()

    def fsync(self, fh: BinaryIO) -> None:
        """Force the handle's data to stable storage."""
        os.fsync(fh.fileno())

    def truncate(self, path: Path, size: int) -> None:
        """Durably truncate ``path`` to ``size`` bytes (torn-tail repair)."""
        with open(path, "r+b") as fh:
            fh.truncate(size)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        """Fsync a directory so a create/rename in it is durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


@dataclass(frozen=True)
class DiskFaultPlan:
    """Seeded per-operation fault probabilities for journal I/O.

    Write faults are cumulative-exclusive per append (one uniform draw
    decides: torn write, else ENOSPC, else clean), so
    ``torn_write_rate + enospc_rate`` must stay at or below 1; the
    other rates are independent per operation of their class.
    ``skip`` delivers that many faultable operations cleanly before
    faults arm (scripting a fault at an exact record), and
    ``max_faults`` caps total injections so a test schedules *exactly
    N* faults regardless of how many retries follow.
    """

    seed: int = 0
    fsync_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    enospc_rate: float = 0.0
    rename_error_rate: float = 0.0
    dir_fsync_error_rate: float = 0.0
    max_faults: int | None = None
    skip: int = 0

    def __post_init__(self) -> None:
        """Validate every rate is a probability and writes sum to <= 1."""
        for name in (
            "fsync_error_rate", "torn_write_rate", "enospc_rate",
            "rename_error_rate", "dir_fsync_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name}={rate}, must be in [0, 1]")
        total = self.torn_write_rate + self.enospc_rate
        if total > 1.0:
            raise ValueError(
                f"write fault rates sum to {total}, must be in [0, 1]"
            )


@dataclass
class DiskFaultStats:
    """Per-fault-class counters for injected disk faults."""

    ops: int = 0
    torn_writes: int = 0
    enospc_errors: int = 0
    fsync_errors: int = 0
    rename_errors: int = 0
    dir_fsync_errors: int = 0

    @property
    def injected(self) -> int:
        """Total disk faults injected so far."""
        return (
            self.torn_writes + self.enospc_errors + self.fsync_errors
            + self.rename_errors + self.dir_fsync_errors
        )

    def as_dict(self) -> dict[str, int]:
        """Flat mapping for JSON benchmark records."""
        return {
            "ops": self.ops,
            "torn_writes": self.torn_writes,
            "enospc_errors": self.enospc_errors,
            "fsync_errors": self.fsync_errors,
            "rename_errors": self.rename_errors,
            "dir_fsync_errors": self.dir_fsync_errors,
        }


def _os_error(code: int, message: str) -> OSError:
    """An ``OSError`` carrying a real errno, as the kernel would raise."""
    return OSError(code, f"fault injection: {message}")


class FaultyJournalIO(JournalIO):
    """A :class:`JournalIO` that injects seeded faults per operation.

    Owns one RNG stream and one :class:`DiskFaultStats` for its whole
    lifetime - share a single instance across every journal of a run
    (via ``JournalDir(io=...)``) so the fault sequence continues across
    crash-restart cycles instead of replaying from the seed.
    """

    def __init__(
        self,
        plan: DiskFaultPlan,
        stats: DiskFaultStats | None = None,
        rng: random.Random | None = None,
    ):
        self.plan = plan
        self.stats = stats if stats is not None else DiskFaultStats()
        self.rng = rng if rng is not None else random.Random(plan.seed)

    def _armed(self) -> bool:
        """Whether faults may fire on this operation (skip/cap gates)."""
        self.stats.ops += 1
        if self.stats.ops <= self.plan.skip:
            return False
        if (
            self.plan.max_faults is not None
            and self.stats.injected >= self.plan.max_faults
        ):
            return False
        return True

    def write(self, fh: BinaryIO, data: bytes) -> None:
        """Write ``data``, or tear it mid-record, or fail with ENOSPC."""
        if self._armed():
            r = self.rng.random()
            if r < self.plan.torn_write_rate:
                self.stats.torn_writes += 1
                cut = self.rng.randrange(max(len(data), 1))
                fh.write(data[:cut])
                fh.flush()
                raise _os_error(errno.EIO, f"torn write at byte {cut}")
            if r < self.plan.torn_write_rate + self.plan.enospc_rate:
                self.stats.enospc_errors += 1
                raise _os_error(errno.ENOSPC, "no space left on device")
        fh.write(data)

    def fsync(self, fh: BinaryIO) -> None:
        """Fsync the handle, or raise ``EIO`` (the fsyncgate fault)."""
        if self._armed() and self.rng.random() < self.plan.fsync_error_rate:
            self.stats.fsync_errors += 1
            raise _os_error(errno.EIO, "fsync failed, cache state unknown")
        os.fsync(fh.fileno())

    def replace(self, src: Path, dst: Path) -> None:
        """Rename ``src`` over ``dst``, or fail leaving ``src`` intact."""
        if self._armed() and self.rng.random() < self.plan.rename_error_rate:
            self.stats.rename_errors += 1
            raise _os_error(errno.EIO, f"rename {src.name} -> {dst.name}")
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        """Fsync the directory, or fail the durability barrier."""
        if (
            self._armed()
            and self.rng.random() < self.plan.dir_fsync_error_rate
        ):
            self.stats.dir_fsync_errors += 1
            raise _os_error(errno.EIO, f"directory fsync of {path}")
        super().fsync_dir(path)


class FaultyFile:
    """A file-object wrapper routing writes through a fault injector.

    For code that holds a plain binary file handle rather than going
    through the :class:`JournalIO` seam: wraps the handle so ``write``
    and ``flush``+``fsync`` (via :meth:`sync`) inject the same seeded
    fault classes. Reads and everything else delegate untouched.
    """

    def __init__(self, fh: BinaryIO, io: FaultyJournalIO):
        self.raw = fh
        self.io = io

    def write(self, data: bytes) -> int:
        """Write through the injector; returns ``len(data)`` on success."""
        self.io.write(self.raw, data)
        return len(data)

    def flush(self) -> None:
        """Flush the wrapped handle (never faulted: userspace only)."""
        self.raw.flush()

    def sync(self) -> None:
        """Fsync through the injector (the faultable durability step)."""
        self.io.fsync(self.raw)

    def fileno(self) -> int:
        """The wrapped handle's file descriptor."""
        return self.raw.fileno()

    def close(self) -> None:
        """Close the wrapped handle."""
        self.raw.close()

    def __getattr__(self, name: str) -> Any:
        """Delegate everything else to the wrapped handle."""
        return getattr(self.raw, name)
