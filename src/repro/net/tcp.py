"""TCP transport: run the protocols as two real network endpoints.

The in-memory channels are perfect for analysis (byte-exact accounting,
recorded views); this module provides the deployment-shaped
counterpart: length-prefixed frames of the same wire format over a TCP
socket, plus serve/connect helpers that run the separable party state
machines of :mod:`repro.protocols.parties` across the connection.

Framing: each message is ``len(payload) as u32 big-endian || payload``,
where the payload is :mod:`repro.net.serialization` bytes. Frames are
bounded (:data:`DEFAULT_MAX_FRAME_BYTES`), so a corrupt or hostile
length prefix fails fast with :class:`FrameTooLarge` instead of
triggering a multi-gigabyte allocation, and every helper takes a
``timeout`` so a hung or absent peer raises instead of blocking
forever.

Two families of helpers cover all four protocols (intersection,
intersection-size, equijoin, equijoin-size):

* the plain ``serve_*``/``connect_*`` pairs speak the original
  one-shot handshake (the sender ships its
  :class:`~repro.protocols.parties.PublicParams`, the messages follow,
  any failure aborts the run);
* :func:`serve_resumable_sender`/:func:`connect_resumable_receiver`
  run the same state machines under the fault-tolerant session layer
  of :mod:`repro.net.session` - checksummed, acknowledged frames,
  retry with backoff, and resumption from the last acknowledged round
  after a dropped connection.
"""

from __future__ import annotations

import random
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

from ..protocols.parties import (
    EquijoinReceiver,
    EquijoinSender,
    EquijoinSizeReceiver,
    EquijoinSizeSender,
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
    PublicParams,
)
from . import serialization
from .session import (
    ReceiverSession,
    SenderSession,
    SessionConfig,
    SessionStats,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLarge",
    "SocketEndpoint",
    "serve_intersection_sender",
    "connect_intersection_receiver",
    "serve_intersection_size_sender",
    "connect_intersection_size_receiver",
    "serve_equijoin_sender",
    "connect_equijoin_receiver",
    "serve_equijoin_size_sender",
    "connect_equijoin_size_receiver",
    "SESSION_PROTOCOLS",
    "serve_resumable_sender",
    "connect_resumable_receiver",
]

_LEN = struct.Struct(">I")

#: Frames above this are rejected outright: no protocol message comes
#: close, so a bigger length prefix means corruption or hostility.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameTooLarge(ConnectionError):
    """A frame header declared a length beyond ``max_frame_bytes``.

    Subclasses :class:`ConnectionError` because the only safe recovery
    is tearing the connection down: after a garbled length prefix the
    byte stream can never be re-synchronized.
    """


@dataclass
class SocketEndpoint:
    """Framed, serialized messaging over a connected socket."""

    sock: socket.socket
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = field(default=0)

    def send(self, message: Any) -> None:
        """Serialize and ship one framed message."""
        payload = serialization.encode(message)
        frame = _LEN.pack(len(payload)) + payload
        self.sock.sendall(frame)
        self.bytes_sent += len(frame)
        self.messages_sent += 1

    def recv(self) -> Any:
        """Read and deserialize one framed message.

        Raises:
            FrameTooLarge: the length prefix exceeds
                ``max_frame_bytes`` (corrupt header or hostile peer).
            ConnectionError: the peer closed mid-frame.
            TimeoutError: no frame arrived within the socket timeout.
            ValueError: the payload arrived but is not valid wire data.
        """
        header = self._read_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLarge(
                f"frame declares {length} bytes, limit is "
                f"{self.max_frame_bytes} (corrupt length prefix?)"
            )
        payload = self._read_exact(length)
        self.bytes_received += _LEN.size + length
        return serialization.decode(payload)

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def settimeout(self, timeout: float | None) -> None:
        """Deadline for subsequent socket operations (None = block)."""
        self.sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket."""
        self.sock.close()


# ----------------------------------------------------------------------
# Socket plumbing shared by the serve/connect helpers
# ----------------------------------------------------------------------
def _listen(host: str, port: int, timeout: float | None) -> socket.socket:
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    listener.settimeout(timeout)
    return listener


def _accept_one(
    host: str,
    port: int,
    ready_callback,
    timeout: float | None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> SocketEndpoint:
    """Listen, announce the bound port, return the first client."""
    listener = _listen(host, port, timeout)
    try:
        if ready_callback is not None:
            ready_callback(listener.getsockname()[1])
        try:
            conn, _addr = listener.accept()
        except socket.timeout as exc:
            raise TimeoutError(
                f"no client connected within {timeout}s"
            ) from exc
    finally:
        listener.close()
    conn.settimeout(timeout)
    return SocketEndpoint(sock=conn, max_frame_bytes=max_frame_bytes)


def _dial(
    host: str,
    port: int,
    timeout: float | None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> SocketEndpoint:
    sock = socket.create_connection((host, port), timeout=timeout)
    return SocketEndpoint(sock=sock, max_frame_bytes=max_frame_bytes)


# ----------------------------------------------------------------------
# Plain one-shot runs (original handshake; any failure aborts)
# ----------------------------------------------------------------------
def _phase(recorder: Any, name: str):
    """The recorder's phase context, or a no-op when none is wired."""
    from .session import _phase as session_phase

    return session_phase(recorder, name)


def _serve_plain(
    make_sender: Callable[[], Any],
    params: PublicParams,
    host: str,
    port: int,
    ready_callback,
    timeout: float | None,
    recorder: Any = None,
) -> int:
    endpoint = _accept_one(host, port, ready_callback, timeout)
    try:
        endpoint.send(("params", params.to_wire()))
        with _phase(recorder, "s.setup"):
            sender = make_sender()
        with _phase(recorder, "s.wait_m1"):
            y_r = endpoint.recv()
        with _phase(recorder, "s.round1"):
            m2 = sender.round1(list(y_r))
        endpoint.send(m2)
        return sender.size_v_r
    finally:
        endpoint.close()


def _connect_plain(
    make_receiver: Callable[[PublicParams], Any],
    host: str,
    port: int,
    timeout: float | None,
    recorder: Any = None,
) -> Any:
    endpoint = _dial(host, port, timeout)
    try:
        tag, wire_params = endpoint.recv()
        if tag != "params":
            raise ValueError(f"unexpected handshake message {tag!r}")
        with _phase(recorder, "r.setup"):
            receiver = make_receiver(PublicParams.from_wire(tuple(wire_params)))
        with _phase(recorder, "r.round1"):
            m1 = receiver.round1()
        endpoint.send(m1)
        with _phase(recorder, "r.wait_m2"):
            m2 = endpoint.recv()
        with _phase(recorder, "r.finish"):
            return receiver.finish(m2)
    finally:
        endpoint.close()


def serve_intersection_sender(
    v_s: Sequence[Hashable],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Run party S of the intersection protocol as a TCP server.

    Blocks until one receiver has been served; returns ``|V_R|``
    (everything S learns). ``ready_callback(port)`` fires once the
    socket is listening - pass the port to the client thread/process.
    ``timeout`` bounds both the wait for a client and each socket read.
    ``engine`` selects the batch-crypto execution strategy
    (:mod:`repro.crypto.engine`); ``recorder`` collects per-phase
    metrics (:class:`repro.analysis.instrumentation.MetricsRecorder`).
    """
    return _serve_plain(
        lambda: IntersectionSender(v_s, params, rng, engine=engine),
        params, host, port, ready_callback, timeout, recorder,
    )


def connect_intersection_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> set[Hashable]:
    """Run party R of the intersection protocol as a TCP client."""
    def make(params: PublicParams) -> IntersectionReceiver:
        return IntersectionReceiver(v_r, params, rng, engine=engine)

    answer = _connect_plain(make, host, port, timeout, recorder)
    return set(answer)


def serve_intersection_size_sender(
    v_s: Sequence[Hashable],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Party S of the intersection-size protocol over TCP."""
    return _serve_plain(
        lambda: IntersectionSizeSender(v_s, params, rng, engine=engine),
        params, host, port, ready_callback, timeout, recorder,
    )


def connect_intersection_size_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Party R of the intersection-size protocol over TCP."""
    def make(params: PublicParams) -> IntersectionSizeReceiver:
        return IntersectionSizeReceiver(v_r, params, rng, engine=engine)

    return _connect_plain(make, host, port, timeout, recorder)


def serve_equijoin_sender(
    ext_s: Mapping[Hashable, bytes],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Party S of the equijoin protocol over TCP.

    ``ext_s`` maps each of S's values to its ``ext(v)`` payload bytes
    (the records R obtains for values in the intersection).
    """
    return _serve_plain(
        lambda: EquijoinSender(ext_s, params, rng, engine=engine),
        params, host, port, ready_callback, timeout, recorder,
    )


def connect_equijoin_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> dict[Hashable, bytes]:
    """Party R of the equijoin protocol over TCP; returns ``v -> ext(v)``."""
    def make(params: PublicParams) -> EquijoinReceiver:
        return EquijoinReceiver(v_r, params, rng, engine=engine)

    return _connect_plain(make, host, port, timeout, recorder)


def serve_equijoin_size_sender(
    v_s: Sequence[Hashable],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Party S of the equijoin-size protocol over TCP (multiset input)."""
    return _serve_plain(
        lambda: EquijoinSizeSender(v_s, params, rng, engine=engine),
        params, host, port, ready_callback, timeout, recorder,
    )


def connect_equijoin_size_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
    timeout: float | None = None,
    engine=None,
    recorder=None,
) -> int:
    """Party R of the equijoin-size protocol over TCP (multiset input)."""
    def make(params: PublicParams) -> EquijoinSizeReceiver:
        return EquijoinSizeReceiver(v_r, params, rng, engine=engine)

    return _connect_plain(make, host, port, timeout, recorder)


# ----------------------------------------------------------------------
# Resumable runs under the session layer
# ----------------------------------------------------------------------
#: protocol name -> (sender factory, receiver factory); both take
#: ``(data, params, rng)`` where ``data`` is the party's private input.
SESSION_PROTOCOLS: dict[str, tuple[Callable, Callable]] = {
    "intersection": (IntersectionSender, IntersectionReceiver),
    "intersection-size": (IntersectionSizeSender, IntersectionSizeReceiver),
    "equijoin": (EquijoinSender, EquijoinReceiver),
    "equijoin-size": (EquijoinSizeSender, EquijoinSizeReceiver),
}


def _session_factories(protocol: str) -> tuple[Callable, Callable]:
    try:
        return SESSION_PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(SESSION_PROTOCOLS))
        raise ValueError(
            f"unknown protocol {protocol!r} (expected one of: {known})"
        ) from None


def serve_resumable_sender(
    protocol: str,
    data: Any,
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    config: SessionConfig | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
) -> tuple[int, SessionStats]:
    """Serve party S of any protocol under the resumable session layer.

    The listener stays open across client reconnects, so a connection
    dropped mid-run resumes from the last acknowledged round. Returns
    ``(|V_R|, session stats)``. ``endpoint_wrapper`` (e.g. a
    :class:`~repro.net.faults.FaultyEndpoint` constructor) wraps every
    accepted connection - that is how the chaos tests inject faults.
    ``engine`` selects the batch-crypto execution strategy;
    ``recorder`` collects per-phase metrics.
    """
    config = config or SessionConfig()
    sender_factory, _ = _session_factories(protocol)
    session = SenderSession(
        protocol,
        params,
        lambda: sender_factory(data, params, rng, engine=engine),
        config=config,
        rng=random.Random(rng.getrandbits(64)),
        recorder=recorder,
    )
    listener = _listen(
        host, port, config.timeout_s * config.retry.max_attempts
    )
    try:
        if ready_callback is not None:
            ready_callback(listener.getsockname()[1])

        def accept() -> Any:
            try:
                conn, _addr = listener.accept()
            except socket.timeout as exc:
                raise TimeoutError("no client (re)connected in time") from exc
            conn.settimeout(config.timeout_s)
            endpoint = SocketEndpoint(
                sock=conn, max_frame_bytes=max_frame_bytes
            )
            return endpoint_wrapper(endpoint) if endpoint_wrapper else endpoint

        sender = session.run(accept)
        return sender.size_v_r, session.stats
    finally:
        listener.close()


def connect_resumable_receiver(
    protocol: str,
    data: Any,
    rng: random.Random,
    host: str,
    port: int,
    config: SessionConfig | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
) -> tuple[Any, SessionStats]:
    """Run party R of any protocol under the resumable session layer.

    Reconnects (with backoff and jitter) after transient failures and
    resumes from the last acknowledged round. Returns
    ``(answer, session stats)`` where the answer is the protocol's
    output for R (set, size, or ext mapping). ``engine`` selects the
    batch-crypto execution strategy; ``recorder`` collects per-phase
    metrics.
    """
    config = config or SessionConfig()
    _, receiver_factory = _session_factories(protocol)
    session = ReceiverSession(
        protocol,
        lambda wire: receiver_factory(
            data, PublicParams.from_wire(tuple(wire)), rng, engine=engine
        ),
        config=config,
        rng=random.Random(rng.getrandbits(64)),
        recorder=recorder,
    )

    def connect() -> Any:
        endpoint = _dial(host, port, config.timeout_s, max_frame_bytes)
        return endpoint_wrapper(endpoint) if endpoint_wrapper else endpoint

    answer = session.run(connect)
    return answer, session.stats
