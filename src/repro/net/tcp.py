"""TCP transport: run the protocols as two real network endpoints.

The in-memory channels are perfect for analysis (byte-exact accounting,
recorded views); this module provides the deployment-shaped
counterpart: length-prefixed frames of the same wire format over a TCP
socket, plus serve/connect helpers that run the separable party state
machines of :mod:`repro.protocols.parties` across the connection.

Framing: each message is ``len(payload) as u32 big-endian || payload``,
where the payload is :mod:`repro.net.serialization` bytes. The sender
side of a run performs a one-message handshake shipping the
:class:`~repro.protocols.parties.PublicParams`, so the connecting
receiver needs no prior agreement beyond the address.
"""

from __future__ import annotations

import random
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from ..protocols.parties import (
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
    PublicParams,
)
from . import serialization

__all__ = [
    "SocketEndpoint",
    "serve_intersection_sender",
    "connect_intersection_receiver",
    "serve_intersection_size_sender",
    "connect_intersection_size_receiver",
]

_LEN = struct.Struct(">I")


@dataclass
class SocketEndpoint:
    """Framed, serialized messaging over a connected socket."""

    sock: socket.socket
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = field(default=0)

    def send(self, message: Any) -> None:
        """Serialize and ship one framed message."""
        payload = serialization.encode(message)
        frame = _LEN.pack(len(payload)) + payload
        self.sock.sendall(frame)
        self.bytes_sent += len(frame)
        self.messages_sent += 1

    def recv(self) -> Any:
        """Read and deserialize one framed message."""
        header = self._read_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        payload = self._read_exact(length)
        self.bytes_received += _LEN.size + length
        return serialization.decode(payload)

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        """Close the underlying socket."""
        self.sock.close()


def _serve_one(host: str, port: int) -> tuple[SocketEndpoint, int]:
    """Listen, return (endpoint to the first client, bound port)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    bound_port = listener.getsockname()[1]
    listener.listen(1)
    conn, _addr = listener.accept()
    listener.close()
    return SocketEndpoint(sock=conn), bound_port


def serve_intersection_sender(
    v_s: Sequence[Hashable],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
) -> int:
    """Run party S of the intersection protocol as a TCP server.

    Blocks until one receiver has been served; returns ``|V_R|``
    (everything S learns). ``ready_callback(port)`` fires once the
    socket is listening - pass the port to the client thread/process.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    if ready_callback is not None:
        ready_callback(listener.getsockname()[1])
    conn, _addr = listener.accept()
    listener.close()
    endpoint = SocketEndpoint(sock=conn)
    try:
        endpoint.send(("params", params.to_wire()))
        sender = IntersectionSender(v_s, params, rng)
        y_r = endpoint.recv()
        endpoint.send(sender.round1(list(y_r)))
        return sender.size_v_r
    finally:
        endpoint.close()


def connect_intersection_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
) -> set[Hashable]:
    """Run party R of the intersection protocol as a TCP client."""
    sock = socket.create_connection((host, port))
    endpoint = SocketEndpoint(sock=sock)
    try:
        tag, wire_params = endpoint.recv()
        if tag != "params":
            raise ValueError(f"unexpected handshake message {tag!r}")
        receiver = IntersectionReceiver(
            v_r, PublicParams.from_wire(tuple(wire_params)), rng
        )
        endpoint.send(receiver.round1())
        y_s, pairs = endpoint.recv()
        return receiver.finish((list(y_s), [tuple(p) for p in pairs]))
    finally:
        endpoint.close()


def serve_intersection_size_sender(
    v_s: Sequence[Hashable],
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
) -> int:
    """Party S of the intersection-size protocol over TCP."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    if ready_callback is not None:
        ready_callback(listener.getsockname()[1])
    conn, _addr = listener.accept()
    listener.close()
    endpoint = SocketEndpoint(sock=conn)
    try:
        endpoint.send(("params", params.to_wire()))
        sender = IntersectionSizeSender(v_s, params, rng)
        y_r = endpoint.recv()
        endpoint.send(sender.round1(list(y_r)))
        return sender.size_v_r
    finally:
        endpoint.close()


def connect_intersection_size_receiver(
    v_r: Sequence[Hashable],
    rng: random.Random,
    host: str,
    port: int,
) -> int:
    """Party R of the intersection-size protocol over TCP."""
    sock = socket.create_connection((host, port))
    endpoint = SocketEndpoint(sock=sock)
    try:
        tag, wire_params = endpoint.recv()
        if tag != "params":
            raise ValueError(f"unexpected handshake message {tag!r}")
        receiver = IntersectionSizeReceiver(
            v_r, PublicParams.from_wire(tuple(wire_params)), rng
        )
        endpoint.send(receiver.round1())
        y_s, z_r = endpoint.recv()
        return receiver.finish((list(y_s), list(z_r)))
    finally:
        endpoint.close()
