"""TCP transport: run the protocols as two real network endpoints.

The in-memory channels are perfect for analysis (byte-exact accounting,
recorded views); this module provides the deployment-shaped
counterpart: length-prefixed frames of the same wire format over a TCP
socket, plus serve/connect drivers that interpret any registered
:class:`~repro.protocols.spec.ProtocolSpec` across the connection.

Framing: each message is ``len(payload) as u32 big-endian || payload``,
where the payload is :mod:`repro.net.serialization` bytes. Frames are
bounded (:data:`DEFAULT_MAX_FRAME_BYTES`), so a corrupt or hostile
length prefix fails fast with :class:`FrameTooLarge` instead of
triggering a multi-gigabyte allocation, and every helper takes a
``timeout`` so a hung or absent peer raises instead of blocking
forever.

Two families of drivers cover every protocol in the registry:

* :func:`serve`/:func:`connect` speak the original one-shot handshake
  (the sender ships its
  :class:`~repro.protocols.parties.PublicParams`, the spec's rounds
  follow in order, any failure aborts the run);
* :func:`serve_resumable_sender`/:func:`connect_resumable_receiver`
  run the same round schedule under the fault-tolerant session layer
  of :mod:`repro.net.session` - checksummed, acknowledged frames,
  retry with backoff, and resumption from the last acknowledged round
  after a dropped connection.

All four take ``chunk_size``: when set, chunkable rounds ship as a
stream of ``("chunk", ...)`` frames (:mod:`repro.net.serialization`)
instead of one whole-round frame, holding at most O(chunk_size)
payload in memory per frame, and chunk production is double-buffered
(:func:`repro.net.streaming.prefetch`) so the crypto for chunk ``k+1``
overlaps the send of chunk ``k``. Receivers auto-detect chunked
rounds, so ``chunk_size`` is a per-party local choice; the default
``None`` reproduces the legacy wire format byte for byte.
"""

from __future__ import annotations

import random
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from ..protocols.spec import PROTOCOLS, ProtocolSpec, get_spec
from . import serialization
from .session import (
    ReceiverSession,
    SenderSession,
    SessionConfig,
    SessionStats,
)
from .streaming import TimedIterator, prefetch

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLarge",
    "SocketEndpoint",
    "serve",
    "connect",
    "SESSION_PROTOCOLS",
    "serve_resumable_sender",
    "connect_resumable_receiver",
]

_LEN = struct.Struct(">I")

#: Frames above this are rejected outright: no protocol message comes
#: close, so a bigger length prefix means corruption or hostility.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameTooLarge(ConnectionError):
    """A frame header declared a length beyond ``max_frame_bytes``.

    Subclasses :class:`ConnectionError` because the only safe recovery
    is tearing the connection down: after a garbled length prefix the
    byte stream can never be re-synchronized.
    """


@dataclass
class SocketEndpoint:
    """Framed, serialized messaging over a connected socket."""

    sock: socket.socket
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = field(default=0)

    def send(self, message: Any) -> None:
        """Serialize and ship one framed message."""
        payload = serialization.encode(message)
        frame = _LEN.pack(len(payload)) + payload
        self.sock.sendall(frame)
        self.bytes_sent += len(frame)
        self.messages_sent += 1

    def recv(self) -> Any:
        """Read and deserialize one framed message.

        Raises:
            FrameTooLarge: the length prefix exceeds
                ``max_frame_bytes`` (corrupt header or hostile peer).
            ConnectionError: the peer closed mid-frame.
            TimeoutError: no frame arrived within the socket timeout.
            ValueError: the payload arrived but is not valid wire data.
        """
        header = self._read_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLarge(
                f"frame declares {length} bytes, limit is "
                f"{self.max_frame_bytes} (corrupt length prefix?)"
            )
        payload = self._read_exact(length)
        self.bytes_received += _LEN.size + length
        return serialization.decode(payload)

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def settimeout(self, timeout: float | None) -> None:
        """Deadline for subsequent socket operations (None = block)."""
        self.sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket."""
        self.sock.close()


# ----------------------------------------------------------------------
# Socket plumbing shared by the serve/connect drivers
# ----------------------------------------------------------------------
def _nodelay(sock: socket.socket) -> socket.socket:
    """Disable Nagle on a protocol socket.

    Every exchange here is stop-and-wait: a small sealed frame, then a
    wait for the peer's (even smaller) ack. Nagle's algorithm holds
    exactly those sub-MSS writes back waiting for acks that will never
    precede them, so leaving it on taxes every round trip; all protocol
    sockets (dialed and accepted alike) run with ``TCP_NODELAY``. See
    docs/PERFORMANCE.md for the measured before/after.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (tests splice in socketpairs)
    return sock


def _listen(
    host: str, port: int, timeout: float | None, backlog: int = 16
) -> socket.socket:
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    # A backlog of 1 made the kernel refuse the racing reconnects a
    # resumable run depends on; 16 absorbs a burst of clients.
    listener.listen(backlog)
    listener.settimeout(timeout)
    return listener


def _accept_one(
    host: str,
    port: int,
    ready_callback,
    timeout: float | None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
) -> Any:
    """Listen, announce the bound port, return the first client.

    The wrapper (fault injector, recorder, ...) is applied *here* so a
    wrapper that raises cannot leak the accepted socket.
    """
    listener = _listen(host, port, timeout)
    try:
        if ready_callback is not None:
            ready_callback(listener.getsockname()[1])
        try:
            conn, _addr = listener.accept()
        except socket.timeout as exc:
            raise TimeoutError(
                f"no client connected within {timeout}s"
            ) from exc
    finally:
        listener.close()
    conn.settimeout(timeout)
    _nodelay(conn)
    endpoint = SocketEndpoint(sock=conn, max_frame_bytes=max_frame_bytes)
    if endpoint_wrapper is None:
        return endpoint
    try:
        return endpoint_wrapper(endpoint)
    except BaseException:
        conn.close()
        raise


def _dial(
    host: str,
    port: int,
    timeout: float | None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> SocketEndpoint:
    sock = _nodelay(socket.create_connection((host, port), timeout=timeout))
    return SocketEndpoint(sock=sock, max_frame_bytes=max_frame_bytes)


# ----------------------------------------------------------------------
# Round shipping shared by both parties of the one-shot drivers
# ----------------------------------------------------------------------
def _send_round(
    transport: Any,
    machine: Any,
    rnd: Any,
    chunk_size: int | None,
    recorder: Any,
) -> None:
    """Ship one outgoing round, chunked and pipelined when enabled.

    The chunk producer runs one step ahead on the prefetch thread, so
    while frame ``k`` is in ``transport.send`` the crypto for chunk
    ``k+1`` is already underway; the recorder (if any) gets the round's
    produce/send/wall split for the pipeline-overlap report.
    """
    if chunk_size is None or not rnd.chunkable:
        transport.send(machine.produce(rnd).to_wire())
        return
    wall_start = time.perf_counter()
    timed = TimedIterator(machine.produce_chunks(rnd, chunk_size))
    send_s = 0.0
    count = 0
    for payload in prefetch(timed):
        start = time.perf_counter()
        transport.send(serialization.chunk_frame(count, payload))
        send_s += time.perf_counter() - start
        count += 1
    start = time.perf_counter()
    transport.send(serialization.chunk_end_frame(count))
    send_s += time.perf_counter() - start
    if recorder is not None:
        recorder.add_pipeline(
            f"{machine.role}.{rnd.name}",
            produce_s=timed.elapsed_s,
            send_s=send_s,
            wall_s=time.perf_counter() - wall_start,
            chunks=count,
        )


def _recv_round(transport: Any, machine: Any, rnd: Any) -> None:
    """Receive one round, whole-frame or chunked (auto-detected)."""
    frames: list = []
    while True:
        with machine.wait(rnd):
            frames.append(transport.recv())
        status, payload, _used = serialization.fold_chunk_frames(frames)
        if status == "single":
            machine.consume(rnd, payload)
            return
        if status == "chunked":
            machine.consume_chunks(rnd, payload)
            return


def run_rounds(
    transport: Any,
    machine: Any,
    spec: ProtocolSpec,
    *,
    sends: str,
    chunk_size: int | None = None,
    recorder: Any = None,
) -> None:
    """Drive one party's side of a spec's round schedule on a transport.

    ``sends`` is the round source this party ships (``"R"`` for the
    receiver, ``"S"`` for the sender); every other round is received.
    This is the loop both one-shot drivers run after their handshake,
    shared so the stateful Catalog peers reuse it frame for frame.
    """
    for rnd in spec.rounds:
        if rnd.source == sends:
            _send_round(transport, machine, rnd, chunk_size, recorder)
        else:
            _recv_round(transport, machine, rnd)


# ----------------------------------------------------------------------
# Plain one-shot runs (original handshake; any failure aborts)
# ----------------------------------------------------------------------
def serve(
    protocol: str | ProtocolSpec,
    data: Any,
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    timeout: float | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
    chunk_size: int | None = None,
) -> int:
    """Run party S of any registered protocol as a TCP server.

    Interprets the spec's round schedule: after the ``params``
    handshake, S receives every receiver-sourced round and ships every
    sender-sourced one, in order. Blocks until one receiver has been
    served; returns ``|V_R|`` (everything S learns).

    Args:
        protocol: registry name (or an unregistered spec object).
        data: S's private input, shaped per ``spec.sender_input``
            (value list, ``v -> ext(v)`` map, or ``v -> amount`` map).
        params: the public parameters shipped in the handshake.
        rng: S's private randomness.
        ready_callback: called with the bound port once listening -
            with ``port=0`` this is the actual kernel-assigned port;
            pass it to the client thread/process.
        timeout: bounds both the wait for a client and each socket read.
        endpoint_wrapper: wraps the accepted connection (e.g. a
            :class:`~repro.net.faults.FaultyEndpoint` constructor).
        engine: batch-crypto execution strategy
            (:mod:`repro.crypto.engine`).
        recorder: per-phase metrics collector
            (:class:`repro.analysis.instrumentation.MetricsRecorder`).
        chunk_size: stream chunkable outgoing rounds in frames of at
            most this many elements (``None`` = legacy whole-round
            frames, byte-identical to earlier releases).
    """
    spec = get_spec(protocol)
    transport = _accept_one(
        host, port, ready_callback, timeout, max_frame_bytes,
        endpoint_wrapper=endpoint_wrapper,
    )
    try:
        transport.send(("params", params.to_wire()))
        machine = SenderMachine(
            spec, data, params, rng, engine=engine, recorder=recorder
        )
        machine.ensure_state()
        run_rounds(
            transport, machine, spec, sends="S",
            chunk_size=chunk_size, recorder=recorder,
        )
        return machine.state.size_v_r
    finally:
        transport.close()


def connect(
    protocol: str | ProtocolSpec,
    data: Any,
    rng: random.Random,
    host: str,
    port: int,
    timeout: float | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
    chunk_size: int | None = None,
) -> Any:
    """Run party R of any registered protocol as a TCP client.

    The server's handshake carries the public parameters, so R needs
    no out-of-band setup beyond the address. Returns the protocol's
    answer for R (set, size, ext mapping, or aggregate - whatever the
    spec's ``finish`` computes). ``chunk_size`` streams R's chunkable
    outgoing rounds (see :func:`serve`); inbound chunking is
    auto-detected regardless.
    """
    spec = get_spec(protocol)
    endpoint = _dial(host, port, timeout, max_frame_bytes)
    if endpoint_wrapper is None:
        transport = endpoint
    else:
        try:
            transport = endpoint_wrapper(endpoint)
        except BaseException:
            endpoint.close()
            raise
    try:
        tag, wire_params = transport.recv()
        if tag != "params":
            raise ValueError(f"unexpected handshake message {tag!r}")
        machine = ReceiverMachine(
            spec,
            data,
            PublicParams.from_wire(tuple(wire_params)),
            rng,
            engine=engine,
            recorder=recorder,
        )
        machine.ensure_state()
        run_rounds(
            transport, machine, spec, sends="R",
            chunk_size=chunk_size, recorder=recorder,
        )
        return machine.finish()
    finally:
        transport.close()


# ----------------------------------------------------------------------
# Resumable runs under the session layer
# ----------------------------------------------------------------------
#: protocol name -> (sender factory, receiver factory); both take
#: ``(data, params, rng)`` where ``data`` is the party's private input.
#: Derived from the spec registry; kept as a public back-compat view.
SESSION_PROTOCOLS: dict[str, tuple[Callable, Callable]] = {
    name: (spec.make_sender, spec.make_receiver)
    for name, spec in PROTOCOLS.items()
}


def serve_resumable_sender(
    protocol: str,
    data: Any,
    params: PublicParams,
    rng: random.Random,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
    config: SessionConfig | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
    journal_dir: Any = None,
    journal_fsync: bool = True,
    chunk_size: int | None = None,
    make_sender: Callable[[], Any] | None = None,
) -> tuple[int, SessionStats]:
    """Serve party S of any registered protocol under the session layer.

    The listener stays open across client reconnects, so a connection
    dropped mid-run resumes from the last acknowledged round. Returns
    ``(|V_R|, session stats)``. ``endpoint_wrapper`` (e.g. a
    :class:`~repro.net.faults.FaultyEndpoint` constructor) wraps every
    accepted connection - that is how the chaos tests inject faults.
    ``engine`` selects the batch-crypto execution strategy;
    ``recorder`` collects per-phase metrics. ``chunk_size`` streams
    chunkable outgoing rounds as acknowledged chunk frames, making the
    resume cursor chunk-granular (a reconnect or recovery restarts
    mid-round at the last acknowledged chunk).

    With a ``journal_dir``, every frame is journaled to disk
    (:mod:`repro.net.journal`) before it is acted on, and a restart
    against the same directory *recovers* the oldest incomplete run for
    this protocol instead of starting a fresh one - provided ``data``,
    ``rng`` *and* ``chunk_size`` match the crashed process (replay
    verifies the bytes exactly).

    ``make_sender`` overrides the default state factory (which builds
    ``spec.make_sender(data, params, rng)``); the stateful Catalog
    peers use it to inject warm-cache construction and to keep a handle
    on the built party for delta commits. It may be called more than
    once (journal replay), so it must be idempotent.
    """
    config = config or SessionConfig()
    spec = get_spec(protocol)
    # Consume the session-rng seed before the factory ever touches
    # ``rng`` - this fixed draw order is what lets a restarted process
    # with an identically seeded ``rng`` replay its journal exactly.
    session_rng = random.Random(rng.getrandbits(64))
    if make_sender is None:
        make_sender = lambda: spec.make_sender(data, params, rng, engine=engine)  # noqa: E731
    session = None
    if journal_dir is not None:
        from .journal import JournalDir, recover_sender_session

        journal_dir = (
            journal_dir
            if isinstance(journal_dir, JournalDir)
            else JournalDir(journal_dir, fsync=journal_fsync)
        )
        stale = journal_dir.incomplete("sender", protocol)
        if stale:
            session = recover_sender_session(
                stale[0], params, make_sender,
                config=config, rng=session_rng, recorder=recorder,
                fsync=journal_dir.fsync, chunk_size=chunk_size,
            )
    if session is None:
        session = SenderSession(
            protocol,
            params,
            make_sender,
            config=config,
            rng=session_rng,
            recorder=recorder,
            journal=journal_dir,
            chunk_size=chunk_size,
        )
    listener = _listen(
        host, port, config.timeout_s * config.retry.max_attempts
    )
    try:
        if ready_callback is not None:
            ready_callback(listener.getsockname()[1])

        def accept() -> Any:
            try:
                conn, _addr = listener.accept()
            except socket.timeout as exc:
                raise TimeoutError("no client (re)connected in time") from exc
            conn.settimeout(config.timeout_s)
            _nodelay(conn)
            endpoint = SocketEndpoint(
                sock=conn, max_frame_bytes=max_frame_bytes
            )
            return endpoint_wrapper(endpoint) if endpoint_wrapper else endpoint

        sender = session.run(accept)
        return sender.size_v_r, session.stats
    finally:
        listener.close()


def connect_resumable_receiver(
    protocol: str,
    data: Any,
    rng: random.Random,
    host: str,
    port: int,
    config: SessionConfig | None = None,
    endpoint_wrapper: Callable[[SocketEndpoint], Any] | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    engine=None,
    recorder=None,
    journal_dir: Any = None,
    journal_fsync: bool = True,
    chunk_size: int | None = None,
    make_receiver: Callable[[Any], Any] | None = None,
) -> tuple[Any, SessionStats]:
    """Run party R of any registered protocol under the session layer.

    Reconnects (with backoff and jitter) after transient failures and
    resumes from the last acknowledged round. Returns
    ``(answer, session stats)`` where the answer is the protocol's
    output for R (set, size, ext mapping, or aggregate). ``engine``
    selects the batch-crypto execution strategy; ``recorder`` collects
    per-phase metrics; ``chunk_size`` streams R's chunkable outgoing
    rounds as acknowledged chunk frames (chunk-granular resume).

    With a ``journal_dir``, rounds are journaled and a restart against
    the same directory recovers the oldest incomplete receiver run for
    this protocol (same ``data``/``rng`` seeding required - replay
    verifies it), reconnecting under the journaled session id so the
    server resumes the same run.

    ``make_receiver`` overrides the default state factory (a
    ``wire_params -> state`` closure over ``spec.make_receiver``); the
    stateful Catalog peers use it to inject warm-cache construction
    and to keep a handle on the built party for delta commits. It may
    be called more than once (journal replay), so it must be
    idempotent.
    """
    config = config or SessionConfig()
    spec = get_spec(protocol)
    session_rng = random.Random(rng.getrandbits(64))
    if make_receiver is None:
        make_receiver = lambda wire: spec.make_receiver(  # noqa: E731
            data, PublicParams.from_wire(tuple(wire)), rng, engine=engine
        )
    session = None
    if journal_dir is not None:
        from .journal import JournalDir, recover_receiver_session

        journal_dir = (
            journal_dir
            if isinstance(journal_dir, JournalDir)
            else JournalDir(journal_dir, fsync=journal_fsync)
        )
        stale = journal_dir.incomplete("receiver", protocol)
        if stale:
            session = recover_receiver_session(
                stale[0], make_receiver,
                config=config, rng=session_rng, recorder=recorder,
                fsync=journal_dir.fsync, chunk_size=chunk_size,
            )
    if session is None:
        session = ReceiverSession(
            protocol,
            make_receiver,
            config=config,
            rng=session_rng,
            recorder=recorder,
            journal=journal_dir,
            chunk_size=chunk_size,
        )

    def dial() -> Any:
        endpoint = _dial(host, port, config.timeout_s, max_frame_bytes)
        return endpoint_wrapper(endpoint) if endpoint_wrapper else endpoint

    answer = session.run(dial)
    return answer, session.stats
