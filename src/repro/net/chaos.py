"""Deterministic chaos simulation: crash points, schedules, a driver.

PR 1 gave the repo seeded *network* faults (:mod:`repro.net.faults`),
:mod:`repro.net.diskfaults` adds seeded *disk* faults; this module
composes both with a third failure axis - process crashes at named
code points - and drives whole protocol runs under the composition,
FoundationDB-style:

* **crash points** - the journal, session, streaming and server layers
  call :func:`crash_point` at every boundary that matters for
  durability (pre/post-append, pre/post-rotate, per frame shipped or
  received, per streamed chunk). The call is a thread-local lookup and
  costs nothing when no hook is installed; under :func:`hooked` a
  :class:`CrashHook` raises :class:`SimulatedCrash` (a
  ``BaseException``, so no retry loop can swallow it) at the Nth hit
  of its named point - the in-process equivalent of ``SIGKILL`` at an
  exact instruction.
* **schedules** - a :class:`ChaosSchedule` bundles one seed's worth of
  chaos: a network fault plan per direction, a disk fault plan per
  party, a crash point per party, and a restart budget.
  :meth:`ChaosSchedule.generate` derives all of it from a single
  integer, so a failing schedule is reproduced from its printed seed.
* **the driver** - :func:`run_schedule` executes any registered
  protocol under a schedule, entirely in-process: both parties run
  journaled sessions over ``socketpair`` transports, each under a
  supervisor loop that restarts it (recover-from-journal, exactly like
  the resumable TCP helpers) after every simulated crash or journal
  failure, up to the restart budget.

The invariant the driver checks is the repo's durability contract:
**every run ends in the correct answer or a typed, clean failure** -
never a wrong answer, never a hang, never a journal whose content
silently diverges from the reference wires. A completed run's journals
are compared byte-for-byte against a clean in-memory reference run of
the same seeds (:class:`ChaosResult.journals_ok`), which is what rules
out undetected corruption, not just wrong answers.
"""

from __future__ import annotations

import random
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from .diskfaults import DiskFaultPlan, FaultyJournalIO
from .faults import FaultPlan

__all__ = [
    "SimulatedCrash",
    "crash_point",
    "hooked",
    "CrashHook",
    "RecordingHook",
    "CRASH_POINTS",
    "SCHEDULABLE_POINTS",
    "ChaosSchedule",
    "PartyOutcome",
    "ChaosResult",
    "run_schedule",
    "WorkerCrashSchedule",
    "WorkerCrashOutcome",
    "WorkerCrashResult",
    "run_worker_crash_schedule",
]


class SimulatedCrash(BaseException):
    """A simulated process death at a crash point.

    Deliberately a ``BaseException``: the session layer retries broad
    ``Exception`` classes (that is its job), and a simulated crash must
    behave like ``SIGKILL`` - nothing between the crash point and the
    supervisor may catch it and carry on.
    """


#: The crash-point matrix: every named hook wired through the net
#: layer, mapped to the boundary it models.
CRASH_POINTS: dict[str, str] = {
    "journal.append.pre": "record encoded, nothing written yet",
    "journal.append.post": "record durable, caller has not acted on it",
    "journal.rotate.pre": "completion journaled, .wal -> .done rename pending",
    "journal.rotate.post": "journal rotated, caller has not returned",
    "session.ship.frame": "before each data/chunk frame is sent",
    "session.recv.frame": "after each received frame is journaled",
    "streaming.chunk.yield": "between chunks of a streamed round",
    "server.session.run": "supervisor worker about to run a session",
}

#: Crash points :meth:`ChaosSchedule.generate` schedules. The server
#: supervisor point is exercised by the server's own tests, not by the
#: in-process two-party driver.
SCHEDULABLE_POINTS: tuple[str, ...] = tuple(
    name for name in CRASH_POINTS if not name.startswith("server.")
)

_tls = threading.local()


def crash_point(name: str) -> None:
    """Fire the calling thread's crash hook, if one is installed.

    Instrumented code calls this at durability boundaries; with no
    hook installed (the default, and always in production use) it is a
    thread-local attribute read and an ``is None`` test. Hooks are
    per-thread so a chaos run crashes exactly the party under test.
    """
    hook = getattr(_tls, "hook", None)
    if hook is not None:
        hook(name)


@contextmanager
def hooked(hook: Callable[[str], None] | None) -> Iterator[None]:
    """Install a crash hook on this thread for the ``with`` body.

    ``hooked(None)`` is a no-op, so drivers can pass an optional hook
    straight through. The previous hook (usually none) is restored on
    exit, even when the body dies at a crash point.
    """
    if hook is None:
        yield
        return
    previous = getattr(_tls, "hook", None)
    _tls.hook = hook
    try:
        yield
    finally:
        _tls.hook = previous


class CrashHook:
    """Raise :class:`SimulatedCrash` at the Nth hit of one named point.

    Counts every crash point it observes (``counts``), and fires once:
    when ``point`` reaches its ``hit``-th observation the hook raises
    and disarms, so a restarted party replays past the crash site
    instead of dying there forever. Counts persist across restarts -
    the hook models one scheduled death of one process, deterministic
    in the schedule.
    """

    def __init__(self, point: str, hit: int = 1):
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        self.point = point
        self.hit = hit
        self.fired = False
        self.counts: dict[str, int] = {}

    def __call__(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if (
            not self.fired
            and name == self.point
            and self.counts[name] >= self.hit
        ):
            self.fired = True
            raise SimulatedCrash(
                f"crash point {self.point!r} (hit {self.counts[name]})"
            )

    def as_dict(self) -> dict[str, Any]:
        """Flat summary (target, whether it fired, observed counts)."""
        return {
            "point": self.point,
            "hit": self.hit,
            "fired": self.fired,
            "counts": dict(self.counts),
        }


class RecordingHook:
    """A hook that only counts crash-point hits (never raises).

    Useful for discovering a run's crash-point space: record a clean
    run, then schedule a :class:`CrashHook` at any ``(point, hit)``
    the recording observed.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def __call__(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1


#: Default inputs per registered protocol for :func:`run_schedule`.
_DEFAULT_DATA: dict[str, tuple[Any, Any]] = {
    "intersection": (["a", "b", "c", "d"], ["b", "c", "e"]),
    "intersection-size": (["a", "b", "c", "d"], ["c", "d", "e"]),
    "equijoin": (
        ["a", "b", "c"],
        {"b": b"rec-b", "c": b"rec-c", "z": b"rec-z"},
    ),
    "equijoin-size": (["a", "a", "b", "c"], ["a", "b", "b", "e"]),
    "equijoin-sum": (["a", "b", "c"], {"b": 10, "c": 32, "z": 999}),
}

#: Protocols :meth:`ChaosSchedule.generate` draws from.
_PROTOCOLS: tuple[str, ...] = tuple(sorted(_DEFAULT_DATA))


def _net_plan(rng: random.Random) -> FaultPlan | None:
    """Maybe one direction's network fault plan, from the schedule rng."""
    if rng.random() < 0.45:
        return None
    rates = {
        "drop_rate": 0.0,
        "corrupt_rate": 0.0,
        "delay_rate": 0.0,
        "disconnect_rate": 0.0,
    }
    for kind in rng.sample(sorted(rates), rng.choice((1, 1, 2))):
        rates[kind] = round(rng.uniform(0.15, 0.35), 3)
    return FaultPlan(
        seed=rng.getrandbits(32),
        delay_s=0.002,
        max_faults=rng.choice((1, 2, 3)),
        skip=rng.choice((0, 0, 1, 2, 4)),
        **rates,
    )


def _disk_plan(rng: random.Random) -> DiskFaultPlan | None:
    """Maybe one party's disk fault plan, from the schedule rng."""
    if rng.random() < 0.55:
        return None
    rates = {
        "fsync_error_rate": 0.0,
        "torn_write_rate": 0.0,
        "enospc_rate": 0.0,
        "rename_error_rate": 0.0,
        "dir_fsync_error_rate": 0.0,
    }
    for kind in rng.sample(sorted(rates), rng.choice((1, 1, 2))):
        rates[kind] = round(rng.uniform(0.3, 0.8), 3)
    if rates["torn_write_rate"] + rates["enospc_rate"] > 1.0:
        rates["enospc_rate"] = round(1.0 - rates["torn_write_rate"], 3)
    return DiskFaultPlan(
        seed=rng.getrandbits(32),
        max_faults=rng.choice((1, 1, 2)),
        skip=rng.choice((0, 1, 2, 4, 8)),
        **rates,
    )


def _crash_plan(rng: random.Random) -> tuple[str, int] | None:
    """Maybe one party's scheduled crash, from the schedule rng."""
    if rng.random() < 0.6:
        return None
    return (rng.choice(SCHEDULABLE_POINTS), rng.choice((1, 1, 2, 3, 4)))


@dataclass(frozen=True)
class ChaosSchedule:
    """One seed's worth of composed chaos for a two-party run.

    Any field may be ``None`` (that axis stays clean); a default
    schedule is a clean run. ``max_restarts`` bounds how many times the
    driver's supervisor loop resurrects each party after a simulated
    crash or a journal failure before giving up with that failure.
    """

    seed: int = 0
    protocol: str | None = None
    chunk_size: int | None = None
    client_net: FaultPlan | None = None
    server_net: FaultPlan | None = None
    sender_disk: DiskFaultPlan | None = None
    receiver_disk: DiskFaultPlan | None = None
    sender_crash: tuple[str, int] | None = None
    receiver_crash: tuple[str, int] | None = None
    max_restarts: int = 4

    @classmethod
    def generate(cls, seed: int, protocol: str | None = None) -> "ChaosSchedule":
        """Derive a full composed schedule deterministically from ``seed``.

        Each axis (per-direction network faults, per-party disk faults,
        per-party crash points, chunked vs whole-round wire format) is
        drawn independently, so the population covers clean runs,
        single-axis failures and every pairwise composition. The same
        seed always yields the same schedule - the reproduction handle
        the chaos suite prints on failure.
        """
        rng = random.Random(f"repro-chaos-{seed}")
        return cls(
            seed=seed,
            protocol=protocol if protocol is not None else rng.choice(_PROTOCOLS),
            chunk_size=rng.choice((None, None, None, 1, 2)),
            client_net=_net_plan(rng),
            server_net=_net_plan(rng),
            sender_disk=_disk_plan(rng),
            receiver_disk=_disk_plan(rng),
            sender_crash=_crash_plan(rng),
            receiver_crash=_crash_plan(rng),
            max_restarts=4,
        )


@dataclass
class PartyOutcome:
    """How one party's supervised run ended.

    ``kind`` is ``"answer"`` (ran to completion; ``value`` holds the
    receiver's protocol answer, or the sender's party state),
    ``"error"`` (a typed, clean failure - the invariant's acceptable
    negative outcome), ``"violation"`` (an untyped exception escaped -
    an invariant breach), or ``"hang"`` (the party never finished
    inside the driver's wall-clock budget - also a breach).
    """

    kind: str
    value: Any = None
    error: BaseException | None = None
    restarts: int = 0

    @property
    def clean(self) -> bool:
        """Whether this outcome satisfies the durability invariant."""
        return self.kind in ("answer", "error")


@dataclass
class ChaosResult:
    """Everything :func:`run_schedule` observed for one schedule."""

    schedule: ChaosSchedule
    protocol: str
    expected: Any
    receiver: PartyOutcome
    sender: PartyOutcome
    journals_ok: bool = True
    notes: list[str] = field(default_factory=list)
    net_stats: dict[str, Any] = field(default_factory=dict)
    disk_stats: dict[str, Any] = field(default_factory=dict)
    crash_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def answer(self) -> Any:
        """The receiver's answer (``None`` unless it completed)."""
        return self.receiver.value if self.receiver.kind == "answer" else None

    @property
    def ok(self) -> bool:
        """The durability invariant: correct answer or typed failure.

        False on a wrong answer, an untyped escape, a hang, or a
        completed journal whose bytes diverge from the reference run.
        """
        if not (self.receiver.clean and self.sender.clean):
            return False
        if not self.journals_ok:
            return False
        if self.receiver.kind == "answer" and self.receiver.value != self.expected:
            return False
        return True

    def describe(self) -> str:
        """A failure-report line; the seed reproduces the schedule."""
        parts = [
            f"chaos seed {self.schedule.seed} ({self.protocol}, "
            f"chunk_size={self.schedule.chunk_size}):",
            f"receiver={self.receiver.kind}"
            + (f" ({self.receiver.error!r})" if self.receiver.error else "")
            + f" after {self.receiver.restarts} restarts,",
            f"sender={self.sender.kind}"
            + (f" ({self.sender.error!r})" if self.sender.error else "")
            + f" after {self.sender.restarts} restarts",
        ]
        if self.receiver.kind == "answer" and self.receiver.value != self.expected:
            parts.append(
                f"- WRONG ANSWER {self.receiver.value!r} != {self.expected!r}"
            )
        for note in self.notes:
            parts.append(f"- {note}")
        parts.append(
            "- replay: run_schedule(ChaosSchedule.generate("
            f"{self.schedule.seed}))"
        )
        return " ".join(parts)

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping for JSON benchmark records."""
        return {
            "seed": self.schedule.seed,
            "protocol": self.protocol,
            "chunk_size": self.schedule.chunk_size,
            "ok": self.ok,
            "receiver": self.receiver.kind,
            "sender": self.sender.kind,
            "receiver_restarts": self.receiver.restarts,
            "sender_restarts": self.sender.restarts,
            "receiver_error": repr(self.receiver.error) if self.receiver.error else None,
            "sender_error": repr(self.sender.error) if self.sender.error else None,
            "journals_ok": self.journals_ok,
            "net": self.net_stats,
            "disk": self.disk_stats,
            "crash": self.crash_stats,
        }


class _PairBroker:
    """An in-process rendezvous replacing the TCP listener.

    Each ``connect()`` builds a fresh ``socketpair``, queues the server
    half for the sender's ``accept()`` and returns the client half -
    the same connect/accept contract the resumable TCP helpers give
    the session layer, minus the port.
    """

    def __init__(self, timeout_s: float, endpoint_cls: Any):
        import queue

        self._queue: Any = queue.Queue()
        self.timeout_s = timeout_s
        self._endpoint_cls = endpoint_cls

    def connect(self) -> Any:
        import socket

        client, server = socket.socketpair()
        client.settimeout(self.timeout_s)
        server.settimeout(self.timeout_s)
        self._queue.put(self._endpoint_cls(sock=server))
        return self._endpoint_cls(sock=client)

    def accept(self) -> Any:
        import queue

        try:
            return self._queue.get(timeout=self.timeout_s)
        except queue.Empty:
            raise TimeoutError("no chaos client connected") from None


def run_schedule(
    schedule: ChaosSchedule,
    protocol: str | None = None,
    params: Any = None,
    data: tuple[Any, Any] | None = None,
    journal_root: str | Path | None = None,
    wall_timeout_s: float = 45.0,
) -> ChaosResult:
    """Execute one protocol run under a chaos schedule, in-process.

    Both parties run journaled resumable sessions over ``socketpair``
    transports, each on its own thread under a supervisor loop that -
    exactly like the resumable TCP helpers - scans its journal
    directory and recovers (or salvages a completed journal) after
    every :class:`SimulatedCrash` or
    :class:`~repro.net.journal.JournalError`, up to
    ``schedule.max_restarts`` resurrections. Network faults, disk
    faults and crash hooks all come from the schedule; all randomness
    derives from ``schedule.seed``, so a failing run replays
    deterministically.

    The expected answer *and* the byte-exact reference wires come from
    a clean in-memory run of the same machine seeds; when a party
    completes an unchunked run, its journal is compared byte-for-byte
    against those wires (``journals_ok``) - the "no undetected corrupt
    journal" half of the invariant.

    Args:
        schedule: the composed fault schedule (see
            :meth:`ChaosSchedule.generate`).
        protocol: registered protocol name; defaults to
            ``schedule.protocol``.
        params: public parameters (defaults to 128-bit, the test size).
        data: optional ``(receiver values, sender values)`` override.
        journal_root: directory for the two parties' journal dirs; a
            temporary directory (cleaned up afterwards) when omitted.
        wall_timeout_s: budget after which a party is declared hung.

    Returns:
        A :class:`ChaosResult`; assert on ``result.ok`` and print
        ``result.describe()`` on failure.
    """
    from ..protocols.parties import PublicParams, ReceiverMachine, SenderMachine
    from ..protocols.spec import get_spec
    from . import serialization
    from .faults import FaultInjector
    from .journal import (
        WAL_SUFFIX,
        JournalDir,
        JournalError,
        SessionJournal,
        peek_state,
        recover_receiver_session,
        recover_sender_session,
    )
    from .session import (
        ReceiverSession,
        RetryPolicy,
        SenderSession,
        SessionConfig,
        SessionError,
    )
    from .tcp import SocketEndpoint

    protocol = protocol if protocol is not None else schedule.protocol
    if protocol is None:
        raise ValueError(
            "no protocol: pass protocol= or use ChaosSchedule.generate"
        )
    spec = get_spec(protocol)
    if data is not None:
        v_r, v_s = data
    elif protocol in _DEFAULT_DATA:
        v_r, v_s = _DEFAULT_DATA[protocol]
    else:
        raise ValueError(
            f"no default data for {protocol!r}; pass data=(v_r, v_s)"
        )
    if params is None:
        params = PublicParams.for_bits(128)

    s_seed = f"chaos-s-{schedule.seed}"
    r_seed = f"chaos-r-{schedule.seed}"

    def make_sender() -> Any:
        return spec.make_sender(v_s, params, random.Random(s_seed))

    def make_receiver(params_wire: Any) -> Any:
        return spec.make_receiver(
            v_r, PublicParams.from_wire(params_wire), random.Random(r_seed)
        )

    # Clean reference run: the expected answer plus the byte-exact
    # wires every completed journal must reproduce.
    ref_sender = SenderMachine(spec, v_s, params, random.Random(s_seed))
    ref_receiver = ReceiverMachine(spec, v_r, params, random.Random(r_seed))
    wires: list[tuple[str, Any]] = []
    for rnd in spec.rounds:
        producer, consumer = (
            (ref_receiver, ref_sender)
            if rnd.source == "R"
            else (ref_sender, ref_receiver)
        )
        wire = producer.produce(rnd).to_wire()
        wires.append((rnd.source, wire))
        consumer.consume(rnd, wire)
    expected = ref_receiver.finish()

    config = SessionConfig(
        timeout_s=0.25,
        retry=RetryPolicy(
            max_attempts=4, base_delay_s=0.005, max_delay_s=0.04
        ),
        max_reconnects=12,
        fin_grace_s=0.02,
    )

    cleanup = None
    if journal_root is None:
        cleanup = tempfile.TemporaryDirectory(
            prefix="repro-chaos-", ignore_cleanup_errors=True
        )
        journal_root = cleanup.name
    root = Path(journal_root)

    sender_io = (
        FaultyJournalIO(schedule.sender_disk) if schedule.sender_disk else None
    )
    receiver_io = (
        FaultyJournalIO(schedule.receiver_disk)
        if schedule.receiver_disk
        else None
    )
    sender_dir = JournalDir(root / "sender", io=sender_io)
    receiver_dir = JournalDir(root / "receiver", io=receiver_io)
    client_net = (
        FaultInjector(schedule.client_net) if schedule.client_net else None
    )
    server_net = (
        FaultInjector(schedule.server_net) if schedule.server_net else None
    )
    sender_hook = (
        CrashHook(*schedule.sender_crash) if schedule.sender_crash else None
    )
    receiver_hook = (
        CrashHook(*schedule.receiver_crash)
        if schedule.receiver_crash
        else None
    )

    broker = _PairBroker(config.timeout_s, SocketEndpoint)

    def sender_accept() -> Any:
        transport = broker.accept()
        return server_net.wrap(transport) if server_net else transport

    def receiver_connect() -> Any:
        transport = broker.connect()
        return client_net.wrap(transport) if client_net else transport

    def complete_path(jdir: Any, role: str) -> Path | None:
        """A completed (rotated or done-but-unrotated) journal, if any."""
        for path in sorted(jdir.path.glob(f"{role}-{protocol}-*")):
            if path.suffix == WAL_SUFFIX:
                try:
                    state = peek_state(path)
                except JournalError:
                    continue
                if state is None or not state.complete:
                    continue
            elif path.suffix != ".done":
                continue
            return path
        return None

    def close_journal(session: Any) -> None:
        if session is not None and session.journal is not None:
            session.journal.close()

    def sender_attempt() -> Any:
        done = complete_path(sender_dir, "sender")
        if done is not None:
            # A previous life finished the run; only the rotation (and
            # the in-memory state, which dies with a process) was lost.
            if done.suffix == WAL_SUFFIX:
                SessionJournal(done, io=sender_io).rotate()
            return None
        pending = sender_dir.incomplete("sender", protocol)
        if pending:
            session = recover_sender_session(
                pending[0], params, make_sender, config=config,
                chunk_size=schedule.chunk_size, io=sender_io,
            )
        else:
            session = SenderSession(
                protocol, params, make_sender, config=config,
                rng=random.Random(f"chaos-sx-{schedule.seed}"),
                journal=sender_dir, chunk_size=schedule.chunk_size,
            )
        try:
            return session.run(sender_accept)
        finally:
            close_journal(session)

    def receiver_attempt() -> Any:
        done = complete_path(receiver_dir, "receiver")
        if done is not None:
            # Salvage: replay the completed journal to its answer
            # offline - the peer may be long gone.
            session = recover_receiver_session(
                done, make_receiver, config=config,
                chunk_size=schedule.chunk_size, io=receiver_io,
            )
            try:
                if session._machine is None:
                    raise JournalError(
                        f"{done}: complete journal without parameters"
                    )
                answer = session._machine.finish()
                session.journal.rotate()
                return answer
            finally:
                close_journal(session)
        pending = receiver_dir.incomplete("receiver", protocol)
        if pending:
            session = recover_receiver_session(
                pending[0], make_receiver, config=config,
                chunk_size=schedule.chunk_size, io=receiver_io,
            )
        else:
            session = ReceiverSession(
                protocol, make_receiver, config=config,
                rng=random.Random(f"chaos-rx-{schedule.seed}"),
                journal=receiver_dir, chunk_size=schedule.chunk_size,
            )
        try:
            return session.run(receiver_connect)
        finally:
            close_journal(session)

    def supervise(
        hook: CrashHook | None, attempt: Callable[[], Any]
    ) -> PartyOutcome:
        """The per-party supervisor: run, die, recover, repeat."""
        restarts = 0
        while True:
            try:
                with hooked(hook):
                    return PartyOutcome("answer", attempt(), None, restarts)
            except (SimulatedCrash, JournalError) as exc:
                restarts += 1
                if restarts > schedule.max_restarts:
                    return PartyOutcome("error", None, exc, restarts)
            except SessionError as exc:
                return PartyOutcome("error", None, exc, restarts)
            except BaseException as exc:
                return PartyOutcome("violation", None, exc, restarts)

    outcomes: dict[str, PartyOutcome] = {}
    threads = [
        threading.Thread(
            target=lambda: outcomes.__setitem__(
                "sender", supervise(sender_hook, sender_attempt)
            ),
            name="chaos-sender",
            daemon=True,
        ),
        threading.Thread(
            target=lambda: outcomes.__setitem__(
                "receiver", supervise(receiver_hook, receiver_attempt)
            ),
            name="chaos-receiver",
            daemon=True,
        ),
    ]
    import time as _time

    for thread in threads:
        thread.start()
    deadline = _time.monotonic() + wall_timeout_s
    for thread in threads:
        thread.join(timeout=max(deadline - _time.monotonic(), 0.0))
    sender_out = outcomes.get("sender", PartyOutcome("hang"))
    receiver_out = outcomes.get("receiver", PartyOutcome("hang"))

    journals_ok = True
    notes: list[str] = []
    if schedule.chunk_size is None:
        for role, jdir, letter, outcome in (
            ("sender", sender_dir, "S", sender_out),
            ("receiver", receiver_dir, "R", receiver_out),
        ):
            if outcome.kind != "answer":
                continue
            path = complete_path(jdir, role)
            if path is None:
                journals_ok = False
                notes.append(f"{role} finished without a complete journal")
                continue
            state = peek_state(path)
            expect_out = [
                serialization.encode(w) for src, w in wires if src == letter
            ]
            expect_in = [
                serialization.encode(w) for src, w in wires if src != letter
            ]
            if state is None or not state.complete:
                journals_ok = False
                notes.append(f"{role} journal {path.name} not complete")
            elif state.outbound != expect_out or state.inbound != expect_in:
                journals_ok = False
                notes.append(
                    f"{role} journal {path.name} diverges from the "
                    "reference wires"
                )
    if cleanup is not None:
        cleanup.cleanup()

    return ChaosResult(
        schedule=schedule,
        protocol=protocol,
        expected=expected,
        receiver=receiver_out,
        sender=sender_out,
        journals_ok=journals_ok,
        notes=notes,
        net_stats={
            "client": client_net.stats.as_dict() if client_net else None,
            "server": server_net.stats.as_dict() if server_net else None,
        },
        disk_stats={
            "sender": sender_io.stats.as_dict() if sender_io else None,
            "receiver": receiver_io.stats.as_dict() if receiver_io else None,
        },
        crash_stats={
            "sender": sender_hook.as_dict() if sender_hook else None,
            "receiver": receiver_hook.as_dict() if receiver_hook else None,
        },
    )


# ----------------------------------------------------------------------
# Worker-crash axis: SIGKILL and heartbeat-hang against real forked
# shard workers, proving the supervisor's self-healing end to end.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerCrashSchedule:
    """One seed's worth of worker murder for a sharded server run.

    Unlike :class:`ChaosSchedule` (in-process, simulated crashes at
    named code points) this axis kills *real forked worker processes*
    under a live :class:`~repro.net.shard.ShardedProtocolServer` while
    a herd of concurrent journaled sessions runs against it:

    * ``kills`` - ``(delay_s, shard)`` pairs: SIGKILL that shard's
      worker that long after the herd starts;
    * ``hangs`` - ``(delay_s, shard, wedge_s)`` triples: wedge the
      worker's control loop (it keeps serving but stops heartbeating,
      the signature of a hung process) so the supervisor's
      missed-heartbeat deadline kills and respawns it.

    All fields derive from ``seed`` alone in :meth:`generate`, so a
    failing schedule replays from its printed seed.
    """

    seed: int = 0
    sessions: int = 12
    shards: int = 2
    kills: tuple[tuple[float, int], ...] = ((0.2, 0),)
    hangs: tuple[tuple[float, int, float], ...] = ()

    @classmethod
    def generate(
        cls,
        seed: int,
        sessions: int | None = None,
        shards: int | None = None,
    ) -> "WorkerCrashSchedule":
        """Derive a kill/hang schedule deterministically from ``seed``.

        Every draw comes from one rng seeded by ``seed``, so the same
        seed always yields the same schedule even when ``sessions`` or
        ``shards`` are overridden (the overrides replace the drawn
        values *after* all draws happen).
        """
        rng = random.Random(f"repro-worker-crash-{seed}")
        drawn_shards = rng.choice((2, 2, 3))
        drawn_sessions = rng.choice((8, 12, 16))
        kills = tuple(
            sorted(
                (round(rng.uniform(0.05, 0.9), 3), rng.randrange(drawn_shards))
                for _ in range(rng.choice((1, 2, 2, 3)))
            )
        )
        hangs: tuple[tuple[float, int, float], ...] = ()
        if rng.random() < 0.5:
            hangs = (
                (
                    round(rng.uniform(0.05, 0.7), 3),
                    rng.randrange(drawn_shards),
                    round(rng.uniform(0.5, 1.0), 3),
                ),
            )
        n_shards = shards if shards is not None else drawn_shards
        kills = tuple((d, s % n_shards) for d, s in kills)
        hangs = tuple((d, s % n_shards, w) for d, s, w in hangs)
        return cls(
            seed=seed,
            sessions=sessions if sessions is not None else drawn_sessions,
            shards=n_shards,
            kills=kills,
            hangs=hangs,
        )

    def describe(self) -> str:
        """One line naming the seed and every scheduled event."""
        events = [f"kill(shard={s}, t={d}s)" for d, s in self.kills] + [
            f"hang(shard={s}, t={d}s, wedge={w}s)" for d, s, w in self.hangs
        ]
        return (
            f"worker-crash seed {self.seed}: {self.sessions} sessions on "
            f"{self.shards} shards, " + ", ".join(events)
        )


@dataclass
class WorkerCrashOutcome:
    """How one herd session ended under a worker-crash schedule.

    ``kind`` is ``"answer"`` (finished; ``matched`` says whether the
    bytes equal the fault-free reference), ``"error"`` (a typed
    failure escaped the retry budget - tolerable only if typed), or
    ``"hang"`` (never finished in the wall budget). ``raw_reset``
    flags the one thing the supervisor contract forbids outright: a
    raw ``ConnectionResetError`` reaching the client.
    """

    session: int
    kind: str
    matched: bool = False
    elapsed_s: float = 0.0
    redials: int = 0
    reconnects: int = 0
    worker_lost: int = 0
    error: str | None = None
    raw_reset: bool = False


@dataclass
class WorkerCrashResult:
    """Everything :func:`run_worker_crash_schedule` observed."""

    schedule: WorkerCrashSchedule
    outcomes: list[WorkerCrashOutcome]
    injected: list[dict[str, Any]] = field(default_factory=list)
    health: list[dict[str, Any]] = field(default_factory=list)
    drain_report: list[dict[str, Any]] = field(default_factory=list)
    worker_deaths: int = 0
    hung_workers: int = 0
    respawns: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The availability invariant under worker murder.

        Every session finished with bytes identical to the fault-free
        reference, and no client ever saw a raw connection reset.
        """
        if any(o.raw_reset for o in self.outcomes):
            return False
        return all(o.kind == "answer" and o.matched for o in self.outcomes)

    def describe(self) -> str:
        """A failure-report block; the seed reproduces the schedule."""
        lines = [
            self.schedule.describe(),
            f"deaths={self.worker_deaths} hung={self.hung_workers} "
            f"respawns={self.respawns}",
        ]
        for o in self.outcomes:
            if o.kind == "answer" and o.matched and not o.raw_reset:
                continue
            lines.append(
                f"- session {o.session}: {o.kind}"
                + ("" if o.matched or o.kind != "answer" else " WRONG BYTES")
                + (" RAW RESET" if o.raw_reset else "")
                + (f" ({o.error})" if o.error else "")
                + f" after {o.redials} redials/{o.reconnects} reconnects"
            )
        for note in self.notes:
            lines.append(f"- {note}")
        lines.append(
            "- replay: run_worker_crash_schedule("
            f"WorkerCrashSchedule.generate({self.schedule.seed}))"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping for JSON benchmark records."""
        return {
            "seed": self.schedule.seed,
            "ok": self.ok,
            "sessions": self.schedule.sessions,
            "shards": self.schedule.shards,
            "kills": len(self.schedule.kills),
            "hangs": len(self.schedule.hangs),
            "worker_deaths": self.worker_deaths,
            "hung_workers": self.hung_workers,
            "respawns": self.respawns,
            "answers": sum(1 for o in self.outcomes if o.kind == "answer"),
            "matched": sum(1 for o in self.outcomes if o.matched),
            "raw_resets": sum(1 for o in self.outcomes if o.raw_reset),
            "redials": sum(o.redials for o in self.outcomes),
            "reconnects": sum(o.reconnects for o in self.outcomes),
            "worker_lost": sum(o.worker_lost for o in self.outcomes),
        }


def _herd_data(index: int) -> list[str]:
    """Session ``index``'s receiver catalog - distinct per session so a
    cross-routed or cross-recovered answer cannot go unnoticed."""
    return (
        ["shared", "alpha" if index % 2 else f"omega-{index}"]
        + [f"secret-{index}-{k}" for k in range(6)]
    )


_HERD_SENDER = ["shared", "alpha", "beta"] + [f"filler-{k}" for k in range(5)]


def run_worker_crash_schedule(
    schedule: WorkerCrashSchedule,
    journal_root: str | Path | None = None,
    bits: int = 96,
    heartbeat_s: float = 0.1,
    restart_budget: int = 16,
    wall_timeout_s: float = 60.0,
    stagger_s: float = 0.08,
) -> WorkerCrashResult:
    """Run a herd of sessions while killing their workers, for real.

    Starts a :class:`~repro.net.shard.ShardedProtocolServer` with
    forked, supervised, journaled workers; drives
    ``schedule.sessions`` concurrent async receiver sessions (each
    with its own catalog, dials staggered ``stagger_s`` apart and
    rounds streamed chunk-by-chunk so the herd stays in flight across
    every scheduled event) against it; SIGKILLs and wedges workers at
    the scheduled moments; and compares every answer byte-for-byte
    (canonical encoding of the sorted answer) against a fault-free
    in-memory reference run of the same protocol. Clients absorb
    typed refusals (:class:`~repro.net.session.ServerBusyError`,
    :class:`~repro.net.session.WorkerLost`) by redialing with the
    server's own retry hints; anything rawer is recorded as the
    invariant breach it is.

    Returns a :class:`WorkerCrashResult`; assert on ``result.ok`` and
    print ``result.describe()`` on failure.
    """
    import asyncio
    import time

    from ..protocols.parties import (
        PublicParams,
        ReceiverMachine,
        SenderMachine,
    )
    from ..protocols.spec import get_spec
    from . import serialization
    from .aio import connect_receiver_async
    from .server import ProtocolOffer
    from .session import (
        RetryPolicy,
        ServerBusyError,
        SessionConfig,
        SessionError,
        WorkerLost,
        busy_backoff_s,
    )
    from .shard import ShardedProtocolServer

    protocol = "intersection"
    spec = get_spec(protocol)
    params = PublicParams.for_bits(bits)

    # Fault-free reference: an in-memory run per session's catalog.
    # The answer bytes every herd session must reproduce exactly.
    reference: list[bytes] = []
    for i in range(schedule.sessions):
        ref_s = SenderMachine(
            spec, _HERD_SENDER, params, random.Random(f"ref-s-{i}")
        )
        ref_r = ReceiverMachine(
            spec, _herd_data(i), params, random.Random(f"ref-r-{i}")
        )
        for rnd in spec.rounds:
            producer, consumer = (
                (ref_r, ref_s) if rnd.source == "R" else (ref_s, ref_r)
            )
            wire = producer.produce(rnd).to_wire()
            consumer.consume(rnd, wire)
        reference.append(
            serialization.encode(sorted(ref_r.finish(), key=repr))
        )

    cleanup = None
    if journal_root is None:
        cleanup = tempfile.TemporaryDirectory(
            prefix="repro-worker-crash-", ignore_cleanup_errors=True
        )
        journal_root = cleanup.name

    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(
            max_attempts=6, base_delay_s=0.02, max_delay_s=0.25
        ),
        max_reconnects=30,
        fin_grace_s=0.05,
    )
    offer = ProtocolOffer.from_data(
        protocol, _HERD_SENDER, params, seed="worker-crash-sender"
    )
    server = ShardedProtocolServer(
        [offer],
        shards=schedule.shards,
        worker_processes=True,
        config=config,
        journal_dir=journal_root,
        max_sessions=schedule.sessions,
        restart_budget=restart_budget,
        heartbeat_s=heartbeat_s,
        chunk_size=2,
    ).start()

    outcomes: list[WorkerCrashOutcome] = []
    injected: list[dict[str, Any]] = []

    async def _herd() -> None:
        start = time.monotonic()
        deadline = start + wall_timeout_s

        async def one(i: int) -> WorkerCrashOutcome:
            rng = random.Random(f"repro-worker-crash-{schedule.seed}-c{i}")
            backoff_rng = random.Random(rng.getrandbits(64))
            # Staggered dials keep the herd in flight across every
            # scheduled kill instead of finishing before the first one.
            await asyncio.sleep(i * stagger_s)
            t0 = time.monotonic()
            redials = 0
            worker_lost = 0
            reconnects = 0
            while True:
                try:
                    answer, stats = await connect_receiver_async(
                        protocol, _herd_data(i), rng,
                        "127.0.0.1", server.port, config=config,
                        chunk_size=2,
                    )
                except (ServerBusyError, WorkerLost) as exc:
                    redials += 1
                    if isinstance(exc, WorkerLost):
                        worker_lost += 1
                    if time.monotonic() > deadline:
                        return WorkerCrashOutcome(
                            session=i, kind="hang", redials=redials,
                            elapsed_s=time.monotonic() - t0,
                            error=f"deadline after {type(exc).__name__}",
                        )
                    await asyncio.sleep(
                        busy_backoff_s(
                            getattr(exc, "retry_after_s", None),
                            backoff_rng, fallback_s=0.05,
                        )
                    )
                    continue
                except SessionError as exc:
                    return WorkerCrashOutcome(
                        session=i, kind="error", redials=redials,
                        elapsed_s=time.monotonic() - t0,
                        error=repr(exc),
                        raw_reset=isinstance(
                            exc.__cause__, ConnectionResetError
                        ),
                    )
                except (ConnectionError, OSError, TimeoutError) as exc:
                    # A raw socket error reaching the client is exactly
                    # what the supervisor contract forbids.
                    return WorkerCrashOutcome(
                        session=i, kind="error", redials=redials,
                        elapsed_s=time.monotonic() - t0,
                        error=repr(exc),
                        raw_reset=isinstance(exc, ConnectionResetError),
                    )
                worker_lost += stats.worker_lost
                reconnects = stats.reconnects
                return WorkerCrashOutcome(
                    session=i,
                    kind="answer",
                    matched=(
                        serialization.encode(sorted(answer, key=repr))
                        == reference[i]
                    ),
                    elapsed_s=time.monotonic() - t0,
                    redials=redials,
                    reconnects=reconnects,
                    worker_lost=worker_lost,
                )

        async def murder() -> None:
            events = [("kill", d, s, None) for d, s in schedule.kills] + [
                ("hang", d, s, w) for d, s, w in schedule.hangs
            ]
            for kind, delay, shard, wedge_s in sorted(
                events, key=lambda e: e[1]
            ):
                await asyncio.sleep(max(start + delay - time.monotonic(), 0))
                if kind == "kill":
                    pid = server.kill_worker(shard)
                    injected.append(
                        {"event": "kill", "shard": shard, "pid": pid,
                         "t_s": round(time.monotonic() - start, 3)}
                    )
                else:
                    sent = server.wedge_worker(shard, wedge_s)
                    injected.append(
                        {"event": "hang", "shard": shard, "sent": sent,
                         "wedge_s": wedge_s,
                         "t_s": round(time.monotonic() - start, 3)}
                    )

        murderer = asyncio.ensure_future(murder())
        tasks = [
            asyncio.wait_for(one(i), wall_timeout_s)
            for i in range(schedule.sessions)
        ]
        for i, result in enumerate(
            await asyncio.gather(*tasks, return_exceptions=True)
        ):
            if isinstance(result, WorkerCrashOutcome):
                outcomes.append(result)
            elif isinstance(result, asyncio.TimeoutError):
                outcomes.append(
                    WorkerCrashOutcome(session=i, kind="hang",
                                       elapsed_s=wall_timeout_s)
                )
            else:
                outcomes.append(
                    WorkerCrashOutcome(
                        session=i, kind="error", error=repr(result),
                        raw_reset=isinstance(result, ConnectionResetError),
                    )
                )
        await murderer

    health: list[dict[str, Any]] = []
    try:
        asyncio.run(_herd())
        health = server.health()
    finally:
        server.shutdown(drain_timeout_s=2.0)
    result = WorkerCrashResult(
        schedule=schedule,
        outcomes=sorted(outcomes, key=lambda o: o.session),
        injected=injected,
        health=health,
        drain_report=server.drain_report,
        worker_deaths=server.worker_deaths,
        hung_workers=server.hung_workers,
        respawns=server.respawns,
    )
    if cleanup is not None:
        cleanup.cleanup()
    return result
