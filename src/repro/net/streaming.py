"""Streaming helpers: double-buffered chunk production for pipelining.

The streaming win the chunked wire format (:mod:`repro.net.serialization`)
buys is *overlap*: while chunk ``k`` of a round is on the wire, the
:class:`~repro.crypto.engine.CryptoEngine` should already be
exponentiating chunk ``k+1``. The producer side of every round is an
iterator (:meth:`~repro.protocols.parties._Machine.produce_chunks`), so
overlap reduces to running that iterator one step ahead of the consumer
on a background thread - the classic bounded-queue double buffer
implemented by :func:`prefetch`.

:class:`TimedIterator` measures the time spent *inside* the wrapped
iterator (on whichever thread drives it), which is how the transport
drivers attribute producer-side crypto separately from wire time and
compute the pipeline-overlap ratio reported by
:class:`~repro.analysis.instrumentation.MetricsRecorder`.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Any, AsyncIterator, Iterable, Iterator

from .chaos import crash_point

__all__ = ["DEFAULT_PREFETCH_DEPTH", "aprefetch", "prefetch", "TimedIterator"]

#: Queue depth of the production-side double buffer: one chunk in
#: flight on the wire, one being computed, is the classic double
#: buffer; a depth of 2 tolerates jitter on either side.
DEFAULT_PREFETCH_DEPTH = 2

_DONE = object()
_POLL_S = 0.05


class TimedIterator:
    """Iterator wrapper accumulating time spent producing items.

    ``elapsed_s`` sums the wall time of every ``next()`` call on the
    underlying iterator, measured on the thread that drives it - under
    :func:`prefetch` that is the background producer thread, so the
    total is the genuine production (crypto) cost even when it overlaps
    the consumer's I/O.
    """

    def __init__(self, source: Iterable[Any]):
        self._source = iter(source)
        self.elapsed_s = 0.0
        self.items = 0

    def __iter__(self) -> "TimedIterator":
        return self

    def __next__(self) -> Any:
        start = time.perf_counter()
        try:
            item = next(self._source)
        finally:
            self.elapsed_s += time.perf_counter() - start
        self.items += 1
        return item


def prefetch(
    source: Iterable[Any], depth: int = DEFAULT_PREFETCH_DEPTH
) -> Iterator[Any]:
    """Yield ``source``'s items, produced ``depth`` ahead on a thread.

    A bounded queue decouples production from consumption: while the
    consumer blocks (e.g. in a socket send waiting for the peer), the
    producer thread keeps filling the buffer, so per-item production
    cost overlaps per-item consumption cost instead of adding to it.
    Order is preserved; a producer exception is re-raised at the
    consumer's next pull; abandoning the generator (``close()``/GC)
    stops the producer thread promptly.
    """
    if depth < 1:
        raise ValueError(f"prefetch depth must be >= 1, got {depth}")
    buffer: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()
    failure: list[BaseException] = []

    def _put(item: Any) -> bool:
        # Poll so an abandoned consumer (stop set, queue full) cannot
        # wedge the producer thread forever.
        while not stop.is_set():
            try:
                buffer.put(item, timeout=_POLL_S)
                return True
            except queue.Full:
                continue
        return False

    def _produce() -> None:
        try:
            for item in source:
                if not _put(item):
                    return
        except BaseException as exc:  # re-raised consumer-side
            failure.append(exc)
        finally:
            _put(_DONE)

    worker = threading.Thread(
        target=_produce, name="repro-prefetch", daemon=True
    )
    worker.start()
    try:
        while True:
            item = buffer.get()
            if item is _DONE:
                break
            # Fires on the consumer (session) thread, so a simulated
            # crash kills the party mid-stream, not the prefetcher.
            crash_point("streaming.chunk.yield")
            yield item
        if failure:
            raise failure[0]
        worker.join()
    finally:
        stop.set()


async def aprefetch(
    source: Iterable[Any],
    depth: int = DEFAULT_PREFETCH_DEPTH,
    executor: Any = None,
) -> AsyncIterator[Any]:
    """Async :func:`prefetch`: the double buffer as a producer task.

    Same overlap, different mechanics: instead of a producer *thread*,
    a producer *task* steps the (synchronous, possibly crypto-heavy)
    iterator through ``loop.run_in_executor`` - so production blocks an
    executor worker, never the event loop - and feeds a bounded
    ``asyncio.Queue`` the consumer drains. While the consumer awaits an
    acknowledged send of chunk ``k``, chunk ``k+1`` is already being
    computed. Order is preserved; a producer exception re-raises at the
    consumer's next pull; abandoning the async generator cancels the
    producer task. ``executor=None`` uses the loop's default executor.
    """
    if depth < 1:
        raise ValueError(f"prefetch depth must be >= 1, got {depth}")
    loop = asyncio.get_running_loop()
    iterator = iter(source)

    def _step() -> Any:
        # StopIteration must not cross the executor boundary into a
        # coroutine (it would surface as RuntimeError): fold it into
        # the sentinel here, on the worker thread.
        try:
            return next(iterator)
        except StopIteration:
            return _DONE

    buffer: asyncio.Queue = asyncio.Queue(maxsize=depth)
    failure: list[BaseException] = []

    async def _produce() -> None:
        try:
            while True:
                item = await loop.run_in_executor(executor, _step)
                if item is _DONE:
                    break
                await buffer.put(item)
        except asyncio.CancelledError:
            # The consumer abandoned the stream: nobody is waiting for
            # the sentinel, and putting it could block forever.
            raise
        except BaseException as exc:  # re-raised consumer-side
            failure.append(exc)
        await buffer.put(_DONE)

    task = loop.create_task(_produce())
    try:
        while True:
            item = await buffer.get()
            if item is _DONE:
                break
            crash_point("streaming.chunk.yield")
            yield item
        if failure:
            raise failure[0]
    finally:
        task.cancel()
