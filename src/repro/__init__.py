"""repro - a reproduction of *Information Sharing Across Private
Databases* (Agrawal, Evfimievski, Srikant; SIGMOD 2003).

The library implements the paper's minimal-sharing protocols -
intersection, equijoin, intersection size and equijoin size - over a
from-scratch commutative-encryption substrate (the power function on
quadratic residues modulo a safe prime), together with the broken
naive-hash baseline and its attack, executable proof simulators and a
disclosure audit, the Section 6 cost model, the Appendix A circuit
baseline (including a working Yao garbled-circuit PSI), and the two
motivating applications (selective document sharing, medical research).

Quickstart (one call, both parties in-process)::

    import repro

    result = repro.run(
        "intersection",
        receiver_data=["alice", "bob", "carol"],
        sender_data=["bob", "carol", "dave"],
        bits=128,
        seed=7,
    )
    assert result.answer == {"bob", "carol"}

Networked runs use the same three-verb facade - ``repro.serve`` hosts
party S on a TCP port (``port=0`` picks a free one and reports it),
``repro.connect`` runs party R against it, and both stream
million-item rounds in bounded chunks when given a ``chunk_size``.
The classic per-protocol helpers (``run_intersection`` and friends)
remain for result objects carrying full transcripts.
"""

from .api import (
    Catalog,
    ConnectResult,
    Peer,
    QueryResult,
    RunResult,
    ServeResult,
    SessionOptions,
    connect,
    open_catalog,
    run,
    serve,
)
from .db import Table, ValueMultiset
from .protocols import (
    EquijoinResult,
    EquijoinSizeResult,
    IntersectionResult,
    IntersectionSizeResult,
    ProtocolSuite,
    join_tables,
    run_equijoin,
    run_equijoin_size,
    run_intersection,
    run_intersection_size,
)

__version__ = "1.0.0"

__all__ = [
    "run",
    "serve",
    "connect",
    "RunResult",
    "ServeResult",
    "ConnectResult",
    "open_catalog",
    "Catalog",
    "Peer",
    "QueryResult",
    "SessionOptions",
    "ProtocolSuite",
    "run_intersection",
    "run_intersection_size",
    "run_equijoin",
    "run_equijoin_size",
    "join_tables",
    "IntersectionResult",
    "IntersectionSizeResult",
    "EquijoinResult",
    "EquijoinSizeResult",
    "Table",
    "ValueMultiset",
    "__version__",
]
