"""repro - a reproduction of *Information Sharing Across Private
Databases* (Agrawal, Evfimievski, Srikant; SIGMOD 2003).

The library implements the paper's minimal-sharing protocols -
intersection, equijoin, intersection size and equijoin size - over a
from-scratch commutative-encryption substrate (the power function on
quadratic residues modulo a safe prime), together with the broken
naive-hash baseline and its attack, executable proof simulators and a
disclosure audit, the Section 6 cost model, the Appendix A circuit
baseline (including a working Yao garbled-circuit PSI), and the two
motivating applications (selective document sharing, medical research).

Quickstart::

    from repro import ProtocolSuite, run_intersection

    suite = ProtocolSuite.default(bits=512, seed=7)
    result = run_intersection(
        v_r=["alice", "bob", "carol"],
        v_s=["bob", "carol", "dave"],
        suite=suite,
    )
    assert result.intersection == {"bob", "carol"}
"""

from .db import Table, ValueMultiset
from .protocols import (
    EquijoinResult,
    EquijoinSizeResult,
    IntersectionResult,
    IntersectionSizeResult,
    ProtocolSuite,
    join_tables,
    run_equijoin,
    run_equijoin_size,
    run_intersection,
    run_intersection_size,
)

__version__ = "1.0.0"

__all__ = [
    "ProtocolSuite",
    "run_intersection",
    "run_intersection_size",
    "run_equijoin",
    "run_equijoin_size",
    "join_tables",
    "IntersectionResult",
    "IntersectionSizeResult",
    "EquijoinResult",
    "EquijoinSizeResult",
    "Table",
    "ValueMultiset",
    "__version__",
]
