"""Experiment A.1.2 - circuit sizes (the n / m / f(n) table).

Paper table (w = 32):

    n            m    f(n)
    10,000       11   2.3e8
    1 million    19   7.3e10
    100 million  32   1.9e13

and "the brute force circuit does much worse, with 6.3e9, 6.3e13 and
6.3e17 respectively". We regenerate both rows from the re-derived
closed form and cross-check the model against *actually built* circuits
at small n.
"""

from __future__ import annotations

import pytest

from repro.circuits.builders import brute_force_intersection_circuit
from repro.circuits.costmodel import CircuitCostModel, equality_gates

PAPER_TABLE = {10**4: (11, 2.3e8), 10**6: (19, 7.3e10), 10**8: (32, 1.9e13)}
PAPER_BRUTE = {10**4: 6.3e9, 10**6: 6.3e13, 10**8: 6.3e17}


def test_report_partitioning_table():
    cm = CircuitCostModel()
    print("\nA.1.2 partitioning circuit (w=32):")
    print("  n          m (paper)   f(n) (paper)")
    for row in cm.circuit_size_table():
        pm, pf = PAPER_TABLE[row.n]
        print(
            f"  {row.n:.0e}   {row.m:2d} ({pm:2d})     "
            f"{row.gates:.2e} ({pf:.1e})"
        )
        assert row.m == pm
        assert row.gates == pytest.approx(pf, rel=0.05)


def test_report_brute_force_row():
    cm = CircuitCostModel()
    print("\nA.1.2 brute-force circuit (w=32):")
    for n, expected in PAPER_BRUTE.items():
        gates = cm.brute_force_gates(n, n)
        print(f"  n={n:.0e}: {gates:.2e} gates (paper {expected:.1e})")
        assert gates == pytest.approx(expected, rel=0.01)


def test_report_model_vs_built_circuits():
    """The analytic count vs real constructed circuits at tiny n.

    The model is a *lower bound* counting only comparators; built
    circuits add OR-merge gates, so built >= model comparator count.
    """
    cm = CircuitCostModel(width=8)
    print("\nA.1.2 model vs built circuits (w=8):")
    for n in (2, 4, 8, 16):
        built = brute_force_intersection_circuit(8, n, n).gate_count
        bound = cm.brute_force_gates(n, n)
        merge = n * (n - 1)
        print(f"  n={n:3d}: built {built:6d} gates, bound {bound:.0f} + {merge} merges")
        assert built == bound + merge
        assert built >= bound


@pytest.mark.parametrize("n", [4, 8, 16])
def test_circuit_construction_benchmark(benchmark, n):
    circuit = benchmark(brute_force_intersection_circuit, 8, n, n)
    assert circuit.gate_count == n * n * equality_gates(8) + n * (n - 1)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.appendix-a-gates"))
