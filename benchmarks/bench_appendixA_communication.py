"""Experiment A.2 (communication) - circuit vs our protocol.

Paper table (bits):

    n      circuit input (OT)  circuit tables   ours
    1e4    1e9                 6.0e10           3e7
    1e6    1e11                1.8e13           3e9
    1e8    1e13                4.9e15           3e11

with the headline "for n = 1 million, the communication time for the
circuit-based protocol is 144 days (using a T1 line), versus 0.5 hours
for our protocol" and the conclusion that circuits need 1,000-10,000x
the communication. We regenerate the table and validate the garbled-
table volume model against *actually garbled* circuits at small n.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.builders import brute_force_intersection_circuit
from repro.circuits.costmodel import CircuitCostModel
from repro.circuits.garble import garble

PAPER_ROWS = {
    10**4: (1e9, 6.0e10, 3e7),
    10**6: (1e11, 1.8e13, 3e9),
    10**8: (1e13, 4.9e15, 3e11),
}


def test_report_communication_table():
    cm = CircuitCostModel()
    print("\nA.2 communication comparison (bits):")
    print("  n       input (OT)  tables      ours      (paper)")
    for row in cm.comparison_table():
        p_in, p_tab, p_ours = PAPER_ROWS[row.n]
        print(
            f"  {row.n:.0e}  {row.circuit_input_bits:.1e}    "
            f"{row.circuit_tables_bits:.1e}   {row.ours_bits:.1e}   "
            f"({p_in:.0e}, {p_tab:.1e}, {p_ours:.0e})"
        )
        assert row.circuit_input_bits == pytest.approx(p_in, rel=0.03)
        assert row.circuit_tables_bits == pytest.approx(p_tab, rel=0.05)
        assert row.ours_bits == pytest.approx(p_ours, rel=0.03)


def test_report_headline_144_days():
    cm = CircuitCostModel()
    row = {r.n: r for r in cm.comparison_table()}[10**6]
    circuit_days = cm.t1_transfer_days(row.circuit_tables_bits)
    ours_hours = cm.t1_transfer_days(row.ours_bits) * 24
    ratio = (row.circuit_input_bits + row.circuit_tables_bits) / row.ours_bits
    print(
        f"\nA.2 headline at n=1e6 on a T1:"
        f"\n  circuit tables: {circuit_days:.0f} days (paper: 144 days)"
        f"\n  our protocol:   {ours_hours:.2f} hours (paper: 0.5 hours)"
        f"\n  circuit/ours communication ratio: {ratio:.0f}x"
    )
    assert circuit_days == pytest.approx(144, rel=0.05)
    assert ours_hours == pytest.approx(0.5, rel=0.15)
    assert ratio > 1000


def test_report_model_vs_garbled_tables():
    """4 k0 bits/gate model vs real garbled circuits.

    Our garbling ships 4 rows of (128-bit label + color byte) = 544
    bits/gate vs the paper's 4 x 64 = 256 (it assumed 64-bit keys);
    same shape, constant factor 2.1x.
    """
    cm = CircuitCostModel()
    rng = random.Random(0)
    print("\nA.2 garbled-table volume, model vs built (w=8):")
    for n in (2, 4, 8):
        circuit = brute_force_intersection_circuit(8, n, n)
        garbled, _ = garble(circuit, rng)
        built_bits = 8 * garbled.table_bytes
        model_bits = 4 * cm.k0 * circuit.gate_count
        ratio = built_bits / model_bits
        print(
            f"  n={n}: built {built_bits} bits, model {model_bits} bits "
            f"(x{ratio:.2f} for 128-bit labels)"
        )
        assert ratio == pytest.approx(544 / 256, rel=0.01)


@pytest.mark.parametrize("n", [4, 8])
def test_garbling_benchmark(benchmark, n):
    circuit = brute_force_intersection_circuit(8, n, n)
    rng = random.Random(1)
    garbled, _ = benchmark(garble, circuit, rng)
    assert len(garbled.tables) == circuit.gate_count


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.appendix-a-comparison,circuits.garbling"))
