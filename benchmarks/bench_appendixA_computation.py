"""Experiment A.2 (computation) - circuit vs our protocol.

Paper table:

    n      circuit input (OT)   evaluation      ours
    1e4    5e4 C_e              4.7e8 C_r       4e4 C_e
    1e6    5e6 C_e              1.5e11 C_r      4e6 C_e
    1e8    5e8 C_e              3.8e13 C_r      4e8 C_e

and the conclusion: "our protocol will be substantially faster if
C_r > C_e / 10000, and slightly faster otherwise". We regenerate the
table, then *measure* C_r (one SHA-256-based PRF call, as used by our
garbled-circuit evaluator) and C_e on this machine to locate the real
C_r / C_e ratio and the verdict it implies.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.circuits.costmodel import CircuitCostModel

PAPER_ROWS = {
    10**4: (5e4, 4.7e8, 4e4),
    10**6: (5e6, 1.5e11, 4e6),
    10**8: (5e8, 3.8e13, 4e8),
}


def test_report_computation_table():
    cm = CircuitCostModel()
    print("\nA.2 computation comparison:")
    print("  n       input [C_e]  eval [C_r]   ours [C_e]  (paper values)")
    for row in cm.comparison_table():
        p_in, p_ev, p_ours = PAPER_ROWS[row.n]
        print(
            f"  {row.n:.0e}  {row.circuit_input_ce:.1e}     {row.circuit_eval_cr:.1e}   "
            f"{row.ours_ce:.1e}    ({p_in:.0e}, {p_ev:.1e}, {p_ours:.0e})"
        )
        assert row.circuit_input_ce == pytest.approx(p_in, rel=0.02)
        assert row.circuit_eval_cr == pytest.approx(p_ev, rel=0.05)
        assert row.ours_ce == pytest.approx(p_ours)


def _measure_cr(samples: int = 20000) -> float:
    """One PRF call as the garbled evaluator uses it (SHA-256 of ~40B)."""
    payload = b"label-a" * 3 + b"label-b" * 3
    start = time.perf_counter()
    for i in range(samples):
        hashlib.sha256(payload + i.to_bytes(4, "big")).digest()
    return (time.perf_counter() - start) / samples


def test_report_measured_cr_ce_verdict(calibration_1024):
    """Locate this machine on the paper's C_r > C_e/10000 criterion."""
    cr = _measure_cr()
    ce = calibration_1024.constants.ce_seconds
    ratio = ce / cr
    cm = CircuitCostModel()
    n = 10**6
    circuit_seconds = cm.input_coding_ce(n) * ce + cm.comparison_table()[1].circuit_eval_cr * cr
    ours_seconds = cm.ours_ce(n) * ce
    print(
        f"\nA.2 measured constants: C_e = {ce*1e3:.2f} ms, C_r = {cr*1e6:.2f} us, "
        f"C_e/C_r = {ratio:.0f}"
        f"\n  at n=1e6: circuit {circuit_seconds/3600:.2f} h vs ours "
        f"{ours_seconds/3600:.2f} h  ({circuit_seconds/ours_seconds:.1f}x)"
    )
    # The paper's criterion: substantially faster iff C_r > C_e/10000.
    if cr > ce / 10000:
        assert circuit_seconds / ours_seconds > 2
    assert ours_seconds < circuit_seconds  # ours never loses


def test_modexp_benchmark(benchmark, calibration_1024):
    """One 1024-bit modular exponentiation (the unit C_e)."""
    from repro.crypto.groups import QRGroup
    import random

    group = QRGroup.for_bits(1024)
    rng = random.Random(0)
    x = group.random_element(rng)
    e = group.random_exponent(rng)
    benchmark(pow, x, e, group.p)


def test_prf_benchmark(benchmark):
    """One PRF call (the unit C_r)."""
    payload = b"x" * 40
    benchmark(lambda: hashlib.sha256(payload).digest())


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.appendix-a-comparison"))
