"""Concurrent-session load against the sharded event-loop server.

Launches a whole herd of streaming receiver sessions into one client
event loop at once - every one of them in flight together - against a
:class:`~repro.net.shard.ShardedProtocolServer`, and records the
distribution of per-session completion latency (p50/p95/p99). Tail
latency under admission pressure is the serving claim the event-loop
refactor makes; a mean would hide exactly the part worth watching.

The measurement core (``drive_sessions``) lives in
:mod:`repro.bench.tasks.load`, registered as the
``load.async-sessions`` harness task. Run standalone for the full
1000-session herd across forked workers:

    PYTHONPATH=src python benchmarks/bench_load_sessions.py --full
"""

from __future__ import annotations

import json
import random

from repro.bench.tasks.load import drive_sessions


def test_report_concurrent_session_load():
    """Smoke herd: every session completes with the right answer and
    the latency tail is recorded as monotone percentiles."""
    record = drive_sessions(
        sessions=24, shards=2, max_sessions=16, n=4, bits=96,
        chunk_size=2, process_workers=False, rng=random.Random(20030609),
    )
    print("\nConcurrent-session load (sharded event-loop server):")
    print("  " + json.dumps({k: v for k, v in record.items()
                             if k != "metrics"}))
    print("  " + json.dumps(record["metrics"]))
    assert record["completed"] == 24
    assert record["answers_ok"] == 24
    metrics = record["metrics"]
    assert 0 < metrics["p50_ms"] <= metrics["p95_ms"] <= metrics["p99_ms"]
    assert metrics["throughput_sps"] > 0


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("load"))
