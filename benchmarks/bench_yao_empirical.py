"""Validation experiment - Appendix A made empirical.

The paper compares against Yao circuits analytically; having built a
working garbled-circuit PSI, we can run both protocols on identical
inputs at small n and observe the cost gap directly. The *shape* to
reproduce: the circuit's communication grows ~quadratically in n
(brute-force circuit) while ours grows linearly, so the gap widens with
n - at n = 16 the gap should already exceed an order of magnitude.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.circuits.garble import yao_intersection
from repro.crypto.groups import QRGroup
from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection import run_intersection


def _inputs(n, seed, width=16):
    rng = random.Random(seed)
    universe = list(range(1 << width))
    v_s = rng.sample(universe, n)
    v_r = rng.sample(v_s, n // 2) + rng.sample(universe, n - n // 2)
    return v_s, list(dict.fromkeys(v_r))[:n]


def test_report_yao_vs_ours():
    group = QRGroup.for_bits(256)
    width = 16
    print("\nAppendix A, empirical (256-bit group, w=16):")
    print(f"  {'n':>3s} {'yao [s]':>8s} {'yao [kB]':>9s} {'ours [s]':>9s} {'ours [kB]':>10s} {'comm gap':>9s}")
    gaps = []
    for n in (4, 8, 16):
        v_s, v_r = _inputs(n, n)
        rng = random.Random(n)

        start = time.perf_counter()
        yao = yao_intersection(v_s, v_r, width=width, group=group, rng=rng)
        yao_time = time.perf_counter() - start

        suite = ProtocolSuite.default(bits=256, seed=n)
        start = time.perf_counter()
        ours = run_intersection(v_r, v_s, suite)
        ours_time = time.perf_counter() - start

        assert yao.intersection == ours.intersection == (set(v_s) & set(v_r))
        gap = yao.total_bytes / ours.run.total_bytes
        gaps.append(gap)
        print(
            f"  {n:3d} {yao_time:8.3f} {yao.total_bytes/1024:9.1f} "
            f"{ours_time:9.3f} {ours.run.total_bytes/1024:10.1f} {gap:8.1f}x"
        )
    # The gap must widen with n (quadratic vs linear) and exceed 10x.
    assert gaps == sorted(gaps)
    assert gaps[-1] > 10


@pytest.mark.parametrize("n", [4, 8])
def test_yao_psi_benchmark(benchmark, n):
    group = QRGroup.for_bits(128)
    v_s, v_r = _inputs(n, n, width=8)
    v_s = [v % 256 for v in v_s]
    v_r = [v % 256 for v in v_r]

    def run():
        return yao_intersection(
            sorted(set(v_s)), sorted(set(v_r)), width=8, group=group,
            rng=random.Random(n),
        )

    stats = benchmark(run)
    assert stats.intersection == set(v_s) & set(v_r)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("circuits.yao-empirical"))
