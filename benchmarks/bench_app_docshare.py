"""Experiment S6.2.1 - selective document sharing.

Paper claim: |D_R| = 10 documents vs |D_S| = 100, 1000 significant
words each -> 4e6 C_e ~ 2 hours of computation on P = 10 processors and
3 Gbits ~ 35 minutes on a T1 line.

We run the *real* application at reduced scale (the per-pair protocol
is exercised end to end, TF-IDF included), validate the measured
encryption counts against the closed form, and reproduce the paper's
headline numbers from the estimate module (which uses the paper's
constants).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.estimates import document_sharing_estimate
from repro.apps.document_sharing import run_document_sharing
from repro.apps.tfidf import significant_words
from repro.protocols.base import ProtocolSuite
from repro.workloads.generator import document_corpus


def _small_corpus(words_per_doc=40, k=20, n_r=3, n_s=6):
    rng = random.Random(1)
    topic = [f"topic{i}" for i in range(10)]
    corpus_r = document_corpus(
        n_r, rng, vocabulary_size=500, words_per_doc=words_per_doc,
        topic_words=topic, topic_rate=0.9,
    )
    corpus_s = document_corpus(
        n_s, rng, vocabulary_size=500, words_per_doc=words_per_doc,
        topic_words=topic, topic_rate=0.9,
    )
    return significant_words(corpus_r, k), significant_words(corpus_s, k)


def test_report_paper_estimate():
    """The Section 6.2.1 numbers, from the cost model."""
    est = document_sharing_estimate()
    print(f"\nS6.2.1 {est.round_trip_summary()}")
    print(
        f"  paper: ~2 h compute, ~35 min transfer; "
        f"model: {est.computation_hours:.2f} h, {est.communication_minutes:.0f} min"
    )
    assert est.encryptions_ce == pytest.approx(4e6)
    assert 2.0 <= est.computation_hours <= 2.3
    assert 30 <= est.communication_minutes <= 36


def test_report_scaled_run_matches_formula(bench_bits):
    """Measured encryption count on a live run == |D_R||D_S|(|d_R|+|d_S|) 2."""
    docs_r, docs_s = _small_corpus()
    suite = ProtocolSuite.default(bits=128, seed=2)
    result = run_document_sharing(docs_r, docs_s, threshold=0.05, suite=suite)
    formula = sum(
        2 * (len(d_r) + len(d_s)) for d_r in docs_r for d_s in docs_s
    )
    print(
        f"\nS6.2.1 scaled run: {result.protocol_runs} pairs, "
        f"{result.total_encryptions} modexps (formula {formula}), "
        f"{result.total_bytes} wire bytes, {len(result.matches)} matches"
    )
    assert result.total_encryptions == formula
    assert len(result.matches) >= 1


def test_report_extrapolation(calibration_1024):
    """Estimate at paper scale with this machine's measured C_e."""
    constants = calibration_1024.constants.with_processors(10)
    est = document_sharing_estimate(constants=constants)
    paper = document_sharing_estimate()
    print(
        f"\nS6.2.1 extrapolation to 10x100 docs, 1000 words:"
        f"\n  paper (2001): {paper.computation_hours:.2f} h compute"
        f"\n  this machine: {est.computation_hours:.3f} h compute"
    )
    assert est.encryptions_ce == paper.encryptions_ce  # same op counts


def test_document_sharing_benchmark(benchmark):
    """Wall clock of the scaled application run."""
    docs_r, docs_s = _small_corpus(words_per_doc=25, k=12, n_r=2, n_s=4)

    def run():
        suite = ProtocolSuite.default(bits=256, seed=3)
        return run_document_sharing(docs_r, docs_s, threshold=0.05, suite=suite)

    result = benchmark(run)
    assert result.protocol_runs == 8


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("apps.document-sharing"))
