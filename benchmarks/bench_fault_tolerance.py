"""Resilience experiment - completion cost vs injected fault rate.

Not a paper table (the paper's Section 6 cost model assumes a clean
channel); this measures what the fault-tolerant session layer pays to
restore that assumption over a lossy one. Each run drives the
intersection protocol over a real TCP connection with a seeded
:class:`~repro.net.faults.FaultInjector` on the client's sends, at
fault rates from 0% to 20% (split between drops and corruption), and
records completion time, wire bytes, retransmits and reconnects as one
JSON line per rate - correctness asserted on every run.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.net.chaos import ChaosSchedule, run_schedule
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.journal import JournalDir, recover_sender_session
from repro.net.serialization import encode
from repro.net.session import RetryPolicy, SessionConfig
from repro.net.tcp import (
    connect_resumable_receiver,
    serve_resumable_sender,
)
from repro.protocols.parties import (
    PublicParams,
    ReceiverMachine,
    SenderMachine,
)
from repro.protocols.spec import PROTOCOLS

#: rate -> RNG seed. Runs are only a handful of frames, so seeds are
#: chosen (deterministically, once) such that the nonzero rates do
#: observably fire within the run.
FAULT_RATES = {0.0: 5, 0.05: 15, 0.10: 15, 0.20: 15}

#: Collected records from every report test in this module; the
#: autouse module fixture writes them to ``BENCH_robustness.json``.
RESULTS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _bench_robustness_report():
    """Write one normalized ``BENCH_robustness.json`` per bench run.

    Every report test appends its records to :data:`RESULTS`; at module
    teardown they land, sorted and schema-tagged, at the repository
    root so robustness numbers are diffable across PRs.
    """
    RESULTS.clear()
    yield
    if not RESULTS:
        return
    payload = {
        "schema": 1,
        "benchmark": "robustness",
        "records": RESULTS,
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_robustness.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class _TrackingInjector(FaultInjector):
    """Keeps every wrapped endpoint so wire bytes survive reconnects."""

    def __init__(self, plan: FaultPlan):
        super().__init__(plan)
        self.endpoints: list = []

    def wrap(self, transport):
        endpoint = super().wrap(transport)
        self.endpoints.append(endpoint)
        return endpoint

    __call__ = wrap

    @property
    def total_bytes_sent(self) -> int:
        return sum(e.bytes_sent for e in self.endpoints)

    @property
    def total_bytes_received(self) -> int:
        return sum(e.bytes_received for e in self.endpoints)


def _config() -> SessionConfig:
    return SessionConfig(
        timeout_s=0.3,
        retry=RetryPolicy(max_attempts=8, base_delay_s=0.01,
                          max_delay_s=0.05),
        max_reconnects=20,
        fin_grace_s=0.05,
    )


def _run_once(rate: float, seed: int, bits: int) -> dict:
    v_r = [f"r{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    v_s = [f"s{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    expected = {f"c{i}" for i in range(4)}

    plan = FaultPlan(seed=seed, drop_rate=rate / 2, corrupt_rate=rate / 2)
    injector = _TrackingInjector(plan)
    config = _config()
    params = PublicParams.for_bits(bits)
    ready = threading.Event()
    box: dict = {}

    def serve():
        box["server"] = serve_resumable_sender(
            "intersection", v_s, params, random.Random(seed + 1),
            ready_callback=lambda port: (
                box.__setitem__("port", port), ready.set()
            ),
            config=config,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    started = time.perf_counter()
    answer, client_stats = connect_resumable_receiver(
        "intersection", v_r, random.Random(seed + 2), "127.0.0.1",
        box["port"], config=config, endpoint_wrapper=injector,
    )
    elapsed = time.perf_counter() - started
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert answer == expected, f"rate {rate}: wrong answer {answer!r}"
    _size_v_r, server_stats = box["server"]

    return {
        "protocol": "intersection",
        "fault_rate": rate,
        "seed": seed,
        "bits": bits,
        "n_r": len(v_r),
        "n_s": len(v_s),
        "elapsed_s": round(elapsed, 6),
        "client_bytes_sent": injector.total_bytes_sent,
        "client_bytes_received": injector.total_bytes_received,
        "retransmits": client_stats.retransmits
        + server_stats.retransmits,
        "reconnects": client_stats.reconnects,
        "replayed_frames": client_stats.replayed_frames
        + server_stats.replayed_frames,
        "faults": injector.stats.as_dict(),
    }


def test_report_completion_vs_fault_rate(bench_bits):
    """One JSON record per fault rate; cost grows, answers never change."""
    print("\nfault tolerance (completion cost vs injected fault rate):")
    records = [
        _run_once(rate, seed=seed, bits=min(bench_bits, 256))
        for rate, seed in sorted(FAULT_RATES.items())
    ]
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))
    RESULTS.extend(
        {"benchmark": "completion-vs-fault-rate", **r} for r in records
    )

    clean = records[0]
    assert clean["faults"]["dropped"] == 0
    assert clean["faults"]["corrupted"] == 0
    assert clean["retransmits"] == 0
    # Faulty runs never move fewer bytes than the clean run: every
    # recovery is extra traffic on top of the protocol's own frames.
    for record in records[1:]:
        assert record["client_bytes_sent"] >= clean["client_bytes_sent"]
    # At least one nonzero rate must actually have injected something
    # (seeded plans make this deterministic).
    assert any(
        r["faults"]["dropped"] + r["faults"]["corrupted"] > 0
        for r in records[1:]
    ), "no faults fired across the swept rates"


@pytest.mark.parametrize("rate", [0.0, 0.20])
def test_fault_rate_extremes_complete(bench_bits, rate):
    """The endpoints of the sweep complete correctly on their own."""
    record = _run_once(rate, seed=15, bits=min(bench_bits, 128))
    assert record["fault_rate"] == rate


# ----------------------------------------------------------------------
# Journal overhead: what crash durability costs per run
# ----------------------------------------------------------------------
#: journal mode label -> fsync flag (None = journaling disabled).
JOURNAL_MODES = {"off": None, "fsync-off": False, "fsync-on": True}
JOURNAL_SET_SIZES = (8, 32)


def _inputs(n: int):
    half = max(1, n // 4)
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s, {f"c{i}" for i in range(half)}


def _run_journaled(n: int, mode: str, bits: int, tmp_path) -> dict:
    fsync = JOURNAL_MODES[mode]
    v_r, v_s, expected = _inputs(n)
    config = _config()
    params = PublicParams.for_bits(bits)
    journal_kwargs = (
        {}
        if fsync is None
        else {
            "journal_dir": tmp_path / f"{mode}-{n}",
            "journal_fsync": fsync,
        }
    )
    ready = threading.Event()
    box: dict = {}

    def serve():
        box["server"] = serve_resumable_sender(
            "intersection", v_s, params, random.Random(11),
            ready_callback=lambda port: (
                box.__setitem__("port", port), ready.set()
            ),
            config=config, **journal_kwargs,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    started = time.perf_counter()
    answer, client_stats = connect_resumable_receiver(
        "intersection", v_r, random.Random(12), "127.0.0.1", box["port"],
        config=config, **journal_kwargs,
    )
    elapsed = time.perf_counter() - started
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert answer == expected
    return {
        "benchmark": "journal-overhead",
        "protocol": "intersection",
        "journal": mode,
        "n": n,
        "bits": bits,
        "elapsed_s": round(elapsed, 6),
        "rounds": client_stats.rounds_computed,
    }


def test_report_journal_overhead(bench_bits, tmp_path):
    """Sweep journal off / fsync off / fsync on across set sizes.

    One JSON line per cell. Durability is pure overhead on a clean
    channel, so the interesting number is the gap between the columns -
    fsync-on pays one ``fsync`` per journaled round plus one directory
    sync per rotation, fsync-off only the write syscalls.
    """
    bits = min(bench_bits, 256)
    print("\njournal overhead (crash durability cost per run):")
    records = [
        _run_journaled(n, mode, bits, tmp_path)
        for n in JOURNAL_SET_SIZES
        for mode in JOURNAL_MODES
    ]
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))
    RESULTS.extend(records)
    # Every cell completed with the exact answer (asserted inside the
    # runner); all that is left to check is that the sweep is complete.
    assert len(records) == len(JOURNAL_SET_SIZES) * len(JOURNAL_MODES)


# ----------------------------------------------------------------------
# Kill-resume: how long recovery from a crash-point journal takes
# ----------------------------------------------------------------------
def _build_crashed_journal(journal_dir: JournalDir, params, n: int,
                           session_id: int):
    """A sender journal frozen at the worst crash point.

    All inbound rounds consumed and the final outbound round journaled
    but never shipped - the maximum amount of state a restart has to
    rebuild by replay.
    """
    spec = PROTOCOLS["intersection"]
    v_r, v_s, expected = _inputs(n)
    receiver = ReceiverMachine(spec, v_r, params, random.Random("R"))
    sender = SenderMachine(spec, v_s, params, random.Random("S"))
    journal = journal_dir.open_session("sender", "intersection", session_id)
    inbound = outbound = 0
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        wire = producer.produce(rnd).to_wire()
        if rnd.source == "R":
            journal.record_inbound(inbound, encode(wire))
            inbound += 1
        else:
            journal.record_outbound(outbound, encode(wire))
            outbound += 1
        consumer.consume(rnd, wire)
    journal.close()
    return inbound + outbound


def test_report_kill_resume_recovery_time(bench_bits, tmp_path):
    """Time to rebuild a SenderSession from its journal after SIGKILL.

    Recovery replays every journaled round through a fresh machine and
    byte-verifies each recomputed outbound, so the cost scales with the
    protocol work already done - this measures it directly instead of
    through subprocess spawn noise (the chaos test in
    ``tests/integration/test_crash_recovery.py`` covers the live path).
    """
    bits = min(bench_bits, 256)
    params = PublicParams.for_bits(bits)
    spec = PROTOCOLS["intersection"]
    print("\nkill-resume (journal recovery time after a crash):")
    records = []
    for n in JOURNAL_SET_SIZES:
        journal_dir = JournalDir(tmp_path / f"resume-{n}", fsync=False)
        rounds = _build_crashed_journal(journal_dir, params, n, 0xBE0000 + n)
        _, v_s, _ = _inputs(n)
        stale = journal_dir.incomplete("sender", "intersection")
        assert len(stale) == 1
        started = time.perf_counter()
        session = recover_sender_session(
            stale[0], params,
            lambda: spec.make_sender(v_s, params, random.Random("S")),
            config=_config(), fsync=False,
        )
        elapsed = time.perf_counter() - started
        assert session.stats.rounds_recovered == rounds
        session.journal.close()
        record = {
            "benchmark": "kill-resume",
            "protocol": "intersection",
            "n": n,
            "bits": bits,
            "rounds_recovered": rounds,
            "recovery_s": round(elapsed, 6),
        }
        records.append(record)
        print("  " + json.dumps(record, sort_keys=True))
    RESULTS.extend(records)
    # Larger sets journal more protocol state; replay must reflect it.
    assert records[-1]["rounds_recovered"] == records[0]["rounds_recovered"]


# ----------------------------------------------------------------------
# Chaos survival: outcome mix across seeded composed-fault schedules
# ----------------------------------------------------------------------
#: Fixed seeds so the committed BENCH_robustness.json is reproducible;
#: the range matches the start of the property suite's sweep.
CHAOS_BENCH_SEEDS = tuple(range(40))


def test_report_chaos_schedule_survival():
    """Drive seeded chaos schedules and record the outcome mix.

    Each schedule composes network faults, disk faults, and crash
    points from its seed (see :mod:`repro.net.chaos`); the invariant -
    correct answer or typed clean failure - is asserted on every run,
    and the per-seed outcome records (who answered, who errored, how
    many restarts, which faults actually fired) are the benchmark.
    """
    print("\nchaos survival (seeded composed-fault schedules):")
    records = []
    for seed in CHAOS_BENCH_SEEDS:
        started = time.perf_counter()
        result = run_schedule(
            ChaosSchedule.generate(seed), wall_timeout_s=30.0
        )
        assert result.ok, result.describe()
        records.append({
            "benchmark": "chaos-schedule",
            "elapsed_s": round(time.perf_counter() - started, 6),
            **result.as_dict(),
        })
    outcomes: dict[str, int] = {}
    for record in records:
        key = f"{record['receiver']}/{record['sender']}"
        outcomes[key] = outcomes.get(key, 0) + 1
    summary = {
        "benchmark": "chaos-summary",
        "schedules": len(records),
        "outcomes": outcomes,
        "total_restarts": sum(
            r["receiver_restarts"] + r["sender_restarts"] for r in records
        ),
        "answers": sum(1 for r in records if r["receiver"] == "answer"),
    }
    print("  " + json.dumps(summary, sort_keys=True))
    RESULTS.extend(records)
    RESULTS.append(summary)
    assert summary["answers"] >= len(records) // 2, (
        "chaos schedules should mostly still complete"
    )
