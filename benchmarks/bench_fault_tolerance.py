"""Resilience experiment - completion cost vs injected fault rate.

Not a paper table (the paper's Section 6 cost model assumes a clean
channel); this measures what the fault-tolerant session layer pays to
restore that assumption over a lossy one. Each run drives the
intersection protocol over a real TCP connection with a seeded
:class:`~repro.net.faults.FaultInjector` on the client's sends, at
fault rates from 0% to 20% (split between drops and corruption), and
records completion time, wire bytes, retransmits and reconnects as one
JSON line per rate - correctness asserted on every run.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.net.faults import FaultInjector, FaultPlan
from repro.net.session import RetryPolicy, SessionConfig
from repro.net.tcp import (
    connect_resumable_receiver,
    serve_resumable_sender,
)
from repro.protocols.parties import PublicParams

#: rate -> RNG seed. Runs are only a handful of frames, so seeds are
#: chosen (deterministically, once) such that the nonzero rates do
#: observably fire within the run.
FAULT_RATES = {0.0: 5, 0.05: 15, 0.10: 15, 0.20: 15}


class _TrackingInjector(FaultInjector):
    """Keeps every wrapped endpoint so wire bytes survive reconnects."""

    def __init__(self, plan: FaultPlan):
        super().__init__(plan)
        self.endpoints: list = []

    def wrap(self, transport):
        endpoint = super().wrap(transport)
        self.endpoints.append(endpoint)
        return endpoint

    __call__ = wrap

    @property
    def total_bytes_sent(self) -> int:
        return sum(e.bytes_sent for e in self.endpoints)

    @property
    def total_bytes_received(self) -> int:
        return sum(e.bytes_received for e in self.endpoints)


def _config() -> SessionConfig:
    return SessionConfig(
        timeout_s=0.3,
        retry=RetryPolicy(max_attempts=8, base_delay_s=0.01,
                          max_delay_s=0.05),
        max_reconnects=20,
        fin_grace_s=0.05,
    )


def _run_once(rate: float, seed: int, bits: int) -> dict:
    v_r = [f"r{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    v_s = [f"s{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    expected = {f"c{i}" for i in range(4)}

    plan = FaultPlan(seed=seed, drop_rate=rate / 2, corrupt_rate=rate / 2)
    injector = _TrackingInjector(plan)
    config = _config()
    params = PublicParams.for_bits(bits)
    ready = threading.Event()
    box: dict = {}

    def serve():
        box["server"] = serve_resumable_sender(
            "intersection", v_s, params, random.Random(seed + 1),
            ready_callback=lambda port: (
                box.__setitem__("port", port), ready.set()
            ),
            config=config,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    started = time.perf_counter()
    answer, client_stats = connect_resumable_receiver(
        "intersection", v_r, random.Random(seed + 2), "127.0.0.1",
        box["port"], config=config, endpoint_wrapper=injector,
    )
    elapsed = time.perf_counter() - started
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert answer == expected, f"rate {rate}: wrong answer {answer!r}"
    _size_v_r, server_stats = box["server"]

    return {
        "protocol": "intersection",
        "fault_rate": rate,
        "seed": seed,
        "bits": bits,
        "n_r": len(v_r),
        "n_s": len(v_s),
        "elapsed_s": round(elapsed, 6),
        "client_bytes_sent": injector.total_bytes_sent,
        "client_bytes_received": injector.total_bytes_received,
        "retransmits": client_stats.retransmits
        + server_stats.retransmits,
        "reconnects": client_stats.reconnects,
        "replayed_frames": client_stats.replayed_frames
        + server_stats.replayed_frames,
        "faults": injector.stats.as_dict(),
    }


def test_report_completion_vs_fault_rate(bench_bits):
    """One JSON record per fault rate; cost grows, answers never change."""
    print("\nfault tolerance (completion cost vs injected fault rate):")
    records = [
        _run_once(rate, seed=seed, bits=min(bench_bits, 256))
        for rate, seed in sorted(FAULT_RATES.items())
    ]
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))

    clean = records[0]
    assert clean["faults"]["dropped"] == 0
    assert clean["faults"]["corrupted"] == 0
    assert clean["retransmits"] == 0
    # Faulty runs never move fewer bytes than the clean run: every
    # recovery is extra traffic on top of the protocol's own frames.
    for record in records[1:]:
        assert record["client_bytes_sent"] >= clean["client_bytes_sent"]
    # At least one nonzero rate must actually have injected something
    # (seeded plans make this deterministic).
    assert any(
        r["faults"]["dropped"] + r["faults"]["corrupted"] > 0
        for r in records[1:]
    ), "no faults fired across the swept rates"


@pytest.mark.parametrize("rate", [0.0, 0.20])
def test_fault_rate_extremes_complete(bench_bits, rate):
    """The endpoints of the sweep complete correctly on their own."""
    record = _run_once(rate, seed=15, bits=min(bench_bits, 128))
    assert record["fault_rate"] == rate
