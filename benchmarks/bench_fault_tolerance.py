"""Resilience experiment - completion cost vs injected fault rate.

Not a paper table (the paper's Section 6 cost model assumes a clean
channel); this measures what the fault-tolerant session layer pays to
restore that assumption over a lossy one. The measurement cores live
in :mod:`repro.bench.tasks.robustness` (registered as the
``robustness.*`` harness tasks, which also regenerate the committed
``BENCH_robustness.json``); this module keeps the pytest assertions
over the same code paths.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.bench.tasks.robustness import (
    CHAOS_BENCH_SEEDS,
    FAULT_RATES,
    JOURNAL_MODES,
    JOURNAL_SET_SIZES,
    build_crashed_journal,
    run_journaled,
    run_once,
    session_config,
)
from repro.net.chaos import ChaosSchedule, run_schedule
from repro.net.journal import JournalDir, recover_sender_session
from repro.protocols.parties import PublicParams
from repro.protocols.spec import PROTOCOLS


def _inputs(n: int):
    half = max(1, n // 4)
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s, {f"c{i}" for i in range(half)}


def test_report_completion_vs_fault_rate(bench_bits):
    """One JSON record per fault rate; cost grows, answers never change."""
    print("\nfault tolerance (completion cost vs injected fault rate):")
    records = [
        run_once(rate, seed=seed, bits=min(bench_bits, 256))
        for rate, seed in sorted(FAULT_RATES.items())
    ]
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))

    clean = records[0]
    assert clean["faults"]["dropped"] == 0
    assert clean["faults"]["corrupted"] == 0
    assert clean["retransmits"] == 0
    # Faulty runs never move fewer bytes than the clean run: every
    # recovery is extra traffic on top of the protocol's own frames.
    for record in records[1:]:
        assert record["client_bytes_sent"] >= clean["client_bytes_sent"]
    # At least one nonzero rate must actually have injected something
    # (seeded plans make this deterministic).
    assert any(
        r["faults"]["dropped"] + r["faults"]["corrupted"] > 0
        for r in records[1:]
    ), "no faults fired across the swept rates"


@pytest.mark.parametrize("rate", [0.0, 0.20])
def test_fault_rate_extremes_complete(bench_bits, rate):
    """The endpoints of the sweep complete correctly on their own."""
    record = run_once(rate, seed=15, bits=min(bench_bits, 128))
    assert record["fault_rate"] == rate


def test_report_journal_overhead(bench_bits, tmp_path):
    """Sweep journal off / fsync off / fsync on across set sizes.

    One JSON line per cell. Durability is pure overhead on a clean
    channel, so the interesting number is the gap between the columns -
    fsync-on pays one ``fsync`` per journaled round plus one directory
    sync per rotation, fsync-off only the write syscalls.
    """
    bits = min(bench_bits, 256)
    print("\njournal overhead (crash durability cost per run):")
    records = [
        run_journaled(n, mode, bits, tmp_path)
        for n in JOURNAL_SET_SIZES
        for mode in JOURNAL_MODES
    ]
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))
    # Every cell completed with the exact answer (asserted inside the
    # runner); all that is left to check is that the sweep is complete.
    assert len(records) == len(JOURNAL_SET_SIZES) * len(JOURNAL_MODES)


def test_report_kill_resume_recovery_time(bench_bits, tmp_path):
    """Time to rebuild a SenderSession from its journal after SIGKILL.

    Recovery replays every journaled round through a fresh machine and
    byte-verifies each recomputed outbound, so the cost scales with the
    protocol work already done - this measures it directly instead of
    through subprocess spawn noise (the chaos test in
    ``tests/integration/test_crash_recovery.py`` covers the live path).
    """
    bits = min(bench_bits, 256)
    params = PublicParams.for_bits(bits)
    spec = PROTOCOLS["intersection"]
    print("\nkill-resume (journal recovery time after a crash):")
    records = []
    for n in JOURNAL_SET_SIZES:
        journal_dir = JournalDir(tmp_path / f"resume-{n}", fsync=False)
        rounds = build_crashed_journal(journal_dir, params, n, 0xBE0000 + n)
        _, v_s, _ = _inputs(n)
        stale = journal_dir.incomplete("sender", "intersection")
        assert len(stale) == 1
        started = time.perf_counter()
        session = recover_sender_session(
            stale[0], params,
            lambda: spec.make_sender(v_s, params, random.Random("S")),
            config=session_config(), fsync=False,
        )
        elapsed = time.perf_counter() - started
        assert session.stats.rounds_recovered == rounds
        session.journal.close()
        record = {
            "benchmark": "kill-resume",
            "protocol": "intersection",
            "n": n,
            "bits": bits,
            "rounds_recovered": rounds,
            "recovery_s": round(elapsed, 6),
        }
        records.append(record)
        print("  " + json.dumps(record, sort_keys=True))
    # Larger sets journal more protocol state; replay must reflect it.
    assert records[-1]["rounds_recovered"] == records[0]["rounds_recovered"]


def test_report_chaos_schedule_survival():
    """Drive seeded chaos schedules and record the outcome mix.

    Each schedule composes network faults, disk faults, and crash
    points from its seed (see :mod:`repro.net.chaos`); the invariant -
    correct answer or typed clean failure - is asserted on every run.
    """
    print("\nchaos survival (seeded composed-fault schedules):")
    records = []
    for seed in CHAOS_BENCH_SEEDS:
        started = time.perf_counter()
        result = run_schedule(
            ChaosSchedule.generate(seed), wall_timeout_s=30.0
        )
        assert result.ok, result.describe()
        records.append({
            "benchmark": "chaos-schedule",
            "elapsed_s": round(time.perf_counter() - started, 6),
            **result.as_dict(),
        })
    outcomes: dict[str, int] = {}
    for record in records:
        key = f"{record['receiver']}/{record['sender']}"
        outcomes[key] = outcomes.get(key, 0) + 1
    summary = {
        "benchmark": "chaos-summary",
        "schedules": len(records),
        "outcomes": outcomes,
        "total_restarts": sum(
            r["receiver_restarts"] + r["sender_restarts"] for r in records
        ),
        "answers": sum(1 for r in records if r["receiver"] == "answer"),
    }
    print("  " + json.dumps(summary, sort_keys=True))
    assert summary["answers"] >= len(records) // 2, (
        "chaos schedules should mostly still complete"
    )


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("robustness"))
