"""Validation - the future-work extensions (aggregation, selection).

Not paper tables: these benches cover the two operations the paper
*asks for* (conclusions: aggregations; related work: selection via
PIR), validating correctness against plaintext and recording their
cost so they can be compared with the core protocols.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.protocols.aggregate import run_equijoin_sum
from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection_size import run_intersection_size
from repro.protocols.selection import run_selection
from repro.workloads.generator import overlapping_sets


def test_report_equijoin_sum_vs_size_cost():
    """The aggregate costs one extra Paillier layer over the size
    protocol; quantify the overhead at equal n."""
    rng = random.Random(21)
    n = 24
    v_r, v_s, expected = overlapping_sets(n, n, n // 2, rng)
    values_s = {v: rng.randrange(10**6) for v in v_s}

    suite = ProtocolSuite.default(bits=256, seed=21)
    start = time.perf_counter()
    size_result = run_intersection_size(v_r, v_s, suite)
    size_time = time.perf_counter() - start

    suite = ProtocolSuite.default(bits=256, seed=21)
    start = time.perf_counter()
    sum_result = run_equijoin_sum(v_r, values_s, suite, paillier_bits=256)
    sum_time = time.perf_counter() - start

    truth = sum(values_s[v] for v in expected)
    print(
        f"\nExtension cost at n={n} (256-bit group):"
        f"\n  intersection size: {size_time:.3f}s, "
        f"{size_result.run.total_bytes} B"
        f"\n  equijoin sum:      {sum_time:.3f}s, "
        f"{sum_result.run.total_bytes} B "
        f"({sum_result.run.total_bytes / size_result.run.total_bytes:.1f}x bytes)"
    )
    assert sum_result.total == truth
    assert sum_result.match_count == size_result.size == len(expected)


def test_report_selection_scaling():
    """Selection traffic is O(n) records + O(log n) OT - record the
    curve."""
    print("\nPrivate selection scaling (512-bit group):")
    print("  n records   bytes    bytes/record")
    previous = None
    for n in (4, 16, 64):
        suite = ProtocolSuite.default(bits=512, seed=n)
        records = [f"row-{i:04d}".encode() * 2 for i in range(n)]
        result = run_selection(n // 2, records, suite)
        assert result.record == records[n // 2]
        per_record = result.run.total_bytes / n
        print(f"  {n:9d} {result.run.total_bytes:8d} {per_record:10.1f}")
        if previous is not None:
            # Per-record cost falls as the O(log n) OT amortizes.
            assert per_record < previous
        previous = per_record


@pytest.mark.parametrize("n", [8, 32])
def test_selection_benchmark(benchmark, n):
    records = [f"record-{i}".encode().ljust(16) for i in range(n)]

    def run():
        suite = ProtocolSuite.default(bits=256, seed=n)
        return run_selection(n - 1, records, suite)

    result = benchmark(run)
    assert result.record == records[n - 1]


@pytest.mark.parametrize("n", [8, 32])
def test_equijoin_sum_benchmark(benchmark, n):
    rng = random.Random(n)
    v_r, v_s, expected = overlapping_sets(n, n, n // 2, rng)
    values_s = {v: 7 for v in v_s}

    def run():
        suite = ProtocolSuite.default(bits=256, seed=n)
        return run_equijoin_sum(v_r, values_s, suite, paillier_bits=192)

    result = benchmark(run)
    assert result.total == 7 * len(expected)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("protocols.extensions"))
