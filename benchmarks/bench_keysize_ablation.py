"""Ablation - modulus size (the paper's k = 1024 design point).

Section 6 fixes k = 1024 bits (2001-era security). This ablation sweeps
the modulus size and reports the two costs the model says depend on k:
C_e (superlinear in k - modexp is ~O(k^2.58) with CPython's bignums)
and wire bits per codeword (linear in k). It also ablates the two
hash-into-QR constructions (design choice 1 in DESIGN.md).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.calibration import calibrate
from repro.crypto.groups import QRGroup
from repro.crypto.hashing import SquareHash, TryIncrementHash
from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection_size import run_intersection_size

SIZES = (256, 512, 1024, 2048)


def test_report_keysize_sweep():
    print("\nKey-size ablation (intersection-size, n=24 per side):")
    print("  bits   C_e [ms]   run [s]   wire [kB]")
    results = []
    for bits in SIZES:
        ce = calibrate(bits=bits, samples=8).constants.ce_seconds
        suite = ProtocolSuite.default(bits=bits, seed=bits)
        v_r = [f"r{i}" for i in range(24)]
        v_s = [f"s{i}" for i in range(12)] + v_r[:12]
        start = time.perf_counter()
        result = run_intersection_size(v_r, v_s, suite)
        elapsed = time.perf_counter() - start
        assert result.size == 12
        results.append((bits, ce, elapsed, result.run.total_bytes))
        print(
            f"  {bits:5d} {ce*1e3:9.3f} {elapsed:9.3f} "
            f"{result.run.total_bytes/1024:10.1f}"
        )
    # Wire bytes scale linearly with k.
    bytes_by_bits = {bits: b for bits, _, _, b in results}
    assert bytes_by_bits[2048] / bytes_by_bits[512] == pytest.approx(4.0, rel=0.1)
    # Compute scales superlinearly with k.
    ce_by_bits = {bits: ce for bits, ce, _, _ in results}
    assert ce_by_bits[2048] / ce_by_bits[512] > 6


def test_report_hash_construction_ablation():
    """Try-and-increment vs hash-and-square (DESIGN.md choice 1)."""
    group = QRGroup.for_bits(1024)
    values = [f"v{i}" for i in range(300)]
    timings = {}
    for name, cls in [("try-increment", TryIncrementHash), ("square", SquareHash)]:
        hash_fn = cls(group)
        start = time.perf_counter()
        out = hash_fn.hash_set(values)
        timings[name] = time.perf_counter() - start
        assert all(x in group for x in out)
    print(
        f"\nHash-into-QR ablation (300 values, 1024-bit):"
        f"\n  try-and-increment: {timings['try-increment']*1e3:.1f} ms"
        f"\n  hash-and-square:   {timings['square']*1e3:.1f} ms"
    )
    # Squaring pays one C-level modular multiplication; try-and-
    # increment pays ~2 pure-Python Legendre evaluations, so squaring
    # wins big here (observed ~70x). The ablation records the ratio; we
    # only assert squaring never *loses* by more than noise.
    assert timings["square"] < 2 * timings["try-increment"]


@pytest.mark.parametrize("bits", [256, 1024])
def test_modexp_benchmark_by_size(benchmark, bits):
    group = QRGroup.for_bits(bits)
    rng = random.Random(0)
    x, e = group.random_element(rng), group.random_exponent(rng)
    benchmark(pow, x, e, group.p)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("crypto.keysize-ablation,crypto.hash-construction"))
