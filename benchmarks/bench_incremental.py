"""Delta queries vs full re-runs through the stateful Catalog API.

After one full protocol run, a query over a churned table should cost
O(|delta|) modexp work, not O(|V|) — that is the claim the
incremental ``"<name>+delta"`` schedules and the Catalog/Peer API
make. This sweep stages churn fractions of a fixed table, times the
delta query on a warm :class:`repro.Catalog` pair against a cold full
exchange over the identical mutated tables, and asserts the answers
agree (a fast wrong answer is not a speedup).

The measurement core (``sweep_fractions``) lives in
:mod:`repro.bench.tasks.incremental`, registered as the
``incremental.delta-sweep`` harness task. Run standalone for the full
|V|=2000 sweep:

    PYTHONPATH=src python benchmarks/bench_incremental.py --full
"""

from __future__ import annotations

import json
import random

from repro.bench.tasks.incremental import sweep_fractions


def test_report_delta_sweep():
    """Smoke sweep: small deltas beat the full re-run comfortably and
    every delta answer matches the cold run over the same tables."""
    records = sweep_fractions(
        n=200, fractions=[0.01, 0.1], bits=96,
        protocol="intersection", rng=random.Random(20030609),
    )
    print("\nIncremental delta sweep (Catalog API, |V|=200):")
    for record in records:
        print("  " + json.dumps(
            {k: v for k, v in record.items() if k != "metrics"}
        ))
        print("  " + json.dumps(record["metrics"]))
    assert all(r["answers_agree"] for r in records)
    # At 1% churn the delta path must be clearly sublinear; at 10% it
    # must still win. (The committed full run pins the 5x floor at
    # |V|=2000; this smoke-scale bound just guards the mechanism.)
    by_frac = {r["fraction"]: r["metrics"] for r in records}
    assert by_frac[0.01]["speedup"] > 2.0
    assert by_frac[0.1]["speedup"] > 1.0


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("incremental"))
