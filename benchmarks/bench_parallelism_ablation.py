"""Ablation - the Section 6.2 P-processor parallelism assumption.

The application estimates divide computation by ``P = 10`` on the
grounds that "encrypting the set of values is trivially parallelizable
in all three protocols". Two layers of measurement here:

* the raw batch - :func:`repro.crypto.batch.measure_speedup` on bare
  modular exponentiation, against the model's ideal ``1/P`` (and with
  pool startup reported separately, since the shared engine pays it
  once);
* the **real protocols** - the party state machines of
  :mod:`repro.protocols.parties` run end-to-end with a
  :class:`~repro.crypto.engine.ProcessPoolEngine` on both sides.

The measurement cores (``run_intersection_with_engine``, ``sweep``)
live in :mod:`repro.bench.tasks.parallelism`, registered as the
``parallelism.*`` harness tasks. Run standalone for the full sweep:

    PYTHONPATH=src python benchmarks/bench_parallelism_ablation.py --full
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.bench.tasks.parallelism import sweep
from repro.crypto.batch import measure_speedup, parallel_pow, sequential_pow
from repro.crypto.groups import QRGroup


def test_report_parallel_speedup():
    group = QRGroup.for_bits(1024)
    rng = random.Random(1)
    exponent = group.random_exponent(rng)
    workers = min(4, os.cpu_count() or 1)
    print(f"\nS6.2 parallelism ablation (1024-bit modexp, P={workers}):")
    print("  batch   sequential [s]  parallel [s]  startup [s]  speedup  ideal")
    best = 0.0
    for batch in (32, 128, 512):
        xs = [group.random_element(rng) for _ in range(batch)]
        result = measure_speedup(xs, exponent, group.p, processors=workers)
        best = max(best, result.speedup)
        print(
            f"  {batch:5d}  {result.sequential_s:13.3f}  "
            f"{result.parallel_s:12.3f}  {result.pool_startup_s:11.3f}  "
            f"{result.speedup:7.2f}  {result.ideal:5.1f}"
        )
    if workers > 1:
        # At the largest batch the pool must realize a genuine speedup;
        # the model's full 1/P is an upper bound it approaches.
        assert best > 1.2
        assert best <= workers + 0.5


def test_report_protocol_engine_sweep():
    """End-to-end sweep through the real intersection protocol.

    Always runs a small smoke grid (JSON shape + correctness); the
    acceptance-grade grid (|V| >= 512 at 512-bit keys, 4 workers,
    expecting >= 1.5x) only on machines with >= 4 CPUs - on fewer
    cores a process pool cannot beat the serial baseline.
    """
    cpus = os.cpu_count() or 1
    workers_list = sorted({1, min(2, cpus), min(4, cpus)})
    sizes = [64]
    bits_list = [256]
    if cpus >= 4:
        sizes.append(512)
        bits_list.append(512)
    records = sweep(workers_list, sizes, bits_list)
    print("\nS6.2 end-to-end engine ablation (intersection protocol):")
    for record in records:
        print("  " + json.dumps(record))
        assert record["total_modexp"] > 0
        # Intersection does 2 n_R + 2 n_S modexp (encrypt own set,
        # re-encrypt the peer's) plus n_R decryptions folded into the
        # pair construction - just sanity-bound it.
        assert record["total_modexp"] >= 2 * record["n"]
    if cpus >= 4:
        big = [
            r for r in records
            if r["workers"] == 4 and r["n"] >= 512 and r["bits"] >= 512
        ]
        assert big, "acceptance grid missing"
        assert max(r["speedup_vs_serial"] for r in big) >= 1.5


@pytest.mark.parametrize("processors", [1, 2])
def test_batch_pow_benchmark(benchmark, processors):
    group = QRGroup.for_bits(512)
    rng = random.Random(2)
    xs = [group.random_element(rng) for _ in range(96)]
    exponent = group.random_exponent(rng)
    out = benchmark(parallel_pow, xs, exponent, group.p, processors)
    assert out == sequential_pow(xs, exponent, group.p)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("parallelism"))
