"""Ablation - the Section 6.2 P-processor parallelism assumption.

The application estimates divide computation by ``P = 10`` on the
grounds that "encrypting the set of values is trivially parallelizable
in all three protocols". This ablation measures the *realized* speedup
of batch modular exponentiation over a process pool against the model's
ideal 1/P, locating where pool overhead stops mattering.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.crypto.batch import measure_speedup, parallel_pow, sequential_pow
from repro.crypto.groups import QRGroup


def test_report_parallel_speedup():
    group = QRGroup.for_bits(1024)
    rng = random.Random(1)
    exponent = group.random_exponent(rng)
    workers = min(4, os.cpu_count() or 1)
    print(f"\nS6.2 parallelism ablation (1024-bit modexp, P={workers}):")
    print("  batch   sequential [s]  parallel [s]  speedup  ideal")
    best = 0.0
    for batch in (32, 128, 512):
        xs = [group.random_element(rng) for _ in range(batch)]
        result = measure_speedup(xs, exponent, group.p, processors=workers)
        best = max(best, result.speedup)
        print(
            f"  {batch:5d}  {result.sequential_s:13.3f}  "
            f"{result.parallel_s:12.3f}  {result.speedup:7.2f}  "
            f"{result.ideal:5.1f}"
        )
    if workers > 1:
        # At the largest batch the pool must realize a genuine speedup;
        # the model's full 1/P is an upper bound it approaches.
        assert best > 1.2
        assert best <= workers + 0.5


@pytest.mark.parametrize("processors", [1, 2])
def test_batch_pow_benchmark(benchmark, processors):
    group = QRGroup.for_bits(512)
    rng = random.Random(2)
    xs = [group.random_element(rng) for _ in range(96)]
    exponent = group.random_exponent(rng)
    out = benchmark(parallel_pow, xs, exponent, group.p, processors)
    assert out == sequential_pow(xs, exponent, group.p)
