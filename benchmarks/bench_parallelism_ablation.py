"""Ablation - the Section 6.2 P-processor parallelism assumption.

The application estimates divide computation by ``P = 10`` on the
grounds that "encrypting the set of values is trivially parallelizable
in all three protocols". Two layers of measurement here:

* the raw batch - :func:`repro.crypto.batch.measure_speedup` on bare
  modular exponentiation, against the model's ideal ``1/P`` (and with
  pool startup reported separately, since the shared engine pays it
  once);
* the **real protocols** - the party state machines of
  :mod:`repro.protocols.parties` run end-to-end with a
  :class:`~repro.crypto.engine.ProcessPoolEngine` on both sides,
  sweeping workers x set size x key bits, locating where end-to-end
  speedup crosses 1x (pool overhead amortized) and emitting one JSON
  record per configuration.

Run standalone for the full sweep:

    PYTHONPATH=src python benchmarks/bench_parallelism_ablation.py \
        --workers 1,2,4 --sizes 128,512 --bits 512 --json sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time

import pytest

from repro.analysis.instrumentation import MetricsRecorder
from repro.crypto.batch import measure_speedup, parallel_pow, sequential_pow
from repro.crypto.engine import create_engine
from repro.crypto.groups import QRGroup
from repro.protocols.parties import (
    IntersectionReceiver,
    IntersectionSender,
    PublicParams,
)


def run_intersection_with_engine(
    n: int, bits: int, workers: int, seed: int = 7
) -> dict:
    """One end-to-end intersection run; returns a flat JSON record.

    Both parties share one engine (they are in-process here); the
    record carries total wall time, per-phase timings and modexp
    counts from the metrics recorder.
    """
    params = PublicParams.for_bits(bits)
    half = n // 2
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    recorder = MetricsRecorder()
    engine = create_engine(workers, on_modexp=recorder.count_modexp)
    recorder.attach_engine(engine)
    try:
        engine.warm_up()  # pool startup is measured once, not per-run
        rng_r, rng_s = random.Random(f"{seed}/R"), random.Random(f"{seed}/S")
        start = time.perf_counter()
        with recorder.phase("setup"):
            receiver = IntersectionReceiver(v_r, params, rng_r, engine=engine)
            sender = IntersectionSender(v_s, params, rng_s, engine=engine)
        with recorder.phase("r.round1"):
            m1 = receiver.round1()
        with recorder.phase("s.round1"):
            m2 = sender.round1(m1)
        with recorder.phase("r.finish"):
            answer = receiver.finish(m2)
        wall_s = time.perf_counter() - start
    finally:
        engine.close()
    assert answer == {f"c{i}" for i in range(half)}
    report = recorder.report()
    return {
        "protocol": "intersection",
        "n": n,
        "bits": bits,
        "workers": workers,
        "wall_s": wall_s,
        "total_modexp": report["total_modexp"],
        "phases": report["phases"],
    }


def sweep(
    workers_list: list[int], sizes: list[int], bits_list: list[int]
) -> list[dict]:
    """The full ablation grid, serial baseline included per cell."""
    records = []
    for bits in bits_list:
        for n in sizes:
            baseline = None
            for workers in workers_list:
                record = run_intersection_with_engine(n, bits, workers)
                if workers <= 1:
                    baseline = record["wall_s"]
                record["speedup_vs_serial"] = (
                    baseline / record["wall_s"]
                    if baseline is not None and record["wall_s"]
                    else None
                )
                records.append(record)
    return records


def test_report_parallel_speedup():
    group = QRGroup.for_bits(1024)
    rng = random.Random(1)
    exponent = group.random_exponent(rng)
    workers = min(4, os.cpu_count() or 1)
    print(f"\nS6.2 parallelism ablation (1024-bit modexp, P={workers}):")
    print("  batch   sequential [s]  parallel [s]  startup [s]  speedup  ideal")
    best = 0.0
    for batch in (32, 128, 512):
        xs = [group.random_element(rng) for _ in range(batch)]
        result = measure_speedup(xs, exponent, group.p, processors=workers)
        best = max(best, result.speedup)
        print(
            f"  {batch:5d}  {result.sequential_s:13.3f}  "
            f"{result.parallel_s:12.3f}  {result.pool_startup_s:11.3f}  "
            f"{result.speedup:7.2f}  {result.ideal:5.1f}"
        )
    if workers > 1:
        # At the largest batch the pool must realize a genuine speedup;
        # the model's full 1/P is an upper bound it approaches.
        assert best > 1.2
        assert best <= workers + 0.5


def test_report_protocol_engine_sweep():
    """End-to-end sweep through the real intersection protocol.

    Always runs a small smoke grid (JSON shape + correctness); the
    acceptance-grade grid (|V| >= 512 at 512-bit keys, 4 workers,
    expecting >= 1.5x) only on machines with >= 4 CPUs - on fewer
    cores a process pool cannot beat the serial baseline.
    """
    cpus = os.cpu_count() or 1
    workers_list = sorted({1, min(2, cpus), min(4, cpus)})
    sizes = [64]
    bits_list = [256]
    if cpus >= 4:
        sizes.append(512)
        bits_list.append(512)
    records = sweep(workers_list, sizes, bits_list)
    print("\nS6.2 end-to-end engine ablation (intersection protocol):")
    for record in records:
        print("  " + json.dumps(record))
        assert record["total_modexp"] > 0
        # Intersection does 2 n_R + 2 n_S modexp (encrypt own set,
        # re-encrypt the peer's) plus n_R decryptions folded into the
        # pair construction - just sanity-bound it.
        assert record["total_modexp"] >= 2 * record["n"]
    if cpus >= 4:
        big = [
            r for r in records
            if r["workers"] == 4 and r["n"] >= 512 and r["bits"] >= 512
        ]
        assert big, "acceptance grid missing"
        assert max(r["speedup_vs_serial"] for r in big) >= 1.5


@pytest.mark.parametrize("processors", [1, 2])
def test_batch_pow_benchmark(benchmark, processors):
    group = QRGroup.for_bits(512)
    rng = random.Random(2)
    xs = [group.random_element(rng) for _ in range(96)]
    exponent = group.random_exponent(rng)
    out = benchmark(parallel_pow, xs, exponent, group.p, processors)
    assert out == sequential_pow(xs, exponent, group.p)


def main() -> None:
    """Standalone sweep: print one JSON record per line, or save all."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", default="1,2,4")
    parser.add_argument("--sizes", default="128,512")
    parser.add_argument("--bits", default="512")
    parser.add_argument("--json", default=None, help="write records here")
    args = parser.parse_args()
    records = sweep(
        [int(w) for w in args.workers.split(",")],
        [int(s) for s in args.sizes.split(",")],
        [int(b) for b in args.bits.split(",")],
    )
    for record in records:
        print(json.dumps(record))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2)


if __name__ == "__main__":
    main()
