#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md - now a shim onto the benchmark harness.

The bespoke report generator this file used to contain moved into
:mod:`repro.bench.report` (the harness's extract/view phase): every
section now cites the registry task name, record-schema version, and
parameters that produced it, and the same records land in the
committed ``BENCH_<area>.json`` trajectory files.

Both spellings work:

    PYTHONPATH=src python benchmarks/make_experiments_report.py > EXPERIMENTS.md
    PYTHONPATH=src python -m repro.bench report --out EXPERIMENTS.md
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import main

    raise SystemExit(main(["report", *sys.argv[1:]]))
