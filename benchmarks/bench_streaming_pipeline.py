"""The streaming round pipeline: chunk size x set size x workers sweep.

Measures what the chunked wire format buys on the plain TCP path: with
``chunk_size`` set, each party journals-and-ships round payloads chunk
by chunk while the next chunk's crypto runs ahead on the prefetch
thread. ``overlap_ratio`` - the fraction of the round's wall clock
during which crypto and the wire were busy simultaneously - is the
pipelining payoff.

The measurement cores (``run_streamed``, ``sweep``) live in
:mod:`repro.bench.tasks.streaming`, registered as the
``streaming.pipeline-sweep`` harness task. Run standalone for the
full sweep:

    PYTHONPATH=src python benchmarks/bench_streaming_pipeline.py --full
"""

from __future__ import annotations

import json
import os

from repro.bench.tasks.streaming import sweep


def test_report_streaming_pipeline_sweep():
    """Smoke grid: JSON shape, chunk accounting, and - the acceptance
    bar - a strictly positive pipeline overlap with 2+ workers."""
    cpus = os.cpu_count() or 1
    workers_list = sorted({1, min(2, cpus)})
    records = sweep(
        sizes=[96], chunk_sizes=[8], workers_list=workers_list,
        bits=256, link_delay_s=0.002,
    )
    print("\nStreaming pipeline sweep (intersection over TCP):")
    for record in records:
        row = {k: v for k, v in record.items() if k != "pipeline"}
        print("  " + json.dumps(row))
        if record["chunk_size"] is None:
            assert record["chunks"] == 0
            assert "pipeline" in record and not record["pipeline"]
            continue
        # 96 values at chunk 8: a dozen chunks each way, minimum.
        assert record["chunks"] >= 12
        assert "s.m2" in record["pipeline"]
        assert record["overlap_ratio"] >= 0.0
    if cpus >= 2:
        streamed = [
            r for r in records
            if r["chunk_size"] is not None and r["workers"] >= 2
        ]
        assert streamed, "2-worker streamed cell missing"
        assert max(r["overlap_ratio"] for r in streamed) > 0.0, (
            "pipelining produced no crypto/wire overlap"
        )


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("streaming"))
