"""The streaming round pipeline: chunk size x set size x workers sweep.

Measures what the chunked wire format buys on the plain TCP path: with
``chunk_size`` set, each party journals-and-ships round payloads chunk
by chunk while the next chunk's crypto runs ahead on the prefetch
thread. The per-round produce/send/wall split lands in the metrics
recorder, and ``overlap_ratio`` - the fraction of the round's wall
clock during which crypto and the wire were busy simultaneously - is
the pipelining payoff. A simulated per-frame link delay (off by
default, on in the sweep) models a real network, where the overlap is
the difference between "encrypt, then transmit" and "encrypt while
transmitting".

Each cell emits one flat JSON record; ``chunk_size=null`` cells are
the whole-round baseline the streamed cells are compared against.

Run standalone for the full sweep:

    PYTHONPATH=src python benchmarks/bench_streaming_pipeline.py \
        --sizes 128,512 --chunks 16,64 --workers 1,2,4 --json sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import threading
import time

from repro.analysis.instrumentation import MetricsRecorder
from repro.crypto.engine import create_engine
from repro.net import tcp
from repro.protocols.parties import PublicParams

PROTOCOL = "intersection"


class _DelayedEndpoint:
    """Adds a fixed per-frame send delay: a crude wide-area link."""

    def __init__(self, transport, delay_s: float):
        self._transport = transport
        self._delay_s = delay_s

    def send(self, message):
        time.sleep(self._delay_s)
        self._transport.send(message)

    def recv(self):
        return self._transport.recv()

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _values(n: int) -> tuple[list[str], list[str], set[str]]:
    half = n // 2
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s, {f"c{i}" for i in range(half)}


def run_streamed(
    n: int,
    bits: int,
    chunk_size: int | None,
    workers: int,
    link_delay_s: float = 0.0,
) -> dict:
    """One full TCP run of the intersection protocol; one JSON record.

    Both parties run in-process (server on a thread) with their own
    engine and recorder; the record aggregates the per-round pipeline
    entries from both sides.
    """
    params = PublicParams.for_bits(bits)
    v_r, v_s, expected = _values(n)
    s_recorder, r_recorder = MetricsRecorder(), MetricsRecorder()
    s_engine, r_engine = create_engine(workers), create_engine(workers)
    wrapper = None
    if link_delay_s:
        wrapper = lambda e: _DelayedEndpoint(e, link_delay_s)  # noqa: E731
    try:
        s_engine.warm_up()
        r_engine.warm_up()
        port_box: queue.Queue[int] = queue.Queue()

        def serve_s():
            tcp.serve(
                PROTOCOL, v_s, params, random.Random("S"),
                ready_callback=port_box.put, chunk_size=chunk_size,
                engine=s_engine, recorder=s_recorder,
                endpoint_wrapper=wrapper,
            )

        thread = threading.Thread(target=serve_s)
        thread.start()
        port = port_box.get(timeout=30)
        start = time.perf_counter()
        answer = tcp.connect(
            PROTOCOL, v_r, random.Random("R"), "127.0.0.1", port,
            chunk_size=chunk_size, engine=r_engine, recorder=r_recorder,
            endpoint_wrapper=wrapper,
        )
        wall_s = time.perf_counter() - start
        thread.join(timeout=60)
    finally:
        s_engine.close()
        r_engine.close()
    assert answer == expected

    pipeline = {
        **r_recorder.report().get("pipeline", {}),
        **s_recorder.report().get("pipeline", {}),
    }
    chunks = sum(entry["chunks"] for entry in pipeline.values())
    busy = sum(e["produce_s"] + e["send_s"] for e in pipeline.values())
    round_wall = sum(e["wall_s"] for e in pipeline.values())
    overlap_s = sum(e["overlap_s"] for e in pipeline.values())
    return {
        "protocol": PROTOCOL,
        "n": n,
        "bits": bits,
        "chunk_size": chunk_size,
        "workers": workers,
        "link_delay_ms": link_delay_s * 1e3,
        "wall_s": wall_s,
        "chunks": chunks,
        "busy_s": busy,
        "overlap_s": overlap_s,
        "overlap_ratio": (overlap_s / round_wall) if round_wall else 0.0,
        "pipeline": pipeline,
    }


def sweep(
    sizes: list[int],
    chunk_sizes: list[int | None],
    workers_list: list[int],
    bits: int,
    link_delay_s: float,
) -> list[dict]:
    """The full grid; each streamed cell carries the speedup over the
    same-shape whole-round baseline."""
    records = []
    for n in sizes:
        for workers in workers_list:
            baseline = run_streamed(n, bits, None, workers, link_delay_s)
            records.append(baseline)
            for chunk_size in chunk_sizes:
                if chunk_size is None:
                    continue
                record = run_streamed(
                    n, bits, chunk_size, workers, link_delay_s
                )
                record["speedup_vs_whole_round"] = (
                    baseline["wall_s"] / record["wall_s"]
                    if record["wall_s"] else None
                )
                records.append(record)
    return records


def test_report_streaming_pipeline_sweep():
    """Smoke grid: JSON shape, chunk accounting, and - the acceptance
    bar - a strictly positive pipeline overlap with 2+ workers."""
    cpus = os.cpu_count() or 1
    workers_list = sorted({1, min(2, cpus)})
    records = sweep(
        sizes=[96], chunk_sizes=[8], workers_list=workers_list,
        bits=256, link_delay_s=0.002,
    )
    print("\nStreaming pipeline sweep (intersection over TCP):")
    for record in records:
        row = {k: v for k, v in record.items() if k != "pipeline"}
        print("  " + json.dumps(row))
        if record["chunk_size"] is None:
            assert record["chunks"] == 0
            assert "pipeline" in record and not record["pipeline"]
            continue
        # 96 values at chunk 8: a dozen chunks each way, minimum.
        assert record["chunks"] >= 12
        assert "s.m2" in record["pipeline"]
        assert record["overlap_ratio"] >= 0.0
    if cpus >= 2:
        streamed = [
            r for r in records
            if r["chunk_size"] is not None and r["workers"] >= 2
        ]
        assert streamed, "2-worker streamed cell missing"
        assert max(r["overlap_ratio"] for r in streamed) > 0.0, (
            "pipelining produced no crypto/wire overlap"
        )


def main() -> None:
    """Standalone sweep: print one JSON record per line, or save all."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="128,512")
    parser.add_argument("--chunks", default="16,64")
    parser.add_argument("--workers", default="1,2,4")
    parser.add_argument("--bits", type=int, default=512)
    parser.add_argument(
        "--link-delay-ms", type=float, default=2.0,
        help="simulated per-frame send delay (default 2ms)",
    )
    parser.add_argument("--json", default=None, help="write records here")
    args = parser.parse_args()
    records = sweep(
        [int(s) for s in args.sizes.split(",")],
        [int(c) for c in args.chunks.split(",")],
        [int(w) for w in args.workers.split(",")],
        args.bits,
        args.link_delay_ms / 1e3,
    )
    for record in records:
        print(json.dumps({
            k: v for k, v in record.items() if k != "pipeline"
        }))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2)


if __name__ == "__main__":
    main()
