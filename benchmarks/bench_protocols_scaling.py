"""Validation experiment - all four protocols, scaling in n.

Not a paper table (the paper reports no measured protocol runtimes),
but the natural validation of the whole reproduction: every protocol
executed end to end at growing set sizes, timing and wire bytes
recorded, correctness asserted against the plaintext engine on every
run, and linearity in n checked (the model says both cost dimensions
are O(n) for fixed key size).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.equijoin_size import run_equijoin_size
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size
from repro.workloads.generator import multiset_pair, overlapping_sets


def _sets(n, seed):
    return overlapping_sets(n, n, n // 2, random.Random(seed))


PROTOCOLS = {
    "intersection": lambda v_r, v_s, suite: run_intersection(v_r, v_s, suite),
    "intersection_size": lambda v_r, v_s, suite: run_intersection_size(v_r, v_s, suite),
    "equijoin": lambda v_r, v_s, suite: run_equijoin(
        v_r, {v: b"record" for v in v_s}, suite
    ),
    "equijoin_size": lambda v_r, v_s, suite: run_equijoin_size(v_r, v_s, suite),
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
@pytest.mark.parametrize("n", [16, 64])
def test_protocol_benchmark(benchmark, bench_bits, name, n):
    v_r, v_s, expected = _sets(n, n)
    protocol = PROTOCOLS[name]

    def run():
        suite = ProtocolSuite.default(bits=bench_bits, seed=n)
        return protocol(v_r, v_s, suite)

    result = benchmark(run)
    if name == "intersection":
        assert result.intersection == expected
    elif name == "intersection_size":
        assert result.size == len(expected)


def test_report_scaling_table(bench_bits):
    """Wall clock and bytes per protocol across n; linearity check."""
    print(f"\nProtocol scaling ({bench_bits}-bit modulus, 50% overlap):")
    print(f"  {'protocol':18s} {'n':>5s} {'time [s]':>9s} {'wire [kB]':>10s}")
    for name, protocol in sorted(PROTOCOLS.items()):
        times = []
        for n in (16, 32, 64):
            v_r, v_s, _ = _sets(n, n)
            suite = ProtocolSuite.default(bits=bench_bits, seed=n)
            start = time.perf_counter()
            result = protocol(v_r, v_s, suite)
            elapsed = time.perf_counter() - start
            times.append(elapsed)
            print(
                f"  {name:18s} {n:5d} {elapsed:9.3f} "
                f"{result.run.total_bytes / 1024:10.1f}"
            )
        # Linearity: 4x the input within ~2-6x the time (interpreter
        # noise at small n, superlinear sort terms are negligible).
        assert times[2] < 8 * times[0] + 0.05


def test_report_equijoin_size_multisets(bench_bits):
    """The multiset protocol at realistic duplicate distributions."""
    rng = random.Random(9)
    print("\nEquijoin-size with Zipf duplicates:")
    for n in (16, 48):
        ms_r, ms_s = multiset_pair(n, n, n // 2, rng)
        suite = ProtocolSuite.default(bits=bench_bits, seed=n)
        start = time.perf_counter()
        result = run_equijoin_size(ms_r, ms_s, suite)
        elapsed = time.perf_counter() - start
        print(
            f"  |V|={n}, occurrences R={len(ms_r)} S={len(ms_s)}: "
            f"join={result.join_size}, {elapsed:.3f}s, "
            f"{result.run.total_bytes/1024:.1f} kB"
        )
        assert result.join_size == ms_r.join_size(ms_s)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("protocols.scaling,protocols.multiset-join"))
