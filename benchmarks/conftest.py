"""Shared fixtures for the benchmark harness.

Benchmarks run the real protocols at reduced ``n`` (the protocols are
O(n) in modular exponentiations) and extrapolate to the paper's scales
with the measured per-operation constants; see EXPERIMENTS.md for the
recorded results.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.calibration import calibrate
from repro.protocols.base import ProtocolSuite


def pytest_addoption(parser):
    parser.addoption(
        "--bench-bits",
        action="store",
        default="512",
        help="modulus size used by protocol benchmarks (default 512)",
    )


@pytest.fixture(scope="session")
def bench_bits(request) -> int:
    return int(request.config.getoption("--bench-bits"))


@pytest.fixture(scope="session")
def calibration_1024():
    """Measured C_e/C_h/C_K/C_s at the paper's 1024-bit modulus."""
    return calibrate(bits=1024, samples=20)


@pytest.fixture(scope="session")
def bench_suite(bench_bits) -> ProtocolSuite:
    return ProtocolSuite.default(bits=bench_bits, seed=20030609)


@pytest.fixture()
def bench_rng() -> random.Random:
    return random.Random(20030609)
