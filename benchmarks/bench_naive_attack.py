"""Experiment S3.1 - the broken protocol and the dictionary attack.

Paper claim: under the naive one-way-hash protocol, "for any arbitrary
value v, R can simply compute h(v) and check whether h(v) ∈ X_S ...
if the domain V is small, R can exhaustively go over all possible
values and completely learn V_S". The fix (commutative encryption)
makes the same attack useless.

The bench runs the attack against both protocols over a growing
candidate domain: recovery rate 100% vs 0%, plus attack throughput
(hash evaluations per second - the attacker's budget).
"""

from __future__ import annotations

import time

import pytest

from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection import run_intersection
from repro.protocols.naive_hash import dictionary_attack, run_naive_intersection


def test_report_attack_comparison():
    suite = ProtocolSuite.default(bits=256, seed=31)
    domain = [f"ssn-{i:05d}" for i in range(400)]
    v_s = domain[100:180]
    v_r = domain[:50]

    naive = run_naive_intersection(v_r, v_s, suite)
    start = time.perf_counter()
    recovered_naive = dictionary_attack(naive.observed_hashes, domain, suite.hash)
    naive_time = time.perf_counter() - start

    secure = run_intersection(v_r, v_s, suite)
    observed = set(secure.run.r_view.flat_integers())
    recovered_secure = dictionary_attack(observed, domain, suite.hash)

    print(
        f"\nS3.1 dictionary attack over a {len(domain)}-value domain:"
        f"\n  naive protocol:  {len(recovered_naive)}/{len(v_s)} of V_S "
        f"recovered in {naive_time:.2f}s (100% expected)"
        f"\n  ours (S3.3):     {len(recovered_secure)}/{len(v_s)} recovered "
        f"(0% expected)"
    )
    assert recovered_naive == set(v_s)
    assert recovered_secure == set()


def test_report_attack_scales_with_domain():
    """Attack cost is one hash per candidate - tiny, which is the point:
    the naive protocol falls to a laptop-scale adversary."""
    suite = ProtocolSuite.default(bits=256, seed=32)
    v_s = [f"ssn-{i:05d}" for i in range(50)]
    naive = run_naive_intersection([], v_s, suite)
    print("\nS3.1 attack throughput:")
    for domain_size in (100, 1000):
        domain = [f"ssn-{i:05d}" for i in range(domain_size)]
        start = time.perf_counter()
        recovered = dictionary_attack(naive.observed_hashes, domain, suite.hash)
        elapsed = time.perf_counter() - start
        print(
            f"  domain {domain_size:5d}: {elapsed:.3f}s "
            f"({domain_size/elapsed:.0f} candidates/s), "
            f"{len(recovered)} values exposed"
        )
        assert recovered == {v for v in v_s if v in set(domain)}


@pytest.mark.parametrize("domain_size", [200, 800])
def test_attack_benchmark(benchmark, domain_size):
    suite = ProtocolSuite.default(bits=128, seed=33)
    v_s = [f"v{i}" for i in range(40)]
    naive = run_naive_intersection([], v_s, suite)
    domain = [f"v{i}" for i in range(domain_size)]
    recovered = benchmark(
        dictionary_attack, naive.observed_hashes, domain, suite.hash
    )
    assert len(recovered) == 40


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("attacks.naive-dictionary"))
