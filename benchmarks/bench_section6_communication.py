"""Experiment S6.1 (communication) - wire traffic vs the bit formulas.

Paper claims: intersection (and both size protocols) move
``(|V_S| + 2 |V_R|) k`` bits; the equijoin moves
``(|V_S| + 3 |V_R|) k + |V_S| k'`` bits.

The channel substrate counts every byte, so the comparison is exact up
to known per-message framing (5-byte list/tuple headers and a 5-byte
length prefix per bignum, quantified below).
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import CostConstants, ProtocolCostModel
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size


def _codewords_on_wire(result) -> int:
    total = 0
    for view in (result.run.r_view, result.run.s_view):
        total += len(view.flat_integers())
    return total


def test_report_intersection_codewords(bench_bits):
    """Codeword counts vs the (n_S + 2 n_R) model."""
    print("\nS6.1 communication (codewords on the wire):")
    suite_bits = 128  # codeword counting is size-independent
    for n_r, n_s in [(50, 50), (30, 90), (100, 20)]:
        suite = ProtocolSuite.default(bits=suite_bits, seed=n_r)
        result = run_intersection_size(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        measured = _codewords_on_wire(result)
        model = n_s + 2 * n_r
        print(
            f"  intersection_size n_R={n_r:4d} n_S={n_s:4d}: "
            f"measured {measured} codewords, model {model}"
        )
        assert measured == model

        suite = ProtocolSuite.default(bits=suite_bits, seed=n_r + 1)
        inter = run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        measured = _codewords_on_wire(inter)
        # The intersection protocol echoes R's y in step 4(b) pairs; the
        # paper's accounting ("S does not retransmit the y's") is n_S + 2 n_R.
        assert measured == n_s + 3 * n_r
        print(
            f"  intersection      n_R={n_r:4d} n_S={n_s:4d}: "
            f"measured {measured} (incl. {n_r} echoed), model {model} + {n_r}"
        )


def test_report_equijoin_codewords():
    """Equijoin codeword count vs (n_S + 3 n_R) k + n_S k'."""
    print("\nS6.1 equijoin communication:")
    for n_r, n_s in [(40, 40), (20, 60)]:
        suite = ProtocolSuite.default(bits=128, seed=n_r)
        ext = {f"s{i}": b"payload" for i in range(n_s)}
        result = run_equijoin([f"r{i}" for i in range(n_r)], ext, suite)
        measured = _codewords_on_wire(result)
        # Step 4 triples carry 3 n_R group elements (y echoed + two
        # encryptions - the y echo is the paper's '3 n_R' since R's own
        # upload counted once); step 5 pairs carry n_S codewords plus
        # n_S single-block ext ciphertexts (k' = k here).
        model = n_r + 3 * n_r + n_s + n_s
        print(
            f"  equijoin n_R={n_r:4d} n_S={n_s:4d}: measured {measured}, "
            f"model (n_S + 3 n_R)+(n_S k') = {model}"
        )
        assert measured == model


def test_report_gbit_scale_estimates(calibration_1024):
    """Bit volumes at the paper's application scales, on a T1."""
    model = ProtocolCostModel(CostConstants())
    print("\nS6.1 transfer times at paper scale (T1 line):")
    for n in (10**4, 10**6):
        bits = model.intersection_bits(n, n)
        hours = model.transfer_seconds(bits) / 3600
        print(f"  n={n:.0e}: {bits:.2e} bits -> {hours:.2f} h")
    assert model.intersection_bits(10**6, 10**6) == 3 * 10**6 * 1024


@pytest.mark.parametrize("n", [32, 128])
def test_wire_bytes_benchmark(benchmark, n):
    """Time serialization-inclusive protocol traffic accounting."""
    def run():
        suite = ProtocolSuite.default(bits=256, seed=n)
        result = run_intersection_size(
            [f"r{i}" for i in range(n)], [f"s{i}" for i in range(n)], suite
        )
        return result.run.total_bytes

    total = benchmark(run)
    # 3n codewords of (256/8 + 5) bytes + framing.
    assert total == pytest.approx(3 * n * 37, rel=0.02)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.section6-communication"))
