"""Experiment S5.2 - equijoin-size leakage ablation.

The paper characterizes the protocol's extra leak through the duplicate
distribution: "if all values have the same number of duplicates ... R
only learns |V_R ∩ V_S|. At the other extreme, if no two values have
the same number of duplicates, R will learn V_R ∩ V_S."

The ablation sweeps duplicate distributions from uniform to fully
distinct and reports the fraction of R's values whose membership gets
pinned down - reproducing both extremes and the continuum between.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.leakage import leakage_profile
from repro.db.multiset import ValueMultiset
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin_size import run_equijoin_size
from repro.workloads.generator import multiset_pair


def _distinct_count_multisets(n, overlap):
    """Every value gets a unique duplicate count (worst case)."""
    values_r = [f"v{i}" for i in range(n)]
    values_s = [f"v{i}" for i in range(overlap)] + [f"s{i}" for i in range(n - overlap)]
    ms_r = ValueMultiset.from_values(
        [v for i, v in enumerate(values_r) for _ in range(i + 1)]
    )
    ms_s = ValueMultiset.from_values(
        [v for i, v in enumerate(values_s) for _ in range(i + 1)]
    )
    return ms_r, ms_s


def test_report_leakage_sweep():
    rng = random.Random(5)
    n, overlap = 20, 8
    print("\nS5.2 leakage ablation (|V_R|=|V_S|=20, overlap 8):")
    print("  distribution        identified fraction")

    ms_r, ms_s = multiset_pair(n, n, overlap, rng, uniform_count=3)
    uniform = leakage_profile(ms_r, ms_s).identified_fraction(n)
    print(f"  uniform (d=3)       {uniform:.2f}")

    ms_r, ms_s = multiset_pair(n, n, overlap, rng, alpha=2.5)
    zipf_steep = leakage_profile(ms_r, ms_s).identified_fraction(n)
    print(f"  zipf alpha=2.5      {zipf_steep:.2f}")

    ms_r, ms_s = multiset_pair(n, n, overlap, rng, alpha=1.1)
    zipf_flat = leakage_profile(ms_r, ms_s).identified_fraction(n)
    print(f"  zipf alpha=1.1      {zipf_flat:.2f}")

    ms_r, ms_s = _distinct_count_multisets(n, overlap)
    distinct = leakage_profile(ms_r, ms_s).identified_fraction(n)
    print(f"  all-distinct counts {distinct:.2f}")

    # The paper's two extremes.
    assert uniform == 0.0
    assert distinct == 1.0
    # Heavier-tailed (more distinct counts) leaks at least as much as
    # uniform and at most as much as fully distinct.
    assert 0.0 <= zipf_flat <= 1.0
    assert 0.0 <= zipf_steep <= 1.0


def test_report_protocol_leak_matches_analysis(bench_bits):
    """The live protocol's reported leak equals the plaintext analysis."""
    rng = random.Random(6)
    ms_r, ms_s = multiset_pair(12, 12, 5, rng)
    suite = ProtocolSuite.default(bits=128, seed=6)
    result = run_equijoin_size(ms_r, ms_s, suite)
    profile = leakage_profile(ms_r, ms_s)
    print(
        f"\nS5.2 live protocol: overlap matrix {result.partition_overlap} "
        f"== analysis {profile.matrix}"
    )
    assert result.partition_overlap == profile.matrix


@pytest.mark.parametrize("uniform", [True, False])
def test_leakage_analysis_benchmark(benchmark, uniform):
    rng = random.Random(7)
    ms_r, ms_s = multiset_pair(
        200, 200, 80, rng, uniform_count=2 if uniform else None
    )
    profile = benchmark(leakage_profile, ms_r, ms_s)
    if uniform:
        assert profile.identified_fraction(200) == 0.0


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("leakage"))
