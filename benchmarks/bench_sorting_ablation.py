"""Ablation - the lexicographic-reordering requirement (footnote 3).

The paper insists every shipped ciphertext set be "reordered
lexicographically", warning that sending values in input order would
reveal significant additional information. This ablation makes the
warning concrete on the intersection-*size* protocol: if S returns
``Z_R`` in the order it received ``Y_R`` (instead of reordered), R can
match each double encryption back to its own value *by position* and
recover the full intersection - collapsing the size-only protocol into
the full intersection protocol.

The audit's ``sorted:`` check exists to catch exactly this bug.
"""

from __future__ import annotations

import random

from repro.bench.tasks.attacks import intersection_size_run
from repro.protocols.audit import audit_view
from repro.protocols.base import ProtocolSuite
from repro.workloads.generator import overlapping_sets

#: The switchable-reorder protocol now lives with the harness task
#: (``attacks.sorting-ablation``); keep the old private name importable.
_intersection_size_run = intersection_size_run


def test_report_sorting_ablation():
    rng = random.Random(8)
    v_r, v_s, expected = overlapping_sets(20, 25, 9, rng)
    print("\nFootnote-3 ablation (intersection-size, |∩| = 9):")

    suite = ProtocolSuite.default(bits=128, seed=8)
    size, recovered, _ = _intersection_size_run(v_r, v_s, suite, reorder_z_r=True)
    print(f"  with reordering:    size = {size}, positional attack "
          f"recovered {len(recovered & expected)}/{len(expected)} values")
    assert size == len(expected)
    # Sorted Z_R: positions are meaningless; overlap with the true
    # intersection is only chance-level.
    assert len(recovered & expected) < len(expected)

    suite = ProtocolSuite.default(bits=128, seed=8)
    size, recovered, run = _intersection_size_run(
        v_r, v_s, suite, reorder_z_r=False
    )
    print(f"  without reordering: size = {size}, positional attack "
          f"recovered {len(recovered & expected)}/{len(expected)} values "
          f"- the size protocol degraded to full intersection")
    assert size == len(expected)
    assert recovered == expected  # total break

    # The audit flags the unsorted run.
    report = audit_view(
        run.r_view, suite.group, suite.hash, counterpart_values=list(v_s)
    )
    failed = {c.name for c in report.failures()}
    print(f"  audit verdict on the broken run: failed checks {failed}")
    assert any(name.startswith("sorted:") for name in failed)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("attacks.sorting-ablation"))
