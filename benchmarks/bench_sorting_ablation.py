"""Ablation - the lexicographic-reordering requirement (footnote 3).

The paper insists every shipped ciphertext set be "reordered
lexicographically", warning that sending values in input order would
reveal significant additional information. This ablation makes the
warning concrete on the intersection-*size* protocol: if S returns
``Z_R`` in the order it received ``Y_R`` (instead of reordered), R can
match each double encryption back to its own value *by position* and
recover the full intersection - collapsing the size-only protocol into
the full intersection protocol.

The audit's ``sorted:`` check exists to catch exactly this bug.
"""

from __future__ import annotations

import random

from repro.net.runner import ProtocolRun
from repro.protocols.audit import audit_view
from repro.protocols.base import ProtocolSuite, sorted_ciphertexts
from repro.workloads.generator import overlapping_sets


def _intersection_size_run(v_r, v_s, suite, reorder_z_r: bool):
    """The S5.1 protocol with the step-4(b) reordering switchable."""
    run = ProtocolRun(protocol="intersection_size_ablation")
    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(set(v_s), key=repr)
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # R ships Y_R *unsorted* (paired with its own value order, which a
    # semi-honest R legitimately remembers).
    y_r = suite.cipher.encrypt_many(e_r, x_r)
    y_r_received = run.to_s("3:Y_R", y_r)

    y_s_received = run.to_r(
        "4a:Y_S", sorted_ciphertexts(suite.cipher.encrypt_many(e_s, x_s))
    )
    z_r = suite.cipher.encrypt_many(e_s, y_r_received)
    if reorder_z_r:
        z_r = sorted_ciphertexts(z_r)
    z_r_received = run.to_r("4b:Z_R", z_r)

    z_s = set(suite.cipher.encrypt_many(e_r, y_s_received))
    size = len(z_s & set(z_r_received))

    # R's positional attack: if Z_R came back in Y_R order, position i
    # of Z_R corresponds to R's value i.
    recovered = {
        r_values[i] for i, z in enumerate(z_r_received) if z in z_s
    }
    return size, recovered, run


def test_report_sorting_ablation():
    rng = random.Random(8)
    v_r, v_s, expected = overlapping_sets(20, 25, 9, rng)
    print("\nFootnote-3 ablation (intersection-size, |∩| = 9):")

    suite = ProtocolSuite.default(bits=128, seed=8)
    size, recovered, _ = _intersection_size_run(v_r, v_s, suite, reorder_z_r=True)
    print(f"  with reordering:    size = {size}, positional attack "
          f"recovered {len(recovered & expected)}/{len(expected)} values")
    assert size == len(expected)
    # Sorted Z_R: positions are meaningless; overlap with the true
    # intersection is only chance-level.
    assert len(recovered & expected) < len(expected)

    suite = ProtocolSuite.default(bits=128, seed=8)
    size, recovered, run = _intersection_size_run(
        v_r, v_s, suite, reorder_z_r=False
    )
    print(f"  without reordering: size = {size}, positional attack "
          f"recovered {len(recovered & expected)}/{len(expected)} values "
          f"- the size protocol degraded to full intersection")
    assert size == len(expected)
    assert recovered == expected  # total break

    # The audit flags the unsorted run.
    report = audit_view(
        run.r_view, suite.group, suite.hash, counterpart_values=list(v_s)
    )
    failed = {c.name for c in report.failures()}
    print(f"  audit verdict on the broken run: failed checks {failed}")
    assert any(name.startswith("sorted:") for name in failed)
