"""Experiment S6.1 (computation) - protocol cost model vs reality.

Paper claim (Section 6.1): computation is dominated by commutative
encryptions; intersection costs ~``2 C_e (|V_S| + |V_R|)`` and the
equijoin ~``2 C_e |V_S| + 5 C_e |V_R|``.

Validation here is threefold:

1. *operation counts*: an instrumented run performs exactly the number
   of modexps the formula predicts (machine-independent, exact);
2. *wall clock*: timed runs at several n scale linearly and match
   ``predicted_ops x measured C_e`` within a modest factor;
3. *extrapolation*: predicted time at the paper's n = 1 million with
   the measured C_e of this machine vs the paper's 2001 constants.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import CostConstants, ProtocolCostModel
from repro.analysis.instrumentation import counting_suite
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.workloads.generator import overlapping_sets


def test_report_operation_counts_match_model():
    """Exact validation: instrumented modexp counts == model."""
    model = ProtocolCostModel()
    print("\nS6.1 operation counts (measured == model):")
    for n_r, n_s in [(50, 50), (20, 80), (100, 10)]:
        cs = counting_suite(bits=64)
        run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], cs.suite
        )
        predicted = model.intersection_ops(n_s, n_r)
        print(
            f"  intersection n_R={n_r:4d} n_S={n_s:4d}: "
            f"measured {cs.counter.encryptions} modexps, "
            f"model {predicted.encryptions}"
        )
        assert cs.counter.encryptions == predicted.encryptions

        cs = counting_suite(bits=64)
        ext = {f"s{i}": b"row" for i in range(n_s)}
        run_equijoin([f"s{i}" for i in range(n_r)], ext, cs.suite)
        predicted_join = model.join_ops(n_s, n_r, min(n_r, n_s))
        print(
            f"  equijoin     n_R={n_r:4d} n_S={n_s:4d}: "
            f"measured {cs.counter.encryptions} modexps, "
            f"model {predicted_join.encryptions}"
        )
        assert cs.counter.encryptions == predicted_join.encryptions


def test_report_extrapolation_to_paper_scale(calibration_1024):
    """Predicted wall-clock at |V| = 1M on this machine vs the paper."""
    measured = ProtocolCostModel(calibration_1024.constants.with_processors(10))
    paper = ProtocolCostModel(CostConstants())
    n = 10**6
    ours = measured.parallel_seconds(measured.intersection_seconds(n, n)) / 3600
    theirs = paper.parallel_seconds(paper.intersection_seconds(n, n)) / 3600
    print(
        f"\nS6.1 extrapolated intersection at n=1M, P=10:"
        f"\n  paper constants (2001 Pentium III): {theirs:.2f} h"
        f"\n  this machine (measured C_e = {calibration_1024.constants.ce_seconds*1e3:.2f} ms): {ours:.2f} h"
    )
    assert theirs == pytest.approx(2.22, abs=0.05)
    assert ours > 0


@pytest.mark.parametrize("n", [16, 64, 256])
def test_intersection_wall_clock(benchmark, bench_bits, n):
    """Timed full protocol runs; pytest-benchmark records the scaling."""
    def run():
        suite = ProtocolSuite.default(bits=bench_bits, seed=n)
        import random as _random

        v_r, v_s, expected = overlapping_sets(n, n, n // 2, _random.Random(n))
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == expected
        return result

    benchmark(run)


def test_wall_clock_tracks_model(bench_bits, calibration_1024):
    """Measured runtime within a small factor of ops x C_e."""
    import time

    from repro.analysis.calibration import calibrate

    constants = calibrate(bits=bench_bits, samples=10).constants
    model = ProtocolCostModel(constants)
    n = 128
    suite = ProtocolSuite.default(bits=bench_bits, seed=1)
    import random as _random

    v_r, v_s, _ = overlapping_sets(n, n, n // 2, _random.Random(1))
    start = time.perf_counter()
    run_intersection(v_r, v_s, suite)
    elapsed = time.perf_counter() - start
    predicted = model.intersection_seconds(n, n)
    print(
        f"\nS6.1 wall clock n={n}, {bench_bits}-bit: measured {elapsed:.3f}s, "
        f"model {predicted:.3f}s (C_e only)"
    )
    # Model counts only primitive costs; allow generous slack in both
    # directions (calibration noise, Python-level bookkeeping) while
    # still pinning measured time to the same order of magnitude.
    assert 0.3 * predicted < elapsed < 6 * predicted + 0.5


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.section6-computation"))
