"""Experiment S3.2.2 - hash collision probability bound.

Paper claim: with 1024-bit hash values (N ~ 2^1024 / 2 residues) and
n = 1 million values, Pr[collision] ~ 1e-295; real deployments detect
residual collisions by sorting the hashes at protocol start.

This bench (a) recomputes the bound at the paper's parameters,
(b) times the try-and-increment hash and the sort-based collision
check that the bound justifies.
"""

from __future__ import annotations

import math

import pytest

from repro.crypto.groups import QRGroup
from repro.crypto.hashing import (
    TryIncrementHash,
    collision_probability,
    find_collisions,
)


def test_report_collision_bound():
    """Regenerate the paper's collision numbers."""
    rows = []
    for bits, n in [(1024, 10**6), (1024, 10**4), (512, 10**6), (2048, 10**6)]:
        domain = 2**bits // 2
        p = collision_probability(n, domain)
        rows.append((bits, n, p))
    print("\nS3.2.2 collision bound: Pr[collision] = 1 - exp(-n(n-1)/2N)")
    for bits, n, p in rows:
        log = math.log10(p) if p > 0 else float("-inf")
        print(f"  k={bits:5d} bits  n={n:.0e}  Pr ~ 10^{log:.1f}")
    paper = next(p for bits, n, p in rows if bits == 1024 and n == 10**6)
    assert -298 < math.log10(paper) < -294  # the paper's ~1e-295


@pytest.mark.parametrize("bits", [512, 1024])
def test_hash_throughput(benchmark, bits):
    """Time one try-and-increment hash into QR_p."""
    hash_fn = TryIncrementHash(QRGroup.for_bits(bits))
    counter = iter(range(10**9))
    benchmark(lambda: hash_fn.hash_value(f"value-{next(counter)}"))


def test_collision_check_throughput(benchmark, bench_suite, bench_rng):
    """Time the sort-based collision check on 10k hash values."""
    hashes = [bench_suite.group.random_element(bench_rng) for _ in range(10_000)]
    result = benchmark(find_collisions, hashes)
    assert result == []


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("crypto.collision-bound,crypto.hash-throughput"))
