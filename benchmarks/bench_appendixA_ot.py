"""Experiment A.1.1 - oblivious transfer costs.

Paper claims: with the Naor-Pinkas amortization and ``C_e = 1000 C_x``,
the computation-optimal batch parameter is ``l = 8``, giving
``C_ot = 0.157 C_e`` and ``C'_ot >= 32 k_1`` bits; input coding then
costs ``w n C_ot ~ 5 n C_e`` and ``~1e5 n`` bits.

We print the l-sweep that produces the optimum, verify the numbers, and
time our executable DH-based OT as the living counterpart.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.costmodel import CircuitCostModel
from repro.crypto.groups import QRGroup
from repro.crypto.ot import NaorPinkasCostModel, run_ot


def test_report_amortization_sweep():
    model = NaorPinkasCostModel(ce_over_cx=1000.0, k1_bits=100)
    print("\nA.1.1 Naor-Pinkas amortization (C_e = 1000 C_x):")
    print("  l   C_ot [C_e]   C'_ot [bits]")
    for l in (1, 2, 4, 6, 8, 10, 12):
        print(
            f"  {l:2d}  {model.computation_cost(l):10.4f}  "
            f"{model.communication_bits(l):12.0f}"
        )
    best = model.optimal_l()
    print(f"  optimal l = {best} -> C_ot = {model.computation_cost(best):.3f} C_e")
    assert best == 8
    assert model.computation_cost(8) == pytest.approx(0.157, abs=1e-3)
    assert model.communication_bits(8) == 3200


def test_report_input_coding_totals():
    cm = CircuitCostModel()
    print("\nA.1.1 input coding (w = 32):")
    for n in (10**4, 10**6, 10**8):
        print(
            f"  n={n:.0e}: {cm.input_coding_ce(n):.1e} C_e, "
            f"{cm.input_coding_bits(n):.1e} bits"
        )
    assert cm.input_coding_ce(10**6) == pytest.approx(5e6, rel=0.01)


@pytest.mark.parametrize("bits", [256, 512])
def test_ot_wall_clock(benchmark, bits):
    """One executable 1-out-of-2 OT (4 modexps + hashing)."""
    group = QRGroup.for_bits(bits)
    rng = random.Random(1)

    def transfer():
        return run_ot(group, b"label-zero!!!!!!", b"label-one!!!!!!!",
                      rng.randrange(2), rng)

    result = benchmark(transfer)
    assert result in (b"label-zero!!!!!!", b"label-one!!!!!!!")


def test_report_ot_vs_ce(calibration_1024):
    """Our unamortized OT costs ~5 C_e (4 modexps + overhead) - the
    amortized 0.157 C_e of [36] is what makes circuit input coding even
    remotely competitive."""
    import time

    group = QRGroup.for_bits(1024)
    rng = random.Random(2)
    start = time.perf_counter()
    runs = 10
    for _ in range(runs):
        run_ot(group, b"0" * 16, b"1" * 16, rng.randrange(2), rng)
    per_ot = (time.perf_counter() - start) / runs
    ratio = per_ot / calibration_1024.constants.ce_seconds
    print(f"\nA.1.1 executable OT: {per_ot*1e3:.2f} ms/transfer = {ratio:.1f} C_e")
    assert 3 <= ratio <= 12  # 4-6 modexps' worth


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("costmodel.appendix-a-ot"))
