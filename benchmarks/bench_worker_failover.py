"""Client-observed recovery latency after a shard worker SIGKILL.

Runs journaled sessions against a supervised
:class:`~repro.net.shard.ShardedProtocolServer`, murders the worker
the moment the front end has routed each session through, and times
the wall from the kill to the client's byte-correct answer - respawn
backoff, journal takeover, reconnect and round replay all land inside
the measured window.

The measurement core is the ``robustness.worker-failover`` harness
task in :mod:`repro.bench.tasks.robustness`. Run standalone for the
full trial count:

    PYTHONPATH=src python benchmarks/bench_worker_failover.py --full
"""

from __future__ import annotations

import json

from repro.bench.registry import get_task
from repro.bench.runner import run_selection


def test_report_worker_failover_recovery():
    """Smoke trials: every killed session recovers to the right answer
    and the recovery tail is recorded as monotone percentiles."""
    task = get_task("robustness.worker-failover")
    by_area = run_selection([task], mode="smoke", seed=20030609)
    records = by_area["robustness"]["tasks"][0]["records"]
    print("\nWorker-failover recovery (supervised sharded server):")
    for record in records:
        print("  " + json.dumps(record, sort_keys=True))
    (record,) = records
    assert record["respawns"] >= record["trials"]
    metrics = record["metrics"]
    assert (
        0
        < metrics["recovery_p50_s"]
        <= metrics["recovery_p95_s"]
        <= metrics["recovery_p99_s"]
        <= metrics["recovery_max_s"]
    )


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("robustness"))
