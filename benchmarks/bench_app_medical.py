"""Experiment S6.2.2 - medical research (Figure 2).

Paper claim: with |V_R| = |V_S| = 1 million ids, the four
intersection-size queries cost 8e6 C_e ~ 4 hours (P = 10) and
8 Gbits ~ 1.5 hours on a T1.

We run the full three-party Figure 2 pipeline at reduced scale, verify
the contingency table against the plaintext SQL, check the 4x cost
structure, and reproduce the paper's numbers from the cost model.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.estimates import medical_research_estimate
from repro.apps.medical import plaintext_contingency, run_medical_research
from repro.protocols.base import ProtocolSuite
from repro.workloads.generator import medical_workload


def test_report_paper_estimate():
    est = medical_research_estimate()
    print(f"\nS6.2.2 {est.round_trip_summary()}")
    print(
        f"  paper: ~4 h compute, ~1.5 h transfer; "
        f"model: {est.computation_hours:.2f} h, {est.communication_hours:.2f} h"
    )
    assert est.encryptions_ce == pytest.approx(8e6)
    assert 4.0 <= est.computation_hours <= 4.6
    assert 1.3 <= est.communication_hours <= 1.6


def test_report_scaled_run_correct_and_counted():
    """Live Figure 2 run: answer correct, traffic = 4 queries' worth."""
    wl = medical_workload(150, random.Random(4))
    suite = ProtocolSuite.default(bits=128, seed=4)
    result = run_medical_research(wl.t_r, wl.t_s, suite)
    truth = plaintext_contingency(wl.t_r, wl.t_s)
    print(
        f"\nS6.2.2 scaled run (150 people): contingency {result.table.as_dict()}"
        f"\n  total wire bytes {result.run.total_bytes}, "
        f"T received {len(result.run.t_view.received)} sets"
    )
    assert result.table.as_dict() == truth.as_dict()
    assert len(result.run.t_view.received) == 8  # (Z_R, Z_S) x 4 queries


def test_report_extrapolation(calibration_1024):
    constants = calibration_1024.constants.with_processors(10)
    est = medical_research_estimate(constants=constants)
    paper = medical_research_estimate()
    print(
        f"\nS6.2.2 extrapolation to 1M ids:"
        f"\n  paper (2001): {paper.computation_hours:.2f} h compute, "
        f"{paper.communication_hours:.2f} h transfer"
        f"\n  this machine: {est.computation_hours:.3f} h compute "
        f"(same 8e6 modexps, measured C_e)"
    )
    assert est.encryptions_ce == paper.encryptions_ce


@pytest.mark.parametrize("people", [50, 150])
def test_medical_pipeline_benchmark(benchmark, people):
    wl = medical_workload(people, random.Random(people))

    def run():
        suite = ProtocolSuite.default(bits=256, seed=people)
        return run_medical_research(wl.t_r, wl.t_s, suite)

    result = benchmark(run)
    assert result.table.total <= people


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    from repro.bench.cli import legacy_main

    raise SystemExit(legacy_main("apps.medical"))
