#!/usr/bin/env python3
"""Quickstart: the four minimal-sharing protocols in a few lines each.

Two parties - R(eceiver) and S(ender) - hold private value sets. Each
protocol computes one query while revealing only the answer plus the
set sizes (Section 2.2 of the paper).

Run:  python examples/quickstart.py
"""

import repro
from repro import ProtocolSuite, Table, run_equijoin_size, run_intersection, run_intersection_size
from repro.db.query import (
    EquijoinQuery,
    EquijoinSizeQuery,
    IntersectionQuery,
    IntersectionSizeQuery,
)
from repro.protocols import join_tables


def main() -> None:
    customers_r = ["alice@x.com", "bob@y.org", "carol@z.net", "dave@w.io"]
    customers_s = ["bob@y.org", "dave@w.io", "erin@v.com"]

    # ------------------------------------------------------------------
    # 0. The one-call facade: any registered protocol, one line. The
    #    same call streams million-item sets with chunk_size=..., and
    #    repro.serve/repro.connect run it over real TCP.
    # ------------------------------------------------------------------
    quick = repro.run(
        "intersection", customers_r, customers_s, bits=512, seed=2003
    )
    print("One-call facade")
    print(f"  repro.run('intersection', ...) -> {sorted(quick.answer)}")
    print(f"  R learned |V_S| = {quick.size_v_s}; "
          f"S learned |V_R| = {quick.size_v_r}\n")

    # Agreed public parameters: a 512-bit safe prime group, the hash
    # into it, and the commutative power cipher. Each party's secret
    # keys are drawn from its own randomness inside the suite. The
    # classic per-protocol helpers return result objects with full
    # transcripts and byte accounting.
    suite = ProtocolSuite.default(bits=512, seed=2003)

    # ------------------------------------------------------------------
    # 1. Intersection (Section 3): R learns which values are shared.
    # ------------------------------------------------------------------
    result = run_intersection(customers_r, customers_s, suite)
    print("Intersection protocol")
    print(f"  {IntersectionQuery().profile.describe()}")
    print(f"  R's answer: {sorted(result.intersection)}")
    print(f"  R also learned |V_S| = {result.size_v_s}; "
          f"S learned |V_R| = {result.size_v_r}")
    print(f"  wire traffic: {result.run.total_bytes} bytes\n")

    # ------------------------------------------------------------------
    # 2. Intersection size (Section 5.1): R learns only the count.
    # ------------------------------------------------------------------
    result = run_intersection_size(customers_r, customers_s, suite)
    print("Intersection-size protocol")
    print(f"  {IntersectionSizeQuery().profile.describe()}")
    print(f"  R's answer: |V_S ∩ V_R| = {result.size}\n")

    # ------------------------------------------------------------------
    # 3. Equijoin (Section 4): R gets S's records for matching keys.
    # ------------------------------------------------------------------
    t_r = Table(("email", "segment"), [(e, i % 2) for i, e in enumerate(customers_r)])
    t_s = Table(
        ("email", "ltv"),
        [("bob@y.org", 120), ("dave@w.io", 45), ("erin@v.com", 990)],
    )
    joined, join_result = join_tables(t_r, t_s, "email", suite=suite)
    print("Equijoin protocol")
    print(f"  {EquijoinQuery().profile.describe()}")
    print(f"  joined table columns: {joined.columns}")
    for row in joined.rows:
        print(f"    {row}")
    print()

    # ------------------------------------------------------------------
    # 4. Equijoin size (Section 5.2): only the join cardinality - but
    #    note the characterized duplicate-distribution leak.
    # ------------------------------------------------------------------
    purchases_r = ["bob@y.org"] * 3 + ["alice@x.com"] * 2
    purchases_s = ["bob@y.org"] * 2 + ["erin@v.com"]
    result = run_equijoin_size(purchases_r, purchases_s, suite)
    print("Equijoin-size protocol")
    print(f"  {EquijoinSizeQuery().profile.describe()}")
    print(f"  R's answer: |T_S ⋈ T_R| = {result.join_size}")
    print(f"  leak: R saw S's duplicate distribution {result.r_learns_s_duplicates}")


if __name__ == "__main__":
    main()
