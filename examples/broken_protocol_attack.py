#!/usr/bin/env python3
"""Why the naive hash protocol is broken (Section 3.1), live.

The "simple protocol that appears to work" ships S's hashed set to R.
A semi-honest R then hashes every candidate value in the domain and
tests membership - over a small domain (SSNs, phone numbers, diagnosis
codes...) it recovers S's entire set. The commutative-encryption
protocol of Section 3.3 resists the identical attack.

Run:  python examples/broken_protocol_attack.py
"""

from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection import run_intersection
from repro.protocols.naive_hash import dictionary_attack, run_naive_intersection


def main() -> None:
    suite = ProtocolSuite.default(bits=512, seed=13)

    # A small value domain: 4-digit patient codes.
    domain = [f"patient-{i:04d}" for i in range(2000)]
    v_s = domain[250:400]  # S's private patients
    v_r = domain[300:330]  # R legitimately shares a few

    print(f"Domain: {len(domain)} possible values")
    print(f"S holds {len(v_s)} values; R holds {len(v_r)}; "
          f"true intersection = {len(set(v_s) & set(v_r))}\n")

    # ------------------------------------------------------------------
    # The naive protocol: correct answer, catastrophic leak.
    # ------------------------------------------------------------------
    naive = run_naive_intersection(v_r, v_s, suite)
    print(f"[naive] R computed the intersection: {len(naive.intersection)} values. But...")
    recovered = dictionary_attack(naive.observed_hashes, domain, suite.hash)
    extra = recovered - naive.intersection
    print(f"[naive] dictionary attack recovered {len(recovered)}/{len(v_s)} "
          f"of S's set - {len(extra)} values R was never entitled to!\n")
    assert recovered == set(v_s)

    # ------------------------------------------------------------------
    # The Section 3.3 protocol: same answer, attack finds nothing.
    # ------------------------------------------------------------------
    secure = run_intersection(v_r, v_s, suite)
    assert secure.intersection == naive.intersection
    observed = set(secure.run.r_view.flat_integers())
    recovered = dictionary_attack(observed, domain, suite.hash)
    print(f"[S3.3]  R computed the same intersection: {len(secure.intersection)} values.")
    print(f"[S3.3]  the same attack against R's full view recovered "
          f"{len(recovered)} values - every codeword is f_eS(h(v)) under "
          f"S's secret key, useless without e_S.")


if __name__ == "__main__":
    main()
