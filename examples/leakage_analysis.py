#!/usr/bin/env python3
"""Exploring the equijoin-size protocol's characterized leak (S5.2).

The equijoin-size protocol reveals duplicate distributions, and R
learns |V_R(d) ∩ V_S(d')| for every pair of duplicate classes. This
demo sweeps duplicate structures from uniform (leak-free beyond the
size) to all-distinct (full intersection recovered) and shows the
fraction of R's values whose membership gets pinned down.

Run:  python examples/leakage_analysis.py
"""

import random

from repro.analysis.leakage import leakage_profile
from repro.db.multiset import ValueMultiset
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin_size import run_equijoin_size
from repro.workloads.generator import multiset_pair


def main() -> None:
    rng = random.Random(3)
    suite = ProtocolSuite.default(bits=512, seed=3)
    n, overlap = 16, 7

    print("Equijoin-size leakage across duplicate distributions")
    print(f"(|V_R| = |V_S| = {n}, true intersection = {overlap})\n")

    scenarios = {
        "uniform duplicates (d=2)": multiset_pair(n, n, overlap, rng, uniform_count=2),
        "Zipf duplicates (alpha=1.5)": multiset_pair(n, n, overlap, rng, alpha=1.5),
    }
    # Worst case: every value occurs a distinct number of times.
    shared = [f"v{i}" for i in range(overlap)]
    only_r = [f"r{i}" for i in range(n - overlap)]
    only_s = [f"s{i}" for i in range(n - overlap)]
    ms_r = ValueMultiset.from_values(
        [v for i, v in enumerate(shared + only_r) for _ in range(i + 1)]
    )
    ms_s = ValueMultiset.from_values(
        [v for i, v in enumerate(shared + only_s) for _ in range(i + 1)]
    )
    scenarios["all-distinct duplicate counts"] = (ms_r, ms_s)

    for name, (ms_r, ms_s) in scenarios.items():
        result = run_equijoin_size(ms_r, ms_s, suite)
        profile = leakage_profile(ms_r, ms_s)
        fraction = profile.identified_fraction(ms_r.distinct_size)
        print(f"{name}:")
        print(f"  join size computed by R: {result.join_size} "
              f"(truth: {ms_r.join_size(ms_s)})")
        print(f"  R saw S's duplicate distribution: {result.r_learns_s_duplicates}")
        print(f"  overlap matrix |V_R(d) ∩ V_S(d')|: {profile.matrix}")
        print(f"  -> R pinned down membership of {fraction:.0%} of its values"
              f" ({sorted(profile.certain_members)[:4]}{'...' if len(profile.certain_members) > 4 else ''} certain members)\n")

    print("Takeaway: the protocol's answer is identical in all three "
          "scenarios, but the side information ranges from 'nothing "
          "beyond the size' to 'the entire intersection' - exactly the "
          "paper's Section 5.2 characterization. Applications should "
          "check their duplicate structure before using equijoin size.")


if __name__ == "__main__":
    main()
