#!/usr/bin/env python3
"""The intersection protocol over a real TCP connection.

Everything else in `examples/` simulates both parties in one process;
this demo runs them as genuine network endpoints through the one-call
facade: ``repro.serve`` hosts party S on a localhost socket (here in a
thread - it would normally be another process or machine),
``repro.connect`` runs party R against it, the public parameters
travel in the handshake, and the two parties exchange exactly the
Section 3.3 messages as length-prefixed frames.

A ``chunk_size`` streams S's big reply round in bounded slices, so a
million-item set never has to materialize as one frame - and while one
chunk is on the wire, the next one's crypto is already running
(``docs/PROTOCOLS.md``, "Streaming round pipeline").

Run:  python examples/distributed_tcp.py
"""

import queue
import threading

import repro


def main() -> None:
    v_s = [f"supplier-{i:03d}" for i in range(40, 90)]     # S's private set
    v_r = [f"supplier-{i:03d}" for i in range(60, 100)]    # R's private set
    expected = set(v_s) & set(v_r)

    port_box: "queue.Queue[int]" = queue.Queue()
    served = {}

    def run_sender() -> None:
        # Party S: owns v_s, binds a socket (port=0 = kernel picks a
        # free one, reported through ready_callback), serves one run.
        served["result"] = repro.serve(
            "intersection",
            v_s,
            bits=512,
            port=0,
            ready_callback=port_box.put,
            chunk_size=16,
        )

    server = threading.Thread(target=run_sender, name="party-S")
    server.start()
    port = port_box.get(timeout=10)
    print(f"party S listening on 127.0.0.1:{port} with {len(v_s)} values")

    # Party R: connects, learns nothing but the answer and |V_S|.
    result = repro.connect(
        "intersection", v_r, port=port, chunk_size=16
    )
    server.join()

    answer = result.answer
    print(f"party R connected with {len(v_r)} values")
    print(f"R's answer: {len(answer)} shared suppliers "
          f"(expected {len(expected)}) -> "
          f"{sorted(answer)[:3]}...")
    print(f"S learned only |V_R| = {served['result'].size_v_r} "
          f"(served on port {served['result'].port})")
    assert answer == expected


if __name__ == "__main__":
    main()
