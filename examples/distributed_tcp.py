#!/usr/bin/env python3
"""The intersection protocol over a real TCP connection.

Everything else in `examples/` simulates both parties in one process;
this demo runs them as genuine network endpoints: S serves on a
localhost socket (here in a thread - it would normally be another
process or machine), R connects, the public parameters travel in the
handshake, and the two parties exchange exactly the Section 3.3
messages as length-prefixed frames.

Run:  python examples/distributed_tcp.py
"""

import queue
import random
import threading

from repro.net.tcp import (
    connect_intersection_receiver,
    serve_intersection_sender,
)
from repro.protocols.parties import PublicParams


def main() -> None:
    v_s = [f"supplier-{i:03d}" for i in range(40, 90)]     # S's private set
    v_r = [f"supplier-{i:03d}" for i in range(60, 100)]    # R's private set
    expected = set(v_s) & set(v_r)

    params = PublicParams.for_bits(512)
    port_box: "queue.Queue[int]" = queue.Queue()
    server_learned = {}

    def run_sender() -> None:
        # Party S: owns v_s, binds a socket, serves one run.
        server_learned["size_v_r"] = serve_intersection_sender(
            v_s, params, random.Random(), ready_callback=port_box.put
        )

    server = threading.Thread(target=run_sender, name="party-S")
    server.start()
    port = port_box.get(timeout=10)
    print(f"party S listening on 127.0.0.1:{port} with {len(v_s)} values")

    # Party R: connects, learns nothing but the answer and |V_S|.
    answer = connect_intersection_receiver(v_r, random.Random(), "127.0.0.1", port)
    server.join()

    print(f"party R connected with {len(v_r)} values")
    print(f"R's answer: {len(answer)} shared suppliers "
          f"(expected {len(expected)}) -> "
          f"{sorted(answer)[:3]}...")
    print(f"S learned only |V_R| = {server_learned['size_v_r']}")
    assert answer == expected


if __name__ == "__main__":
    main()
