#!/usr/bin/env python3
"""Reproduce the paper's cost tables and calibrate them to this machine.

Prints: the Section 6.1 formulas evaluated at the paper's scales, the
Section 6.2 application estimates, the Appendix A circuit-comparison
tables (including the 144-days headline), and finally re-evaluates
everything with *measured* constants from this machine.

Run:  python examples/cost_explorer.py
"""

from repro.analysis.calibration import calibrate
from repro.analysis.costmodel import CostConstants, ProtocolCostModel
from repro.analysis.estimates import (
    document_sharing_estimate,
    medical_research_estimate,
)
from repro.circuits.costmodel import CircuitCostModel


def main() -> None:
    print("=" * 68)
    print("Section 6.1 - protocol costs (paper constants: C_e = 0.02 s,")
    print("k = 1024 bits, T1 line, P = 10)")
    print("=" * 68)
    model = ProtocolCostModel(CostConstants())
    print(f"{'n':>10s} {'intersect [h]':>14s} {'join [h]':>10s} {'bits':>10s} {'T1 [h]':>8s}")
    for n in (10**4, 10**5, 10**6):
        comp = model.parallel_seconds(model.intersection_seconds(n, n)) / 3600
        join = model.parallel_seconds(model.join_seconds(n, n)) / 3600
        bits = model.intersection_bits(n, n)
        wire = model.transfer_seconds(bits) / 3600
        print(f"{n:10.0e} {comp:14.2f} {join:10.2f} {bits:10.1e} {wire:8.2f}")

    print()
    print("Section 6.2 - application estimates")
    print("-" * 68)
    for est in (document_sharing_estimate(), medical_research_estimate()):
        print(f"  {est.round_trip_summary()}")

    print()
    print("Appendix A - circuit comparison (w = 32, k0 = 64, k1 = 100)")
    print("-" * 68)
    cm = CircuitCostModel()
    print("  partitioning circuit:  n / optimal m / f(n)")
    for row in cm.circuit_size_table():
        print(f"    {row.n:10.0e}  m={row.m:3d}  f={row.gates:.2e}")
    print(f"  {'n':>10s} {'OT [C_e]':>10s} {'eval [C_r]':>11s} {'ours [C_e]':>11s} "
          f"{'circ [bits]':>12s} {'ours [bits]':>12s}")
    for row in cm.comparison_table():
        circ_bits = row.circuit_input_bits + row.circuit_tables_bits
        print(f"  {row.n:10.0e} {row.circuit_input_ce:10.1e} "
              f"{row.circuit_eval_cr:11.1e} {row.ours_ce:11.1e} "
              f"{circ_bits:12.1e} {row.ours_bits:12.1e}")
    headline = {r.n: r for r in cm.comparison_table()}[10**6]
    print(f"\n  headline at n = 1e6 on a T1: circuit tables "
          f"{cm.t1_transfer_days(headline.circuit_tables_bits):.0f} days "
          f"vs ours {cm.t1_transfer_days(headline.ours_bits)*24:.1f} hours")

    print()
    print("This machine - measured constants (1024-bit modulus)")
    print("-" * 68)
    cal = calibrate(bits=1024, samples=15)
    c = cal.constants
    print(f"  C_e = {c.ce_seconds*1e3:.2f} ms  "
          f"({cal.exponentiations_per_hour():.1e} modexp/hour; "
          f"paper's 2001 box: 1.8e5/hour)")
    print(f"  C_h = {c.ch_seconds*1e6:.0f} us, C_K = {c.ck_seconds*1e6:.0f} us, "
          f"C_s = {c.cs_seconds*1e9:.0f} ns/item-step")
    here = ProtocolCostModel(c.with_processors(10))
    n = 10**6
    hours = here.parallel_seconds(here.intersection_seconds(n, n)) / 3600
    print(f"  intersection at n = 1M, P = 10: {hours:.2f} h on this machine "
          f"(paper: 2.2 h)")


if __name__ == "__main__":
    main()
