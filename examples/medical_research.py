#!/usr/bin/env python3
"""Application 2 - medical research (Sections 1.1, 6.2.2, Figure 2).

A researcher T wants the contingency table of

    select pattern, reaction, count(*)
    from T_R, T_S
    where T_R.person_id = T_S.person_id and T_S.drug = true
    group by T_R.pattern, T_S.reaction

where the DNA table T_R and the medical-history table T_S live in two
enterprises that refuse to reveal any individual's data. Figure 2's
algorithm answers it with four intersection-size runs whose doubly
encrypted sets go to T, so even the counts stay hidden from R and S.

Run:  python examples/medical_research.py
"""

import random

from repro.analysis.estimates import medical_research_estimate
from repro.apps.medical import plaintext_contingency, run_medical_research
from repro.protocols.base import ProtocolSuite
from repro.workloads.generator import medical_workload


def main() -> None:
    # Synthetic population with a planted DNA-reaction association.
    workload = medical_workload(
        400,
        random.Random(42),
        p_pattern=0.3,
        p_drug=0.55,
        p_reaction_given_pattern=0.65,
        p_reaction_without_pattern=0.08,
    )
    print(f"T_R: {len(workload.t_r)} DNA records at enterprise R")
    print(f"T_S: {len(workload.t_s)} medical histories at enterprise S\n")

    suite = ProtocolSuite.default(bits=512, seed=42)
    result = run_medical_research(workload.t_r, workload.t_s, suite)
    table = result.table

    print("Researcher T's contingency table (drug takers only):")
    print("                     reaction   no reaction")
    print(f"  DNA pattern      {table.pattern_reaction:9d} {table.pattern_no_reaction:12d}")
    print(f"  no DNA pattern   {table.no_pattern_reaction:9d} {table.no_pattern_no_reaction:12d}")

    with_pattern = table.pattern_reaction / max(
        table.pattern_reaction + table.pattern_no_reaction, 1
    )
    without = table.no_pattern_reaction / max(
        table.no_pattern_reaction + table.no_pattern_no_reaction, 1
    )
    print(f"\nAdverse-reaction rate: {with_pattern:.0%} with the pattern vs "
          f"{without:.0%} without - hypothesis supported.")

    # Validation against the plaintext SQL (only possible because this
    # demo owns both tables; the protocol parties never see this).
    truth = plaintext_contingency(workload.t_r, workload.t_s)
    assert table.as_dict() == truth.as_dict()
    print("(validated against the co-located plaintext SQL)\n")

    print(f"Wire traffic for the four queries: "
          f"{result.run.total_bytes / 1024:.0f} kB; "
          f"T received {len(result.run.t_view.received)} encrypted sets "
          f"and learned only the four counts.")

    est = medical_research_estimate()
    print(f"\nAt the paper's scale (1M ids/side): "
          f"~{est.computation_hours:.1f} h compute (paper: ~4 h), "
          f"~{est.communication_hours:.1f} h on a T1 (paper: ~1.5 h)")


if __name__ == "__main__":
    main()
