#!/usr/bin/env python3
"""Beyond the paper's four operations: aggregation and selection.

The paper's conclusions ask for minimal-disclosure protocols "for other
database operations such as aggregations", and its related work points
at PIR for the selection operation. This demo runs both extensions:

* equijoin-sum - R learns SUM(val_S(v)) over the intersection (e.g.
  combined exposure across common counterparties) without learning the
  individual amounts or which of its values matched;
* private selection - R retrieves one record by position without S
  learning which one (symmetric-PIR-style, built on 1-of-n OT).

Run:  python examples/aggregates_and_selection.py
"""

from repro.db.query import EquijoinSumQuery, SelectionQuery
from repro.protocols.aggregate import run_equijoin_sum
from repro.protocols.base import ProtocolSuite
from repro.protocols.selection import run_selection


def main() -> None:
    suite = ProtocolSuite.default(bits=512, seed=77)

    # ------------------------------------------------------------------
    # Equijoin-sum: two banks computing combined exposure to shared
    # counterparties, without revealing their client lists or amounts.
    # ------------------------------------------------------------------
    bank_r_clients = ["acme", "globex", "initech", "umbrella"]
    bank_s_exposures = {"globex": 1_200_000, "initech": 350_000,
                        "wayne": 9_000_000, "stark": 50_000}

    result = run_equijoin_sum(bank_r_clients, bank_s_exposures, suite)
    print("Equijoin-sum (aggregate over the intersection)")
    print(f"  {EquijoinSumQuery().profile.describe()}")
    print(f"  R's answer: combined exposure = ${result.total:,}")
    print(f"  matches found (count only): {result.match_count}")
    print(f"  wire traffic: {result.run.total_bytes} bytes")
    expected = sum(v for k, v in bank_s_exposures.items() if k in bank_r_clients)
    assert result.total == expected
    print(f"  (matches plaintext: ${expected:,})\n")

    # ------------------------------------------------------------------
    # Private selection: R fetches record #2 from S's table of 6
    # records; S cannot tell which record was taken.
    # ------------------------------------------------------------------
    records = [f"dossier for case {i:03d}".encode() for i in range(6)]
    selection = run_selection(2, records, suite)
    print("Private selection (symmetric-PIR-style)")
    print(f"  {SelectionQuery().profile.describe()}")
    print(f"  R retrieved: {selection.record.decode()!r}")
    print(f"  S's entire view: {len(list(selection.run.s_view.received))} "
          f"message(s) of uniform group elements - index hidden")
    print(f"  wire traffic: {selection.run.total_bytes} bytes "
          f"(O(n): all {selection.n_records} records ship encrypted)")


if __name__ == "__main__":
    main()
