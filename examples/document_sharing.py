#!/usr/bin/env python3
"""Application 1 - selective document sharing (Sections 1.1, 6.2.1).

Enterprise R is shopping for technology; enterprise S holds unpublished
intellectual property. Neither will reveal its full portfolio: they
find the similar document pairs first, via one intersection-size
protocol run per pair over TF-IDF significant-word sets, and only those
pairs are candidates for disclosure.

Run:  python examples/document_sharing.py
"""

import random

from repro.analysis.estimates import document_sharing_estimate
from repro.apps.document_sharing import run_document_sharing
from repro.apps.tfidf import significant_words
from repro.protocols.base import ProtocolSuite
from repro.workloads.generator import document_corpus


def main() -> None:
    rng = random.Random(7)

    # Synthetic corpora sharing a planted "laser sintering" topic: some
    # of R's shopping-list documents genuinely match S's IP documents.
    topic = ["laser", "sintering", "alloy", "powder", "fusion", "anneal",
             "cladding", "deposition", "melt", "lattice"]
    shopping_list = document_corpus(
        4, rng, vocabulary_size=800, words_per_doc=150,
        topic_words=topic, topic_rate=0.9,
    ) + document_corpus(3, rng, vocabulary_size=800, words_per_doc=150)
    ip_portfolio = document_corpus(
        5, rng, vocabulary_size=800, words_per_doc=150,
        topic_words=topic, topic_rate=0.9,
    ) + document_corpus(4, rng, vocabulary_size=800, words_per_doc=150)

    # Preprocessing (the paper's Section 1.1 abstraction): keep only the
    # most significant words by tf-idf.
    docs_r = significant_words(shopping_list, k=40)
    docs_s = significant_words(ip_portfolio, k=40)
    print(f"R: {len(docs_r)} documents, S: {len(docs_s)} documents "
          f"(top-40 significant words each)\n")

    suite = ProtocolSuite.default(bits=512, seed=7)
    result = run_document_sharing(docs_r, docs_s, threshold=0.03, suite=suite)

    print(f"Ran {result.protocol_runs} intersection-size protocols "
          f"({result.total_encryptions} commutative encryptions, "
          f"{result.total_bytes / 1024:.0f} kB on the wire)\n")

    print(f"Similar pairs above threshold ({len(result.matches)}):")
    for match in sorted(result.matches, key=lambda m: -m.similarity):
        print(
            f"  R#{match.r_index} ~ S#{match.s_index}: "
            f"{match.common_words} shared significant words, "
            f"similarity {match.similarity:.3f}"
        )

    # The Section 6.2.1 estimate at the paper's full scale.
    est = document_sharing_estimate()
    print(f"\nAt the paper's scale (10 x 100 docs, 1000 words):")
    print(f"  computation ~ {est.computation_hours:.1f} h on 10 processors "
          f"(paper: ~2 h)")
    print(f"  communication ~ {est.communication_minutes:.0f} min on a T1 "
          f"(paper: ~35 min)")


if __name__ == "__main__":
    main()
